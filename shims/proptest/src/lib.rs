//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`boxed`, range and
//! tuple strategies, `any::<T>()`, `collection::vec`, `option::of`,
//! `prop_oneof!`, and the `proptest!`/`prop_assert*!` macros with
//! `ProptestConfig::with_cases`. Cases are generated from a deterministic
//! per-test RNG; on failure the macro panics with the failing case index
//! and message. Shrinking is not implemented — failures report the raw
//! generated case (the workspace's generators are small enough to debug
//! directly).

use std::ops::Range;
use std::sync::Arc;

/// The per-run random source handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_B00C }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Arc::new(self) }
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A clonable type-erased strategy (result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: self.inner.clone() }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// A strategy producing always the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Construct it.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-domain strategy for primitives.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive { _marker: std::marker::PhantomData }
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Result of [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`: mostly `Some`, sometimes `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Result of [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Test-runner types.
pub mod test_runner {
    /// Failure raised by `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Drive one property: generate `config.cases` cases from a deterministic
/// seed sequence and panic (with case index) on the first failure.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    for i in 0..config.cases as u64 {
        // Seed derived from the property name so distinct properties
        // explore distinct streams, reproducibly.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = TestRng::seed_from_u64(h ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = case(&mut rng) {
            panic!("proptest property '{name}' failed at case {i}/{}: {}", config.cases, e.0);
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn` runs `cases` times with fresh values
/// drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $cfg;
                $crate::run_property(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Assert within a proptest body; reports the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?}): {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} != {} (both {:?}): {}",
                stringify!($a), stringify!($b), a, format!($($fmt)+)
            )));
        }
    }};
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms = vec![$($crate::Strategy::boxed($strat)),+];
        $crate::OneOf { arms }
    }};
}

/// Result of [`prop_oneof!`]: uniform choice among boxed arms.
#[derive(Clone)]
pub struct OneOf<T> {
    /// The candidate strategies.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(a in 0u32..100, b in 5usize..9) {
            prop_assert!(a < 100);
            prop_assert!((5..9).contains(&b), "b = {}", b);
        }

        #[test]
        fn vec_and_option_compose(
            v in collection::vec(any::<u8>(), 1..20),
            o in option::of(0u64..4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            if let Some(x) = o {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn oneof_and_map_cover_arms(
            xs in collection::vec(prop_oneof![
                (0u32..3).prop_map(|v| v as u64),
                Just(99u64),
            ], 32..33)
        ) {
            prop_assert!(xs.iter().all(|&x| x < 3 || x == 99));
            prop_assert!(xs.contains(&99) || xs.iter().any(|&x| x < 3));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = ProptestConfig::with_cases(10);
        let mut first: Vec<u64> = Vec::new();
        crate::run_property("det", &cfg, |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::run_property("det", &cfg, |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
