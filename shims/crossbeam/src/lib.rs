//! Offline stand-in for `crossbeam`: the `channel` module surface this
//! workspace uses (`bounded`/`unbounded` senders and receivers with
//! timeout-aware receive), implemented over `std::sync::mpsc`, whose
//! channels have been Sync-capable since Rust 1.72.

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half; clonable and shareable across threads.
    pub struct Sender<T>(Inner<T>);

    enum Inner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Inner::Unbounded(s) => Inner::Unbounded(s.clone()),
                Inner::Bounded(s) => Inner::Bounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Send `value`; fails only when every receiver is gone. A bounded
        /// channel blocks while full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Inner::Unbounded(s) => s.send(value),
                Inner::Bounded(s) => s.send(value),
            }
        }
    }

    /// The receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Block up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Inner::Unbounded(tx)), Receiver(rx))
    }

    /// A channel buffering at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Inner::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
