//! Offline stand-in for the `rand` crate.
//!
//! Provides exactly the deterministic-simulation surface this workspace
//! uses: a seedable [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64)
//! plus the [`RngExt`] convenience methods `random` / `random_range`.
//! All streams are fully deterministic per seed, which is what the
//! discrete-event simulator and the fault harnesses rely on.

/// Core entropy source: a stream of u64s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, the
            // standard recommendation for seeding xoshiro generators.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from the full bit stream.
pub trait FromRng {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types samplable from a half-open range.
pub trait UniformInt: Copy {
    /// Draw uniformly from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Modulo draw: a negligible bias is acceptable here — the
                // workspace needs determinism, not cryptographic uniformity.
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draw a value of `T` from its natural distribution ([0,1) for f64).
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draw uniformly from the half-open integer range.
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_ne!(sa, sc, "different seeds give different streams");
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            let v = r.random_range(5..100u64);
            assert!((5..100).contains(&v));
            let u = r.random_range(0..10u32);
            assert!(u < 10);
            let i = r.random_range(0..3usize);
            assert!(i < 3);
        }
    }

    #[test]
    fn covers_full_small_range() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
