//! Offline stand-in for `parking_lot`: a [`Mutex`] with the non-poisoning
//! `lock()` signature, backed by `std::sync::Mutex`. A poisoned inner lock
//! (a panic while held) recovers the guard, matching parking_lot's
//! poison-free semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Non-poisoning mutual exclusion.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking; never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
