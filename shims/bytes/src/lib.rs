//! Offline stand-in for the `bytes` crate.
//!
//! The vendored registry is unreachable in this environment, so the small
//! slice of the `bytes` API this workspace uses is reimplemented here:
//! cheaply clonable immutable buffers ([`Bytes`]), an append-only builder
//! ([`BytesMut`]), and little-endian cursor traits ([`Buf`], [`BufMut`]).
//! Semantics match the real crate for the operations provided; O(1)
//! zero-copy slicing is not needed by this workspace and is not provided.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// A buffer over static data.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// A buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-cursor operations (little-endian variants only — all this
/// workspace encodes).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-cursor operations over a shrinking slice (little-endian variants
/// only). Reads past the end panic, as in the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// First `n` bytes of the remainder.
    fn take_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_bytes(2).try_into().unwrap())
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn take_bytes(&mut self, n: usize) -> Vec<u8> {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"MAGIC");
        b.put_u8(7);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEADBEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 5 + 1 + 2 + 4 + 8);
        assert_eq!(&r[..5], b"MAGIC");
        r.advance(5);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_equality_and_clone_share() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..], b"hello");
        assert_eq!(Bytes::from(vec![1, 2, 3]), Bytes::copy_from_slice(&[1, 2, 3]));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"x").len(), 1);
    }
}
