//! Offline stand-in for `criterion`: runs each benchmark closure for a
//! short calibrated number of iterations and prints mean ns/iter. No
//! statistics, plots, or CLI — just enough to keep `cargo bench` targets
//! building and producing comparable numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How benchmark-local setup cost is amortized (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-setup every iteration.
    PerIteration,
}

/// Per-benchmark timing driver.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter*` call.
    ns_per_iter: f64,
}

const TARGET: Duration = Duration::from_millis(100);

impl Bencher {
    fn new() -> Self {
        Bencher { ns_per_iter: 0.0 }
    }

    /// Time `routine` until ~100 ms of samples accumulate.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration round.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let n = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / n as f64;
    }

    /// Time `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let n = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / n as f64;
    }
}

fn report(name: &str, ns: f64) {
    if ns >= 1_000_000.0 {
        println!("bench {name:<40} {:>12.3} ms/iter", ns / 1_000_000.0);
    } else if ns >= 1_000.0 {
        println!("bench {name:<40} {:>12.3} µs/iter", ns / 1_000.0);
    } else {
        println!("bench {name:<40} {:>12.1} ns/iter", ns);
    }
}

/// Benchmark registry and driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&name.to_string(), b.ns_per_iter);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }
}

/// A named group; benchmark ids are prefixed with the group name.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.ns_per_iter);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Group benchmark functions under one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
