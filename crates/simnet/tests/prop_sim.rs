//! Property tests for the simulation kernel: the invariants every
//! experiment implicitly relies on.

use proptest::prelude::*;

use dufs_simnet::{
    Ctx, FixedLatency, GigEModel, NodeId, Process, ServiceQueue, Sim, SimDuration, SimTime,
};

// ---------------------------------------------------------------------
// ServiceQueue properties
// ---------------------------------------------------------------------

proptest! {
    /// Completions never precede arrival + service, and a width-1 queue's
    /// completions are strictly ordered (work conservation and FIFO).
    #[test]
    fn service_queue_is_conservative_and_fifo(
        jobs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..60),
        width in 1usize..4,
    ) {
        let mut q = ServiceQueue::new(width);
        let mut arrivals: Vec<(u64, u64)> = jobs;
        arrivals.sort_unstable(); // arrival times must be monotone for a sim
        let mut last_done = SimTime::ZERO;
        let mut busy_total = 0u64;
        for &(at_us, service_us) in &arrivals {
            let at = SimTime::from_micros(at_us);
            let service = SimDuration::from_micros(service_us);
            let done = q.complete_at(at, service);
            // Lower bound: can't finish before arrival + service.
            prop_assert!(done >= at + service);
            if width == 1 {
                // FIFO single server: completions are non-decreasing and
                // gapless under backlog.
                prop_assert!(done >= last_done);
            }
            last_done = last_done.max(done);
            busy_total += service_us;
        }
        // Upper bound: a width-w queue finishes everything no later than
        // serializing all work after the last arrival.
        let last_arrival = arrivals.last().map(|&(t, _)| t).unwrap_or(0);
        prop_assert!(
            last_done.as_nanos() <= SimTime::from_micros(last_arrival + busy_total).as_nanos()
        );
        prop_assert_eq!(q.accepted(), arrivals.len() as u64);
    }

    /// A width-w queue is never slower than width-1 and never faster than
    /// perfect parallelism for identical job streams.
    #[test]
    fn wider_queues_are_no_slower(
        jobs in proptest::collection::vec(1u64..300, 1..40),
    ) {
        let run = |width: usize| {
            let mut q = ServiceQueue::new(width);
            let mut last = SimTime::ZERO;
            for &service_us in &jobs {
                last = last.max(q.complete_at(SimTime::ZERO, SimDuration::from_micros(service_us)));
            }
            last
        };
        let serial = run(1);
        let wide = run(4);
        prop_assert!(wide <= serial);
        let total: u64 = jobs.iter().sum();
        prop_assert!(wide.as_nanos() >= (total / 4) * 1_000, "can't beat perfect speedup");
    }
}

// ---------------------------------------------------------------------
// Kernel properties: FIFO links and determinism under random traffic
// ---------------------------------------------------------------------

#[derive(Default)]
struct Sink {
    got: Vec<(u64, u32)>, // (virtual ns, payload)
}
impl Process<u32> for Sink {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
        self.got.push((ctx.now().as_nanos(), msg));
    }
}

struct Spammer {
    dst: NodeId,
    n: u32,
    gap_us: u64,
}
impl Process<u32> for Spammer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        ctx.set_timer(SimDuration::from_micros(self.gap_us), 0);
    }
    fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, _t: u64) {
        let seq = self.n;
        if seq > 0 {
            self.n -= 1;
            ctx.send(self.dst, seq);
            ctx.set_timer(SimDuration::from_micros(self.gap_us), 0);
        }
    }
}

proptest! {
    /// Per-link FIFO: with jittery latencies, a receiver still sees one
    /// sender's messages in send order.
    #[test]
    fn per_link_fifo_under_jitter(seed in 0u64..500, n in 2u32..60, gap_us in 1u64..50) {
        let mut sim: Sim<u32> = Sim::new(seed, GigEModel::default());
        let sink = sim.add_node(Sink::default());
        sim.add_node(Spammer { dst: sink, n, gap_us });
        sim.run_until(SimTime::from_secs(10));
        let got: Vec<u32> = sim.node_ref::<Sink>(sink).got.iter().map(|e| e.1).collect();
        let want: Vec<u32> = (1..=n).rev().collect();
        prop_assert_eq!(got, want);
    }

    /// Determinism: identical seeds produce identical event streams, and
    /// different seeds (with jitter) are allowed to differ.
    #[test]
    fn runs_are_seed_deterministic(seed in 0u64..200) {
        let run = |s: u64| {
            let mut sim: Sim<u32> = Sim::new(s, GigEModel::default());
            let sink = sim.add_node(Sink::default());
            sim.add_node(Spammer { dst: sink, n: 25, gap_us: 7 });
            sim.run_until(SimTime::from_secs(5));
            sim.node_ref::<Sink>(sink).got.clone()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Virtual time only moves forward, whatever the traffic pattern.
    #[test]
    fn time_is_monotone(seed in 0u64..200, spammers in 1usize..5) {
        let mut sim: Sim<u32> = Sim::new(seed, FixedLatency::micros(13));
        let sink = sim.add_node(Sink::default());
        for k in 0..spammers {
            sim.add_node(Spammer { dst: sink, n: 10, gap_us: 3 + k as u64 });
        }
        sim.run_until_idle();
        let stamps: Vec<u64> = sim.node_ref::<Sink>(sink).got.iter().map(|e| e.0).collect();
        prop_assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }
}
