//! Event types for the simulation kernel.

use crate::time::SimTime;

/// Identifies a node (process) in the simulation. Dense, assigned in
/// registration order by [`crate::Sim::add_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index into the simulator's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Opaque token a process attaches to a timer so it can recognise it when it
/// fires. Processes define their own encoding (the coord server, for
/// example, packs a request id into it).
pub type TimerToken = u64;

/// What an event does when it is dequeued.
pub(crate) enum EventPayload<M> {
    /// Deliver a message from `from` to the target node.
    Message { from: NodeId, msg: M },
    /// Fire a timer previously set by the target node. `epoch` guards
    /// against timers that were implicitly cancelled by a crash: timers set
    /// before a crash have a stale epoch and are dropped on delivery.
    Timer { token: TimerToken, epoch: u32 },
    /// Crash the target node (drops its volatile state and its timers).
    Crash,
    /// Restart the target node after a crash.
    Restart,
}

/// A scheduled event. Ordered by `(time, seq)`; `seq` is a global insertion
/// counter so ordering is total and deterministic.
pub(crate) struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub target: NodeId,
    pub payload: EventPayload<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so earliest event pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, seq: u64) -> Event<()> {
        Event { time: SimTime(time), seq, target: NodeId(0), payload: EventPayload::Crash }
    }

    #[test]
    fn heap_order_is_earliest_first() {
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(ev(30, 0));
        heap.push(ev(10, 2));
        heap.push(ev(10, 1));
        heap.push(ev(20, 3));
        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| heap.pop()).map(|e| (e.time.0, e.seq)).collect();
        assert_eq!(order, vec![(10, 1), (10, 2), (20, 3), (30, 0)]);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }
}
