//! Virtual time for the simulator.
//!
//! Time is a monotone `u64` nanosecond counter starting at zero. We use a
//! dedicated newtype instead of `std::time::Duration`/`Instant` so that
//! simulated time can never be confused with wall-clock time, and so that
//! arithmetic stays cheap and explicit.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Elapsed span since `earlier`. Saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from fractional microseconds (rounded to nanoseconds).
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }
    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Microseconds in this span, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Seconds in this span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Scale the span by a float factor (used by contention models).
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration((self.0 as f64 * k).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(3), SimDuration::from_nanos(3_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t, SimTime::from_micros(15));
        assert_eq!(t.since(SimTime::from_micros(10)), SimDuration::from_micros(5));
        // Saturating subtraction: earlier.since(later) is zero, not underflow.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_at_max() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn float_round_trip() {
        let d = SimDuration::from_micros_f64(12.5);
        assert_eq!(d.as_nanos(), 12_500);
        assert!((d.as_micros_f64() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_micros(100).mul_f64(1.5);
        assert_eq!(d, SimDuration::from_micros(150));
        assert_eq!(SimDuration::from_micros(100).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(10)), "10ns");
        assert_eq!(format!("{}", SimDuration::from_micros(10)), "10.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(10)), "10.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(10)), "10.000s");
    }
}
