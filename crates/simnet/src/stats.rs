//! Measurement helpers: latency histograms and throughput accumulators.
//!
//! The paper reports aggregate operations/second per phase (mdtest style).
//! [`Throughput`] accumulates completed operations over a virtual-time
//! window; [`LatencyHist`] keeps a log-bucketed latency histogram so the
//! benches can also report p50/p95/p99 — useful for the ablation studies.

use crate::time::{SimDuration, SimTime};

/// Log-bucketed latency histogram: bucket `i` covers latencies in
/// `[2^i, 2^(i+1))` nanoseconds. 64 buckets cover any `u64` latency.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist { buckets: [0; 64], count: 0, sum_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }

    /// Record one latency observation.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = (64 - ns.max(1).leading_zeros() as usize - 1).min(63);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency; zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Smallest observation; zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest observation.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Approximate quantile (upper bound of the bucket containing it).
    /// `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                return SimDuration::from_nanos(upper.min(self.max_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Counts completed operations between two virtual-time marks and converts
/// to operations/second — the unit of every figure in the paper.
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    ops: u64,
    start: SimTime,
    end: SimTime,
}

impl Throughput {
    /// Start a measurement window at `start`.
    pub fn begin(start: SimTime) -> Self {
        Throughput { ops: 0, start, end: start }
    }

    /// Record one completed operation at time `at`.
    pub fn record(&mut self, at: SimTime) {
        self.ops += 1;
        if at > self.end {
            self.end = at;
        }
    }

    /// Record `n` completed operations at time `at`.
    pub fn record_n(&mut self, at: SimTime, n: u64) {
        self.ops += n;
        if at > self.end {
            self.end = at;
        }
    }

    /// Completed operations so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The window's elapsed virtual time.
    pub fn elapsed(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Operations per second over the window; zero if the window is empty.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_mean_min_max() {
        let mut h = LatencyHist::new();
        for us in [10u64, 20, 30] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), SimDuration::from_micros(20));
        assert_eq!(h.min(), SimDuration::from_micros(10));
        assert_eq!(h.max(), SimDuration::from_micros(30));
    }

    #[test]
    fn hist_quantiles_bracket_data() {
        let mut h = LatencyHist::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.quantile(0.5).as_nanos();
        // True median is 500us; bucket upper bound gives at most 2x.
        assert!((500_000..=1_048_576).contains(&p50), "p50={p50}");
        assert!(h.quantile(1.0).as_nanos() >= 1_000_000);
        assert!(h.quantile(0.0) > SimDuration::ZERO);
    }

    #[test]
    fn hist_merge_adds_counts() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        a.record(SimDuration::from_micros(5));
        b.record(SimDuration::from_micros(500));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), SimDuration::from_micros(5));
        assert_eq!(a.max(), SimDuration::from_micros(500));
    }

    #[test]
    fn empty_hist_is_safe() {
        let h = LatencyHist::new();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn throughput_ops_per_sec() {
        let mut t = Throughput::begin(SimTime::from_secs(1));
        for i in 0..1000 {
            t.record(SimTime::from_secs(1) + SimDuration::from_millis(i + 1));
        }
        assert_eq!(t.ops(), 1000);
        assert_eq!(t.elapsed(), SimDuration::from_secs(1));
        assert!((t.ops_per_sec() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_throughput_is_zero() {
        let t = Throughput::begin(SimTime::from_secs(1));
        assert_eq!(t.ops_per_sec(), 0.0);
    }
}
