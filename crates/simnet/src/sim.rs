//! The discrete-event simulation kernel.

use std::any::Any;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::{Event, EventPayload, NodeId, TimerToken};
use crate::latency::LatencyModel;
use crate::time::{SimDuration, SimTime};

/// A simulated process (node). Implementations are plain state machines;
/// all interaction with the outside world goes through the [`Ctx`] handle.
///
/// `M` is the message type of the whole simulation — typically an enum
/// defined by the experiment harness that wraps the wire messages of every
/// subsystem (coordination service, back-end filesystem, clients).
pub trait Process<M: 'static>: Any {
    /// Called once when the simulation starts (or when this node is added to
    /// an already-running simulation).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}
    /// A message from `from` has been delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);
    /// A timer set via [`Ctx::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: TimerToken) {}
    /// The node has crashed: volatile state should be dropped. Durable state
    /// (a ZAB log, for instance) survives for [`Process::on_restart`].
    fn on_crash(&mut self) {}
    /// The node restarts after a crash.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

/// The kernel state shared between the scheduler and the per-node [`Ctx`].
struct Kernel<M> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Event<M>>,
    rng: StdRng,
    latency: Box<dyn LatencyModel>,
    /// Last scheduled delivery time per directed link; enforces per-link
    /// FIFO delivery (the TCP assumption ZAB relies on).
    link_clock: HashMap<(NodeId, NodeId), SimTime>,
    sizer: fn(&M) -> usize,
    events_processed: u64,
}

impl<M: 'static> Kernel<M> {
    fn push(&mut self, time: SimTime, target: NodeId, payload: EventPayload<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { time, seq, target, payload });
    }

    fn send_from(&mut self, src: NodeId, dst: NodeId, msg: M, extra: SimDuration) {
        let size = (self.sizer)(&msg);
        let lat = self.latency.sample(&mut self.rng, src, dst, size);
        let mut at = self.now + lat + extra;
        let clock = self.link_clock.entry((src, dst)).or_insert(SimTime::ZERO);
        if at < *clock {
            at = *clock; // FIFO: never deliver before an earlier send on this link
        }
        *clock = at;
        self.push(at, dst, EventPayload::Message { from: src, msg });
    }
}

struct NodeSlot<M> {
    proc: Box<dyn Process<M>>,
    alive: bool,
    /// Incremented on crash; timers carry the epoch they were set in and are
    /// dropped if it is stale, which implicitly cancels all pending timers of
    /// a crashed node.
    epoch: u32,
}

/// Handle a process uses to interact with the simulation while handling an
/// event: send messages, set timers, read the clock, draw random numbers.
pub struct Ctx<'a, M> {
    kernel: &'a mut Kernel<M>,
    self_id: NodeId,
    self_epoch: u32,
}

impl<'a, M: 'static> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// This process's node id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Send `msg` to `dst`; the kernel samples a latency and enforces
    /// per-link FIFO delivery.
    pub fn send(&mut self, dst: NodeId, msg: M) {
        self.kernel.send_from(self.self_id, dst, msg, SimDuration::ZERO);
    }

    /// Send `msg` to `dst` after an additional local delay (e.g. service
    /// time spent before the reply leaves the node).
    pub fn send_after(&mut self, dst: NodeId, msg: M, delay: SimDuration) {
        self.kernel.send_from(self.self_id, dst, msg, delay);
    }

    /// Arrange for [`Process::on_timer`] to be called with `token` after
    /// `delay`. Crashing the node cancels all pending timers.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        let at = self.kernel.now + delay;
        self.kernel.push(at, self.self_id, EventPayload::Timer { token, epoch: self.self_epoch });
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.kernel.rng
    }
}

/// The simulator: owns the nodes, the event queue and the virtual clock.
pub struct Sim<M> {
    kernel: Kernel<M>,
    nodes: Vec<NodeSlot<M>>,
    started: bool,
}

impl<M: 'static> Sim<M> {
    /// Create a simulator with the given RNG seed and latency model. Two
    /// simulators built with the same seed, model and node set produce
    /// identical runs.
    pub fn new(seed: u64, latency: impl LatencyModel + 'static) -> Self {
        Sim {
            kernel: Kernel {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                rng: StdRng::seed_from_u64(seed),
                latency: Box::new(latency),
                link_clock: HashMap::new(),
                sizer: |_| 256,
                events_processed: 0,
            },
            nodes: Vec::new(),
            started: false,
        }
    }

    /// Install a function estimating the wire size of a message (bytes).
    /// Defaults to a constant 256 B. Used by bandwidth-aware latency models.
    pub fn set_message_sizer(&mut self, sizer: fn(&M) -> usize) {
        self.kernel.sizer = sizer;
    }

    /// Register a node; returns its id. Ids are dense and assigned in
    /// registration order. If the simulation already ran, the node's
    /// `on_start` fires at the current virtual time.
    pub fn add_node(&mut self, proc: impl Process<M>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot { proc: Box::new(proc), alive: true, epoch: 0 });
        if self.started {
            self.start_node(id);
        }
        id
    }

    fn start_node(&mut self, id: NodeId) {
        let slot = &mut self.nodes[id.index()];
        let mut ctx = Ctx { kernel: &mut self.kernel, self_id: id, self_epoch: slot.epoch };
        slot.proc.on_start(&mut ctx);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Total number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.kernel.events_processed
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the node is currently up.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes[id.index()].alive
    }

    /// Immutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the node is not of type `T`.
    pub fn node_ref<T: 'static>(&self, id: NodeId) -> &T {
        let any: &dyn Any = self.nodes[id.index()].proc.as_ref();
        any.downcast_ref::<T>().expect("node type mismatch")
    }

    /// Mutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the node is not of type `T`.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        let any: &mut dyn Any = self.nodes[id.index()].proc.as_mut();
        any.downcast_mut::<T>().expect("node type mismatch")
    }

    /// Schedule a crash of `node` at absolute time `at`.
    pub fn schedule_crash(&mut self, node: NodeId, at: SimTime) {
        self.kernel.push(at, node, EventPayload::Crash);
    }

    /// Schedule a restart of `node` at absolute time `at`.
    pub fn schedule_restart(&mut self, node: NodeId, at: SimTime) {
        self.kernel.push(at, node, EventPayload::Restart);
    }

    /// Inject a message from the outside world (no latency applied).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M, at: SimTime) {
        let at = at.max(self.kernel.now);
        self.kernel.push(at, to, EventPayload::Message { from, msg });
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.start_node(NodeId(i as u32));
            }
        }
    }

    /// Execute the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(ev) = self.kernel.heap.pop() else { return false };
        debug_assert!(ev.time >= self.kernel.now, "time must be monotone");
        self.kernel.now = ev.time;
        self.kernel.events_processed += 1;
        let slot = &mut self.nodes[ev.target.index()];
        match ev.payload {
            EventPayload::Message { from, msg } => {
                if slot.alive {
                    let mut ctx = Ctx {
                        kernel: &mut self.kernel,
                        self_id: ev.target,
                        self_epoch: slot.epoch,
                    };
                    slot.proc.on_message(&mut ctx, from, msg);
                }
                // Messages to crashed nodes are silently dropped (the wire
                // model: the TCP connection is gone).
            }
            EventPayload::Timer { token, epoch } => {
                if slot.alive && epoch == slot.epoch {
                    let mut ctx = Ctx {
                        kernel: &mut self.kernel,
                        self_id: ev.target,
                        self_epoch: slot.epoch,
                    };
                    slot.proc.on_timer(&mut ctx, token);
                }
            }
            EventPayload::Crash => {
                if slot.alive {
                    slot.alive = false;
                    slot.epoch += 1;
                    slot.proc.on_crash();
                }
            }
            EventPayload::Restart => {
                if !slot.alive {
                    slot.alive = true;
                    let mut ctx = Ctx {
                        kernel: &mut self.kernel,
                        self_id: ev.target,
                        self_epoch: slot.epoch,
                    };
                    slot.proc.on_restart(&mut ctx);
                }
            }
        }
        true
    }

    /// Run until the event queue drains.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Run until virtual time reaches `deadline` (events at exactly
    /// `deadline` are executed) or the queue drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        loop {
            match self.kernel.heap.peek() {
                Some(ev) if ev.time <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.kernel.now < deadline {
            self.kernel.now = deadline;
        }
    }

    /// Run at most `n` more events; returns how many were executed.
    pub fn run_steps(&mut self, n: u64) -> u64 {
        let mut done = 0;
        while done < n && self.step() {
            done += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::FixedLatency;

    #[derive(Default)]
    struct Recorder {
        log: Vec<(u64, NodeId, u32)>,
        crashes: u32,
        restarts: u32,
    }

    impl Process<u32> for Recorder {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.log.push((ctx.now().as_nanos(), from, msg));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, token: TimerToken) {
            self.log.push((ctx.now().as_nanos(), ctx.self_id(), token as u32 + 1000));
        }
        fn on_crash(&mut self) {
            self.crashes += 1;
        }
        fn on_restart(&mut self, _ctx: &mut Ctx<'_, u32>) {
            self.restarts += 1;
        }
    }

    struct Burst {
        dst: NodeId,
        n: u32,
    }
    impl Process<u32> for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            for i in 0..self.n {
                ctx.send(self.dst, i);
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
    }

    #[test]
    fn fifo_delivery_preserves_send_order() {
        let mut sim = Sim::new(1, FixedLatency::micros(10));
        let rec = sim.add_node(Recorder::default());
        sim.add_node(Burst { dst: rec, n: 50 });
        sim.run_until_idle();
        let msgs: Vec<u32> = sim.node_ref::<Recorder>(rec).log.iter().map(|e| e.2).collect();
        assert_eq!(msgs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        struct T;
        impl Process<u32> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.set_timer(SimDuration::from_micros(30), 7);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, token: TimerToken) {
                assert_eq!(token, 7);
                assert_eq!(ctx.now(), SimTime::from_micros(30));
                ctx.send(ctx.self_id(), 1); // loopback keeps the queue alive one more hop
            }
        }
        let mut sim = Sim::new(1, FixedLatency::micros(10));
        sim.add_node(T);
        sim.run_until_idle();
        assert_eq!(sim.now(), SimTime::from_micros(40));
    }

    #[test]
    fn crash_drops_messages_and_timers_restart_resumes() {
        let mut sim = Sim::new(1, FixedLatency::micros(10));
        let rec = sim.add_node(Recorder::default());
        let src = sim.add_node(Burst { dst: rec, n: 1 });
        sim.schedule_crash(rec, SimTime::from_micros(5)); // before delivery at 10us
        sim.run_until_idle();
        assert!(sim.node_ref::<Recorder>(rec).log.is_empty(), "message to dead node dropped");
        assert_eq!(sim.node_ref::<Recorder>(rec).crashes, 1);

        sim.schedule_restart(rec, SimTime::from_micros(50));
        sim.inject(src, rec, 9, SimTime::from_micros(60));
        sim.run_until_idle();
        let r = sim.node_ref::<Recorder>(rec);
        assert_eq!(r.restarts, 1);
        assert_eq!(r.log, vec![(60_000, src, 9)]);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(1, FixedLatency::micros(100));
        let rec = sim.add_node(Recorder::default());
        sim.add_node(Burst { dst: rec, n: 1 });
        sim.run_until(SimTime::from_micros(50));
        assert_eq!(sim.now(), SimTime::from_micros(50));
        assert!(sim.node_ref::<Recorder>(rec).log.is_empty());
        sim.run_until(SimTime::from_micros(200));
        assert_eq!(sim.node_ref::<Recorder>(rec).log.len(), 1);
        assert_eq!(sim.now(), SimTime::from_micros(200));
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run() -> Vec<(u64, NodeId, u32)> {
            let mut sim = Sim::new(1234, crate::latency::GigEModel::default());
            let rec = sim.add_node(Recorder::default());
            sim.add_node(Burst { dst: rec, n: 100 });
            sim.run_until_idle();
            sim.node_ref::<Recorder>(rec).log.clone()
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn late_added_node_is_started() {
        let mut sim = Sim::new(1, FixedLatency::micros(10));
        let rec = sim.add_node(Recorder::default());
        sim.run_until(SimTime::from_micros(100));
        sim.add_node(Burst { dst: rec, n: 2 });
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Recorder>(rec).log.len(), 2);
        assert!(sim.now() >= SimTime::from_micros(110));
    }
}
