//! Network latency models.
//!
//! The paper's cluster used 1 GigE for both the ZooKeeper ensemble and the
//! parallel-filesystem traffic. One-way latency is modelled as
//!
//! ```text
//! base + size / bandwidth + jitter
//! ```
//!
//! with exponentially distributed jitter, which is a standard first-order
//! model for a lightly loaded switched Ethernet. Models are sampled with the
//! simulator's seeded RNG, so runs stay deterministic.

use crate::event::NodeId;
use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::RngExt;

/// Samples a one-way latency for a message of `size_bytes` from `src` to
/// `dst`.
pub trait LatencyModel {
    /// Sample a delivery latency. `rng` is the simulator's deterministic RNG.
    fn sample(&self, rng: &mut StdRng, src: NodeId, dst: NodeId, size_bytes: usize) -> SimDuration;
}

/// A constant latency for every message — useful in unit tests where exact
/// virtual timestamps are asserted.
#[derive(Debug, Clone, Copy)]
pub struct FixedLatency(pub SimDuration);

impl FixedLatency {
    /// Fixed latency of `us` microseconds.
    pub const fn micros(us: u64) -> Self {
        FixedLatency(SimDuration::from_micros(us))
    }
}

impl LatencyModel for FixedLatency {
    fn sample(&self, _: &mut StdRng, _: NodeId, _: NodeId, _: usize) -> SimDuration {
        self.0
    }
}

/// GigE-class model: ~55 µs base one-way latency (kernel TCP stack + switch),
/// 125 MB/s line rate, exponential jitter with a small mean. Messages between
/// co-located nodes (same `NodeId`) short-circuit through loopback.
///
/// These constants put a ZooKeeper-style request/response round trip in the
/// 120–150 µs range, matching the 2011-era 1 GigE testbed class used in the
/// paper.
#[derive(Debug, Clone, Copy)]
pub struct GigEModel {
    /// Base one-way latency.
    pub base: SimDuration,
    /// Bytes per second of line rate.
    pub bandwidth_bps: f64,
    /// Mean of the exponential jitter term.
    pub jitter_mean: SimDuration,
    /// Latency used when `src == dst` (loopback, e.g. a ZooKeeper server
    /// co-located with a DUFS client, as in the paper's setup).
    pub loopback: SimDuration,
}

impl Default for GigEModel {
    fn default() -> Self {
        GigEModel {
            base: SimDuration::from_micros(55),
            bandwidth_bps: 125.0e6,
            jitter_mean: SimDuration::from_micros(6),
            loopback: SimDuration::from_micros(8),
        }
    }
}

impl GigEModel {
    /// The default 1 GigE profile used across the reproduction.
    pub fn gige() -> Self {
        Self::default()
    }
}

impl LatencyModel for GigEModel {
    fn sample(&self, rng: &mut StdRng, src: NodeId, dst: NodeId, size_bytes: usize) -> SimDuration {
        if src == dst {
            return self.loopback;
        }
        let wire = SimDuration::from_nanos((size_bytes as f64 / self.bandwidth_bps * 1e9) as u64);
        // Exponential jitter via inverse CDF; `random::<f64>()` is in [0, 1).
        let u: f64 = rng.random();
        let jitter = self.jitter_mean.mul_f64(-f64::ln(1.0 - u));
        self.base + wire + jitter
    }
}

/// Model for processes on the *same host* (e.g. the Fig 11 memory benchmark
/// where everything ran on one node): small constant cost plus memory-bus
/// bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct LocalBusModel {
    /// Per-message fixed cost (syscall/context switch class).
    pub base: SimDuration,
}

impl Default for LocalBusModel {
    fn default() -> Self {
        LocalBusModel { base: SimDuration::from_micros(4) }
    }
}

impl LatencyModel for LocalBusModel {
    fn sample(&self, _: &mut StdRng, _: NodeId, _: NodeId, _: usize) -> SimDuration {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_latency_is_fixed() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = FixedLatency::micros(50);
        for size in [0, 100, 1 << 20] {
            assert_eq!(
                m.sample(&mut rng, NodeId(0), NodeId(1), size),
                SimDuration::from_micros(50)
            );
        }
    }

    #[test]
    fn gige_loopback_is_cheap() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = GigEModel::default();
        let lo = m.sample(&mut rng, NodeId(3), NodeId(3), 4096);
        let net = m.sample(&mut rng, NodeId(3), NodeId(4), 4096);
        assert!(lo < net, "loopback {lo} should beat network {net}");
    }

    #[test]
    fn gige_larger_messages_take_longer_on_average() {
        let m = GigEModel::default();
        let avg = |size: usize| {
            let mut rng = StdRng::seed_from_u64(7);
            (0..1000)
                .map(|_| m.sample(&mut rng, NodeId(0), NodeId(1), size).as_nanos())
                .sum::<u64>() as f64
                / 1000.0
        };
        let small = avg(64);
        let big = avg(1 << 20); // 1 MiB at 125 MB/s adds ~8.4 ms
        assert!(big > small + 8_000_000.0, "small={small} big={big}");
    }

    #[test]
    fn gige_is_deterministic_for_a_seed() {
        let m = GigEModel::default();
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            (0..32)
                .map(|_| m.sample(&mut rng, NodeId(0), NodeId(1), 128).as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gige_jitter_mean_is_plausible() {
        // The mean sampled latency should sit near base + wire + jitter_mean.
        let m = GigEModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| m.sample(&mut rng, NodeId(0), NodeId(1), 0).as_nanos()).sum();
        let mean = sum as f64 / n as f64;
        let expect = (m.base + m.jitter_mean).as_nanos() as f64;
        assert!((mean - expect).abs() < 1_500.0, "mean={mean} expect={expect}");
    }
}
