//! Service-queue helper for modelling server-side processing capacity.
//!
//! A [`ServiceQueue`] models a resource with `c` parallel executors and an
//! unbounded FIFO backlog — e.g. a metadata server's request-processing
//! threads, or the single commit pipeline of a ZooKeeper leader. Processes
//! ask the queue *when* a newly arrived request will complete and schedule
//! their reply for that instant; saturation then emerges naturally: once all
//! executors are busy, completion times stack up and per-request latency
//! grows with load, which is exactly the mechanism behind the knee points in
//! the paper's throughput figures.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// FIFO service queue with `c` parallel executors.
#[derive(Debug, Clone)]
pub struct ServiceQueue {
    /// Free-at time per executor slot, kept as a min-heap.
    slots: BinaryHeap<Reverse<SimTime>>,
    /// Completion times of accepted requests (lazily pruned) for load
    /// introspection.
    completions: BinaryHeap<Reverse<SimTime>>,
    accepted: u64,
}

impl ServiceQueue {
    /// A queue with `parallelism` executors (must be ≥ 1).
    pub fn new(parallelism: usize) -> Self {
        assert!(parallelism >= 1, "a service queue needs at least one executor");
        let mut slots = BinaryHeap::with_capacity(parallelism);
        for _ in 0..parallelism {
            slots.push(Reverse(SimTime::ZERO));
        }
        ServiceQueue { slots, completions: BinaryHeap::new(), accepted: 0 }
    }

    /// Accept a request arriving at `now` needing `service` processing time;
    /// returns the virtual time at which it completes.
    pub fn complete_at(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let Reverse(free) = self.slots.pop().expect("slots is never empty");
        let start = free.max(now);
        let done = start + service;
        self.slots.push(Reverse(done));
        self.completions.push(Reverse(done));
        self.accepted += 1;
        done
    }

    /// Number of requests accepted but not yet complete at `now`
    /// (queued + in service). Prunes finished entries.
    pub fn in_flight(&mut self, now: SimTime) -> usize {
        while let Some(&Reverse(t)) = self.completions.peek() {
            if t <= now {
                self.completions.pop();
            } else {
                break;
            }
        }
        self.completions.len()
    }

    /// Total requests ever accepted.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Earliest time at which some executor is free (i.e. when a request
    /// arriving now would *start*).
    pub fn next_free(&self) -> SimTime {
        self.slots.peek().map(|&Reverse(t)| t).unwrap_or(SimTime::ZERO)
    }

    /// Drop all backlog (used when a simulated server crashes).
    pub fn reset(&mut self) {
        let n = self.slots.len();
        self.slots.clear();
        for _ in 0..n {
            self.slots.push(Reverse(SimTime::ZERO));
        }
        self.completions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1_000;

    #[test]
    fn single_server_serializes() {
        let mut q = ServiceQueue::new(1);
        let t0 = SimTime::ZERO;
        let s = SimDuration::from_micros(10);
        assert_eq!(q.complete_at(t0, s).as_nanos(), 10 * US);
        assert_eq!(q.complete_at(t0, s).as_nanos(), 20 * US);
        assert_eq!(q.complete_at(t0, s).as_nanos(), 30 * US);
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut q = ServiceQueue::new(1);
        let s = SimDuration::from_micros(10);
        q.complete_at(SimTime::ZERO, s);
        // Arrives long after the first finished: no queueing delay.
        let done = q.complete_at(SimTime::from_micros(100), s);
        assert_eq!(done, SimTime::from_micros(110));
    }

    #[test]
    fn parallel_slots_overlap() {
        let mut q = ServiceQueue::new(2);
        let t0 = SimTime::ZERO;
        let s = SimDuration::from_micros(10);
        assert_eq!(q.complete_at(t0, s).as_nanos(), 10 * US);
        assert_eq!(q.complete_at(t0, s).as_nanos(), 10 * US); // second slot
        assert_eq!(q.complete_at(t0, s).as_nanos(), 20 * US); // queued behind one of them
    }

    #[test]
    fn in_flight_tracks_load() {
        let mut q = ServiceQueue::new(1);
        let s = SimDuration::from_micros(10);
        for _ in 0..5 {
            q.complete_at(SimTime::ZERO, s);
        }
        assert_eq!(q.in_flight(SimTime::ZERO), 5);
        assert_eq!(q.in_flight(SimTime::from_micros(25)), 3);
        assert_eq!(q.in_flight(SimTime::from_micros(50)), 0);
        assert_eq!(q.accepted(), 5);
    }

    #[test]
    fn reset_clears_backlog() {
        let mut q = ServiceQueue::new(2);
        let s = SimDuration::from_micros(100);
        for _ in 0..10 {
            q.complete_at(SimTime::ZERO, s);
        }
        q.reset();
        assert_eq!(q.in_flight(SimTime::ZERO), 0);
        assert_eq!(q.complete_at(SimTime::from_micros(1), s), SimTime::from_micros(101));
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn zero_parallelism_rejected() {
        ServiceQueue::new(0);
    }
}
