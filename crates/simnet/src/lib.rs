#![warn(missing_docs)]

//! # dufs-simnet — deterministic discrete-event cluster simulator
//!
//! This crate provides the simulation substrate for the DUFS reproduction
//! (CLUSTER 2011). The paper's evaluation ran on a physical Linux cluster
//! connected with 1 GigE; we reproduce the *mechanisms* that shape its
//! throughput curves — network round-trips, per-link FIFO delivery, server
//! service queues with bounded parallelism, and quorum fan-out cost — inside
//! a deterministic discrete-event simulator, so that 256-client parameter
//! sweeps are reproducible on a single machine.
//!
//! ## Model
//!
//! A simulation is a set of [`Process`] nodes exchanging typed messages.
//! Every message send samples a latency from a [`LatencyModel`] and is
//! delivered in FIFO order per directed link (mirroring TCP, which the ZAB
//! protocol assumes). Processes may also set timers. The kernel executes
//! events in virtual-time order; ties are broken by insertion sequence, so a
//! run is a pure function of the initial state and the RNG seed.
//!
//! ## Quick example
//!
//! ```
//! use dufs_simnet::{Sim, Process, Ctx, NodeId, SimTime, FixedLatency};
//!
//! struct Echo;
//! struct Pinger { got: u32 }
//!
//! impl Process<&'static str> for Echo {
//!     fn on_message(&mut self, ctx: &mut Ctx<&'static str>, from: NodeId, _m: &'static str) {
//!         ctx.send(from, "pong");
//!     }
//! }
//! impl Process<&'static str> for Pinger {
//!     fn on_start(&mut self, ctx: &mut Ctx<&'static str>) {
//!         ctx.send(NodeId(0), "ping");
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<&'static str>, _from: NodeId, _m: &'static str) {
//!         self.got += 1;
//!     }
//! }
//!
//! let mut sim = Sim::new(42, FixedLatency::micros(50));
//! sim.add_node(Echo);
//! sim.add_node(Pinger { got: 0 });
//! sim.run_until_idle();
//! assert_eq!(sim.node_ref::<Pinger>(NodeId(1)).got, 1);
//! assert_eq!(sim.now(), SimTime::from_micros(100)); // one RTT
//! ```

pub mod event;
pub mod latency;
pub mod queue;
pub mod sim;
pub mod stats;
pub mod time;

pub use event::{NodeId, TimerToken};
pub use latency::{FixedLatency, GigEModel, LatencyModel, LocalBusModel};
pub use queue::ServiceQueue;
pub use sim::{Ctx, Process, Sim};
pub use stats::{LatencyHist, Throughput};
pub use time::{SimDuration, SimTime};
