//! The phase controller: mdtest's inter-phase barrier plus result
//! collection.
//!
//! Clients report `PhaseDone` after setup and after each phase; once every
//! client has reported, the controller records the phase's aggregate
//! throughput (total operations / phase wall time, exactly mdtest's rate
//! definition) and broadcasts the next `StartPhase`.

use dufs_simnet::{Ctx, LatencyHist, NodeId, Process, SimDuration, SimTime};

use crate::msg::ClusterMsg;

/// Aggregate result of one phase.
#[derive(Debug, Clone)]
pub struct PhaseTally {
    /// Total operations completed by all clients.
    pub ops: u64,
    /// Operations that returned errors.
    pub errors: u64,
    /// Virtual time the phase took (barrier to barrier).
    pub elapsed: SimDuration,
    /// Merged per-operation latency distribution across all clients.
    pub latency: LatencyHist,
}

impl PhaseTally {
    /// Aggregate operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.ops as f64 / s
        }
    }
}

/// The controller process.
pub struct ControllerProc {
    clients: Vec<NodeId>,
    n_phases: usize,
    reported: usize,
    acc_ops: u64,
    acc_errors: u64,
    acc_hist: LatencyHist,
    /// -1 while waiting for setup reports; then the running phase index.
    current: isize,
    phase_start: SimTime,
    /// Completed phase tallies, in phase order.
    pub results: Vec<PhaseTally>,
    /// True once every phase completed.
    pub finished: bool,
}

impl ControllerProc {
    /// A controller awaiting `clients` through `n_phases` phases.
    pub fn new(clients: Vec<NodeId>, n_phases: usize) -> Self {
        ControllerProc {
            clients,
            n_phases,
            reported: 0,
            acc_ops: 0,
            acc_errors: 0,
            acc_hist: LatencyHist::new(),
            current: -1,
            phase_start: SimTime::ZERO,
            results: Vec::new(),
            finished: false,
        }
    }

    fn broadcast(&self, ctx: &mut Ctx<'_, ClusterMsg>, idx: usize) {
        for &c in &self.clients {
            ctx.send(c, ClusterMsg::StartPhase { idx });
        }
    }
}

impl Process<ClusterMsg> for ControllerProc {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, _from: NodeId, msg: ClusterMsg) {
        let ClusterMsg::PhaseDone { ops, errors, hist, .. } = msg else {
            panic!("controller got unexpected message");
        };
        self.reported += 1;
        self.acc_ops += ops;
        self.acc_errors += errors;
        self.acc_hist.merge(&hist);
        if self.reported < self.clients.len() {
            return;
        }
        // Barrier reached.
        if self.current >= 0 {
            self.results.push(PhaseTally {
                ops: self.acc_ops,
                errors: self.acc_errors,
                elapsed: ctx.now().since(self.phase_start),
                latency: std::mem::take(&mut self.acc_hist),
            });
        }
        self.reported = 0;
        self.acc_ops = 0;
        self.acc_errors = 0;
        self.acc_hist = LatencyHist::new();
        let next = (self.current + 1) as usize;
        if next < self.n_phases {
            self.current = next as isize;
            self.phase_start = ctx.now();
            self.broadcast(ctx, next);
        } else {
            self.finished = true;
            // Tell clients to stand down (index past the end).
            self.broadcast(ctx, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufs_simnet::{FixedLatency, Sim};

    /// A trivial client: answers each StartPhase with an immediate
    /// PhaseDone of `ops` operations.
    struct Stub {
        controller: NodeId,
        ops: u64,
        phases_seen: usize,
    }
    impl Process<ClusterMsg> for Stub {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
            ctx.send(
                self.controller,
                ClusterMsg::PhaseDone { client: 0, ops: 0, errors: 0, hist: LatencyHist::new() },
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, _f: NodeId, msg: ClusterMsg) {
            if let ClusterMsg::StartPhase { idx } = msg {
                if idx < 2 {
                    self.phases_seen += 1;
                    let mut hist = LatencyHist::new();
                    hist.record(SimDuration::from_micros(100 * (idx as u64 + 1)));
                    ctx.send(
                        self.controller,
                        ClusterMsg::PhaseDone {
                            client: 0,
                            ops: self.ops,
                            errors: idx as u64,
                            hist,
                        },
                    );
                }
            }
        }
    }

    #[test]
    fn controller_runs_phases_and_tallies() {
        let mut sim: Sim<ClusterMsg> = Sim::new(1, FixedLatency::micros(100));
        // Nodes: controller = 0, stubs = 1, 2.
        let ctrl = NodeId(0);
        sim.add_node(ControllerProc::new(vec![NodeId(1), NodeId(2)], 2));
        sim.add_node(Stub { controller: ctrl, ops: 10, phases_seen: 0 });
        sim.add_node(Stub { controller: ctrl, ops: 20, phases_seen: 0 });
        sim.run_until_idle();
        let c = sim.node_ref::<ControllerProc>(ctrl);
        assert!(c.finished);
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].ops, 30);
        assert_eq!(c.results[0].errors, 0);
        assert_eq!(c.results[1].errors, 2);
        assert!(c.results[0].elapsed > SimDuration::ZERO);
        assert!(c.results[0].ops_per_sec() > 0.0);
        assert_eq!(c.results[0].latency.count(), 2, "one sample per stub");
        assert_eq!(c.results[0].latency.mean(), SimDuration::from_micros(100));
        assert_eq!(sim.node_ref::<Stub>(NodeId(1)).phases_seen, 2);
    }
}
