//! The unified message type of the simulated testbed.

use dufs_coord::{CoordMsg, ZkRequest, ZkResponse};
use dufs_core::plan::{BackendReq, BackendResp};
use dufs_simnet::LatencyHist;
use dufs_zab::PeerId;

use crate::workload::NativeOp;

/// Everything that travels between simulated nodes.
#[allow(clippy::large_enum_variant)] // messages are moved once, never stored in bulk
#[derive(Debug, Clone)]
pub enum ClusterMsg {
    /// Client → coordination server.
    ZkReq {
        /// Requesting client process (globally unique).
        client: u64,
        /// Client-local request id (echoed back).
        req_id: u64,
        /// Session id (0 before connect).
        session: u64,
        /// The request.
        req: ZkRequest,
    },
    /// Coordination server → client.
    ZkResp {
        /// Target client process.
        client: u64,
        /// Echo of the request id.
        req_id: u64,
        /// The response.
        resp: ZkResponse,
    },
    /// Coordination server ↔ coordination server.
    CoordPeer {
        /// Sending server's peer id.
        from: PeerId,
        /// The protocol message.
        msg: CoordMsg,
    },
    /// DUFS client → back-end metadata/IO server (physical FID paths).
    BeReq {
        /// Requesting client process.
        client: u64,
        /// Client-local request id.
        req_id: u64,
        /// The request.
        req: BackendReq,
        /// True for DUFS's 4-level shard paths (deeper lookups cost more at
        /// the MDS — see `costs::SHARD_DEPTH_FACTOR`).
        deep_path: bool,
    },
    /// Back-end server → client.
    BeResp {
        /// Target client process.
        client: u64,
        /// Echo of the request id.
        req_id: u64,
        /// The response.
        resp: BackendResp,
    },
    /// mdtest client → back-end server: a native-filesystem metadata op
    /// (the Basic Lustre / Basic PVFS2 baselines).
    NativeReq {
        /// Requesting client process.
        client: u64,
        /// Client-local request id.
        req_id: u64,
        /// The operation.
        op: NativeOp,
    },
    /// Back-end server → native client: success flag (mdtest only needs
    /// success/failure and timing).
    NativeResp {
        /// Target client process.
        client: u64,
        /// Echo of the request id.
        req_id: u64,
        /// Whether the op succeeded.
        ok: bool,
    },
    /// Client process → controller: finished its share of the current
    /// phase.
    PhaseDone {
        /// Client process id.
        client: u64,
        /// Operations the client completed in the phase.
        ops: u64,
        /// Operations that failed (should be zero in healthy runs).
        errors: u64,
        /// Per-operation latency distribution for the phase.
        hist: LatencyHist,
    },
    /// Controller → client processes: begin phase `idx`.
    StartPhase {
        /// Phase index into the workload's phase list.
        idx: usize,
    },
}

/// Approximate wire size of a message (drives the bandwidth term of the
/// latency model).
pub fn wire_size(msg: &ClusterMsg) -> usize {
    match msg {
        ClusterMsg::ZkReq { req, .. } => {
            64 + match req {
                ZkRequest::Create { path, data, .. } => path.len() + data.len(),
                ZkRequest::SetData { path, data, .. } => path.len() + data.len(),
                ZkRequest::Delete { path, .. }
                | ZkRequest::GetData { path, .. }
                | ZkRequest::Exists { path, .. }
                | ZkRequest::GetChildren { path, .. } => path.len(),
                ZkRequest::Multi { ops } => 48 * ops.len(),
                _ => 16,
            }
        }
        ClusterMsg::ZkResp { resp, .. } => {
            64 + match resp {
                ZkResponse::Data { data, .. } => data.len() + 80,
                ZkResponse::Children { names, .. } => {
                    names.iter().map(|n| n.len() + 8).sum::<usize>() + 80
                }
                _ => 48,
            }
        }
        ClusterMsg::CoordPeer { msg, .. } => {
            64 + match msg {
                CoordMsg::Zab(dufs_zab::ZabMsg::SyncLog { entries, .. }) => 128 * entries.len(),
                // Group-commit batches pay the bandwidth term per carried
                // transaction (a batch of one costs exactly what a single
                // Propose always did).
                CoordMsg::Zab(dufs_zab::ZabMsg::Propose { txns, .. }) => 160 * txns.len(),
                CoordMsg::Zab(dufs_zab::ZabMsg::Inform { txns, .. }) => 32 * txns.len(),
                CoordMsg::Forward { .. } => 160,
                _ => 32,
            }
        }
        ClusterMsg::BeReq { req, .. } => {
            64 + match req {
                BackendReq::Write { data, .. } => data.len(),
                _ => 64,
            }
        }
        ClusterMsg::BeResp { resp, .. } => {
            64 + match resp {
                BackendResp::Data(Ok(d)) => d.len(),
                _ => 32,
            }
        }
        ClusterMsg::NativeReq { .. } => 128,
        ClusterMsg::NativeResp { .. } => 64,
        ClusterMsg::PhaseDone { .. } | ClusterMsg::StartPhase { .. } => 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = ClusterMsg::ZkReq {
            client: 1,
            req_id: 1,
            session: 0,
            req: ZkRequest::GetData { path: "/a".into(), watch: false },
        };
        let big = ClusterMsg::BeReq {
            client: 1,
            req_id: 1,
            req: BackendReq::Write {
                path: "/p".into(),
                offset: 0,
                data: Bytes::from(vec![0u8; 1 << 20]),
            },
            deep_path: true,
        };
        assert!(wire_size(&big) > wire_size(&small) + (1 << 20) - 64);
    }
}
