//! Calibrated cost model for the simulated testbed.
//!
//! Constants are chosen so the two *baselines* the paper measures directly
//! land in its reported ranges on the same hardware class (dual Xeon E5335,
//! 1 GigE, Lustre 1.8.3 / PVFS2 2.8.2, ZooKeeper with the sync API):
//!
//! * raw 1-server `zoo_create` ≈ 14 k ops/s and 8-server ≈ 6 k ops/s
//!   (Fig 7a) → a single-threaded ~60 µs commit pipeline plus ~5 µs per
//!   peer message at the leader (7 proposes + 7 acks + 7 commits for n=8);
//! * raw 8-server `zoo_get` ≈ 160 k ops/s (Fig 7d) → ~50 µs per local read;
//! * Basic Lustre / PVFS2 figures → the profiles in
//!   `dufs_backendfs::timing` (see that module's derivation).
//!
//! Client-side costs reflect the paper's deployment: 8-core client nodes
//! each co-hosting up to 32 mdtest processes, a ZooKeeper server and the
//! FUSE/DUFS stack — client-node CPU is a real resource and saturates, which
//! is what pins DUFS's file-stat curve near 40–45 k ops/s while dir-stat
//! (no back-end hop, no Lustre client stack) reaches ~90 k (Figs 8c/8f).

use dufs_simnet::SimDuration;

/// Number of physical client nodes in the testbed (§V: "8 DUFS clients").
pub const CLIENT_NODES: usize = 8;
/// Cores per node (dual Xeon E5335 = 8 cores).
pub const NODE_CORES: usize = 8;

// ---------------- coordination-server costs ----------------

/// Serialized CPU per local read (`zoo_get`/`exists`/`get_children`).
pub const ZK_READ_US: f64 = 50.0;
/// Base serialized CPU per write at the leader (txn pipeline).
pub const ZK_WRITE_BASE_US: f64 = 60.0;
/// CPU per peer-directed protocol message sent or received at a server.
pub const ZK_PEER_MSG_US: f64 = 5.0;
/// CPU to parse a client request / serialize a response.
pub const ZK_CLIENT_MSG_US: f64 = 4.0;
/// Write-pipeline parallelism: ZooKeeper's commit path is a single ordered
/// pipeline.
pub const ZK_PIPELINE_WIDTH: usize = 1;
/// Extra CPU per multi-op inside a transaction.
pub const ZK_MULTI_PER_OP_US: f64 = 12.0;
/// Service time of one write-ahead-log group fsync at a durable
/// coordination server (§IV-I + the dufs-wal subsystem): the device flush
/// a server must wait for before releasing ACKs. ~100 µs models the
/// paper era's write-cache-backed disk arrays; what matters for the
/// experiments is the *ratio* to `ZK_WRITE_BASE_US` — fsync-per-txn
/// roughly halves write throughput, and group commit amortizes the same
/// flush across a whole batch (see `bench_wal`).
pub const FSYNC_US: f64 = 100.0;

// ---------------- client-side (FUSE + DUFS + library) costs ----------------

/// Client CPU consumed by one raw ZooKeeper API call (C client library +
/// syscalls), charged on the client node's core pool.
pub const RAW_CLIENT_OP_US: f64 = 220.0;
/// Client CPU for one DUFS *metadata-only* operation: two FUSE kernel
/// crossings, DUFS dispatch, ZooKeeper client library.
pub const DUFS_META_OP_US: f64 = 680.0;
/// Additional client CPU when the operation also traverses the back-end
/// client stack (llite/PVFS client, extra RPC serialization).
pub const DUFS_BACKEND_EXTRA_US: f64 = 320.0;
/// Client CPU for one native (Basic Lustre / Basic PVFS2) mdtest operation.
pub const NATIVE_CLIENT_OP_US: f64 = 260.0;

// ---------------- back-end extras ----------------

/// Helper: microseconds → `SimDuration`.
pub fn us(v: f64) -> SimDuration {
    SimDuration::from_micros_f64(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Closed-form sanity checks against the paper's anchor numbers.
    #[test]
    fn zk_write_calibration_brackets_fig7a() {
        // 1 server: no peer traffic.
        let t1 = ZK_WRITE_BASE_US + ZK_CLIENT_MSG_US * 2.0;
        let x1 = 1e6 / t1;
        assert!((12_000.0..16_000.0).contains(&x1), "1-server create {x1:.0}");
        // 8 servers: 7 proposes + 7 acks + 7 commits at the leader.
        let t8 = t1 + 21.0 * ZK_PEER_MSG_US;
        let x8 = 1e6 / t8;
        assert!((5_000.0..7_500.0).contains(&x8), "8-server create {x8:.0}");
        assert!(x1 / x8 > 1.8, "write throughput must fall with ensemble size");
    }

    #[test]
    fn zk_read_calibration_brackets_fig7d() {
        let per_server = 1e6 / (ZK_READ_US + ZK_CLIENT_MSG_US * 2.0);
        let x8 = 8.0 * per_server;
        assert!((120_000.0..180_000.0).contains(&x8), "8-server get {x8:.0}");
    }

    #[test]
    fn client_cpu_pins_dufs_stat_curves() {
        let cores = (CLIENT_NODES * NODE_CORES) as f64;
        let dir_stat_cap = cores * 1e6 / DUFS_META_OP_US;
        let file_stat_cap = cores * 1e6 / (DUFS_META_OP_US + DUFS_BACKEND_EXTRA_US);
        // Fig 8c tops near 90k; Fig 10f near 42k.
        assert!((80_000.0..110_000.0).contains(&dir_stat_cap), "dir stat cap {dir_stat_cap:.0}");
        assert!((55_000.0..75_000.0).contains(&file_stat_cap), "file stat cap {file_stat_cap:.0}");
    }
}
