//! mdtest-style workload generation (paper §V: "directory structure with a
//! fan-out factor of 10 and directory depth of 5").
//!
//! Each client process owns a private subtree (mdtest's unique-directory
//! mode) and runs the six measured phases in order: directory
//! create/stat/removal and file create/stat/removal. Within a process,
//! directories form a `z`-ary heap-shaped tree (directory *j*'s parent is
//! directory *(j-1)/z*), which yields depth ⌈log_z n⌉ — fan-out 10, depth 5
//! at the paper's scales. Files are spread across the directories
//! round-robin, so "as the number of processes increases, the number of
//! files per directory also increases accordingly".

/// One mdtest phase. Order matches mdtest's run order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// `mkdir` every tree directory.
    DirCreate,
    /// `stat` every directory.
    DirStat,
    /// `rmdir` every directory (children first).
    DirRemove,
    /// `creat` every file.
    FileCreate,
    /// `stat` every file.
    FileStat,
    /// `unlink` every file.
    FileRemove,
}

impl Phase {
    /// All six phases. Directory removal runs last so the file phases can
    /// use the directory tree (mdtest's separate iterations, flattened).
    pub const ALL: [Phase; 6] = [
        Phase::DirCreate,
        Phase::DirStat,
        Phase::FileCreate,
        Phase::FileStat,
        Phase::FileRemove,
        Phase::DirRemove,
    ];

    /// Whether this phase mutates the namespace.
    pub fn is_mutation(self) -> bool {
        !matches!(self, Phase::DirStat | Phase::FileStat)
    }

    /// Human-readable name matching the paper's figure captions.
    pub fn label(self) -> &'static str {
        match self {
            Phase::DirCreate => "Directory creation",
            Phase::DirStat => "Directory stat",
            Phase::DirRemove => "Directory removal",
            Phase::FileCreate => "File creation",
            Phase::FileStat => "File stat",
            Phase::FileRemove => "File removal",
        }
    }
}

/// A primitive metadata operation against a native filesystem (the Basic
/// Lustre / PVFS2 baselines run these directly; DUFS clients run the
/// equivalent `MetaOp`s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NativeOp {
    /// mkdir(path)
    Mkdir(String),
    /// rmdir(path)
    Rmdir(String),
    /// creat(path)
    Create(String),
    /// unlink(path)
    Unlink(String),
    /// stat(path) of a directory
    StatDir(String),
    /// stat(path) of a file
    StatFile(String),
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Total client processes (the x-axis of Figs 7–10).
    pub processes: usize,
    /// Tree fan-out (paper: 10).
    pub fanout: usize,
    /// Directories each process creates (tree size).
    pub dirs_per_proc: usize,
    /// Files each process creates.
    pub files_per_proc: usize,
    /// Which phases to run (default: all six).
    pub phases: Vec<Phase>,
    /// Shared-directory mode (§V: "experiments where many files are
    /// created in a single directory"): every process's files live
    /// directly in `/mdtest`, so all creates contend on one parent.
    /// Directory phases keep their private trees.
    pub shared_dir: bool,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            processes: 64,
            fanout: 10,
            dirs_per_proc: 60,
            files_per_proc: 60,
            phases: Phase::ALL.to_vec(),
            shared_dir: false,
        }
    }
}

impl WorkloadSpec {
    /// Root of one process's private subtree.
    pub fn proc_root(proc: usize) -> String {
        format!("/mdtest/p{proc}")
    }

    /// Paths every process needs to exist before the phases start (the
    /// shared root and its own subtree root). Created during setup, not
    /// measured — mdtest does the same.
    pub fn setup_paths(&self, proc: usize) -> Vec<String> {
        vec!["/mdtest".to_string(), Self::proc_root(proc)]
    }

    /// Directory paths of process `proc` in creation (parent-first) order.
    pub fn dir_paths(&self, proc: usize) -> Vec<String> {
        let root = Self::proc_root(proc);
        let mut out = Vec::with_capacity(self.dirs_per_proc);
        for j in 0..self.dirs_per_proc {
            if j == 0 {
                out.push(format!("{root}/d0"));
            } else {
                let parent = (j - 1) / self.fanout;
                // Parent directory j's path is out[parent].
                out.push(format!("{}/d{j}", out[parent]));
            }
        }
        out
    }

    /// File paths of process `proc`: file `i` lives in directory
    /// `i mod dirs` of the tree (round-robin), or in the subtree root if no
    /// directories are configured.
    pub fn file_paths(&self, proc: usize) -> Vec<String> {
        if self.shared_dir {
            // One directory for everyone: names disambiguated by process.
            return (0..self.files_per_proc).map(|i| format!("/mdtest/p{proc}-f{i}")).collect();
        }
        let dirs = self.dir_paths(proc);
        let root = Self::proc_root(proc);
        (0..self.files_per_proc)
            .map(|i| {
                if dirs.is_empty() {
                    format!("{root}/f{i}")
                } else {
                    format!("{}/f{i}", dirs[i % dirs.len()])
                }
            })
            .collect()
    }

    /// The operations process `proc` performs in `phase`, in order.
    pub fn ops_for(&self, proc: usize, phase: Phase) -> Vec<NativeOp> {
        match phase {
            Phase::DirCreate => self.dir_paths(proc).into_iter().map(NativeOp::Mkdir).collect(),
            Phase::DirStat => self.dir_paths(proc).into_iter().map(NativeOp::StatDir).collect(),
            Phase::DirRemove => {
                let mut v: Vec<NativeOp> =
                    self.dir_paths(proc).into_iter().map(NativeOp::Rmdir).collect();
                v.reverse(); // children before parents
                v
            }
            Phase::FileCreate => self.file_paths(proc).into_iter().map(NativeOp::Create).collect(),
            Phase::FileStat => self.file_paths(proc).into_iter().map(NativeOp::StatFile).collect(),
            Phase::FileRemove => self.file_paths(proc).into_iter().map(NativeOp::Unlink).collect(),
        }
    }

    /// Maximum tree depth the directory layout reaches (for documentation
    /// and tests: ~5 at the paper's scales).
    pub fn tree_depth(&self) -> usize {
        let mut depth = 0;
        let mut j = self.dirs_per_proc.saturating_sub(1);
        while j > 0 {
            j = (j - 1) / self.fanout;
            depth += 1;
        }
        depth + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            processes: 4,
            fanout: 10,
            dirs_per_proc: 25,
            files_per_proc: 30,
            phases: Phase::ALL.to_vec(),
            shared_dir: false,
        }
    }

    #[test]
    fn dir_tree_is_parent_first_and_fanout_bounded() {
        let s = spec();
        let dirs = s.dir_paths(0);
        assert_eq!(dirs.len(), 25);
        assert_eq!(dirs[0], "/mdtest/p0/d0");
        // Each path's parent must appear earlier in the list.
        for (j, d) in dirs.iter().enumerate().skip(1) {
            let parent = &dirs[(j - 1) / 10];
            assert!(d.starts_with(parent.as_str()), "{d} under {parent}");
        }
        // Fan-out: d0 has children d1..=d10 (10 children max).
        let children_of_d0 = dirs
            .iter()
            .filter(|d| d.starts_with("/mdtest/p0/d0/") && d.matches('/').count() == 4)
            .count();
        assert!(children_of_d0 <= 10);
    }

    #[test]
    fn files_round_robin_over_dirs() {
        let s = spec();
        let files = s.file_paths(1);
        assert_eq!(files.len(), 30);
        let dirs = s.dir_paths(1);
        assert!(files[0].starts_with(&dirs[0]));
        assert!(files[1].starts_with(&dirs[1]));
        // Wraps around after 25 dirs.
        assert!(files[25].starts_with(&dirs[0]));
    }

    #[test]
    fn remove_phase_is_reverse_of_create() {
        let s = spec();
        let creates = s.ops_for(0, Phase::DirCreate);
        let removes = s.ops_for(0, Phase::DirRemove);
        assert_eq!(creates.len(), removes.len());
        match (&creates[0], removes.last().unwrap()) {
            (NativeOp::Mkdir(a), NativeOp::Rmdir(b)) => assert_eq!(a, b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn processes_have_disjoint_namespaces() {
        let s = spec();
        let a = s.dir_paths(0);
        let b = s.dir_paths(1);
        for p in &a {
            assert!(!b.contains(p));
        }
    }

    #[test]
    fn depth_matches_paper_at_scale() {
        // Fan-out 10: a few hundred directories reach depth ~3-4; the
        // paper's full runs (thousands of items) reach 5. Verify the
        // formula's monotonicity.
        let mut s = spec();
        s.dirs_per_proc = 11_111; // 1+10+100+1000+10000 → depth 5
        assert_eq!(s.tree_depth(), 5);
        s.dirs_per_proc = 11;
        assert_eq!(s.tree_depth(), 2);
    }

    #[test]
    fn phase_labels_and_mutation_flags() {
        assert_eq!(Phase::DirCreate.label(), "Directory creation");
        assert!(Phase::DirCreate.is_mutation());
        assert!(!Phase::FileStat.is_mutation());
        assert_eq!(Phase::ALL.len(), 6);
    }
}
