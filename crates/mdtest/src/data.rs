//! Mixed metadata+data workloads: the data half of mdtest.
//!
//! With `--data <bytes>`, every file create is followed by a striped write
//! of deterministic, path-derived contents through a
//! [`dufs_store::StoreClient`], and every file stat by a
//! read-back verify of the per-FID CRC — so the run exercises the full
//! DUFS pipeline: metadata op → FID → `MD5(fid) mod N` placement → striped
//! data I/O. Because both the FID and the contents are pure functions of
//! the path, a simulated run and live runs on either transport must
//! produce the **same order-independent contents digest**; `scripts/ci.sh`
//! compares the printed `data digest` lines across all three paths.
//!
//! The optional Zipf popularity knob skews which files get re-read during
//! the stat phase, turning uniform verification traffic into hot-object
//! contention (a few FIDs absorb most reads — the
//! hostile-scenario axis ROADMAP asks for).

use dufs_core::hash::md5;
use dufs_core::Fid;
use dufs_store::{crc32, StoreClient};

use crate::workload::WorkloadSpec;

/// Data-path knobs for a mixed run.
#[derive(Debug, Clone, Copy)]
pub struct DataSpec {
    /// Bytes written per created file.
    pub bytes: usize,
    /// Stripe size for the striped store.
    pub stripe: usize,
    /// Zipf skew for stat-phase re-reads: `None`/`Some(0.0)` is uniform,
    /// larger theta concentrates reads on a few hot files.
    pub zipf: Option<f64>,
}

/// The FID naming a path's contents: the md5 of the path, which is both
/// deterministic across runs/transports and uniformly spread across
/// targets by the `MD5(fid) mod N` mapping.
pub fn fid_for_path(path: &str) -> Fid {
    let d = md5(path.as_bytes());
    Fid(u128::from_be_bytes(d))
}

/// Deterministic file contents: a splitmix64 stream seeded by the FID.
pub fn contents_for(path: &str, nbytes: usize) -> Vec<u8> {
    let fid = fid_for_path(path);
    let mut state = fid.0 as u64 ^ (fid.0 >> 64) as u64;
    (0..nbytes)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u8
        })
        .collect()
}

/// One file's contribution to the contents digest. XOR-mixing the FID in
/// makes the digest sensitive to *which* file holds *which* bytes; the
/// outer wrapping sum makes it order-independent across processes.
pub fn file_digest(fid: Fid, data: &[u8]) -> u64 {
    (fid.0 as u64) ^ ((fid.0 >> 64) as u64) ^ ((crc32(data) as u64) << 16)
}

/// The digest a correct run must produce, computed purely from the spec —
/// no store involved. Every runner's read-back digest is compared to this.
pub fn expected_data_digest(spec: &WorkloadSpec, data: &DataSpec) -> u64 {
    let mut sum = 0u64;
    for p in 0..spec.processes {
        for path in spec.file_paths(p) {
            sum = sum
                .wrapping_add(file_digest(fid_for_path(&path), &contents_for(&path, data.bytes)));
        }
    }
    sum
}

/// Zipf(theta) sampler over ranks `0..n` with a precomputed CDF.
/// `theta = 0` is uniform; `theta` around 0.8–1.2 gives realistic
/// file-popularity skew. Deterministic: seeded splitmix64, no OS entropy.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    state: u64,
}

impl Zipf {
    /// A sampler over `n` ranks with skew `theta`, seeded deterministically.
    pub fn new(n: usize, theta: f64, seed: u64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { cdf, state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    fn next_f64(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draw a rank in `0..n`; rank 0 is the hottest.
    pub fn sample(&mut self) -> usize {
        let u = self.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Write every file's contents through `store` (create side of a mixed
/// run), reading nothing back. Returns the number of files written.
pub fn write_all_files(
    store: &mut StoreClient,
    spec: &WorkloadSpec,
    data: &DataSpec,
    proc: usize,
) -> usize {
    let paths = spec.file_paths(proc);
    for path in &paths {
        let contents = contents_for(path, data.bytes);
        store.write(fid_for_path(path), 0, &contents).expect("striped write");
    }
    paths.len()
}

/// Read back and CRC-verify one file; panics on any mismatch (lost or
/// corrupt data is a harness failure, not a statistic).
pub fn verify_file(store: &mut StoreClient, path: &str, nbytes: usize) -> u64 {
    let fid = fid_for_path(path);
    let extent = store.written_extent(fid).expect("stat") as usize;
    assert_eq!(extent, nbytes, "{path}: written extent {extent}, want {nbytes}");
    let mut back = vec![0u8; extent];
    store.read_into(fid, 0, &mut back).expect("striped read");
    let expect = contents_for(path, nbytes);
    assert_eq!(crc32(&back), crc32(&expect), "{path}: contents CRC mismatch after read-back");
    file_digest(fid, &back)
}

/// Read every file of every process back through `store` and fold the
/// order-independent contents digest — the value printed as
/// `data digest 0x…` and compared across sim/thread/TCP runs.
pub fn read_back_digest(store: &mut StoreClient, spec: &WorkloadSpec, data: &DataSpec) -> u64 {
    let mut sum = 0u64;
    for p in 0..spec.processes {
        for path in spec.file_paths(p) {
            sum = sum.wrapping_add(verify_file(store, &path, data.bytes));
        }
    }
    sum
}

/// [`crate::live::run_live`] with the data path attached: each process
/// thread owns a metadata session **and** a [`StoreClient`], every
/// `creat` is followed by a striped write of the file's contents, and
/// every file stat by a read-back CRC verify. When `data.zipf` is set,
/// each file stat additionally re-reads a Zipf-sampled file from the
/// process's own set — hot-object contention on the data servers.
///
/// Returns the per-phase wall results plus the read-back contents digest
/// (computed through `store_for(spec.processes)`, a dedicated verify
/// client), which callers compare against [`expected_data_digest`].
pub fn run_live_data<T, F, S, G>(
    spec: &WorkloadSpec,
    data: &DataSpec,
    client_for: F,
    store_for: S,
    mut after_phase: G,
    strict_stats: bool,
) -> (Vec<crate::live::LivePhase>, u64)
where
    T: dufs_coord::ClientTransport + Send + 'static,
    F: Fn(usize) -> dufs_coord::ZkClient<T>,
    S: Fn(usize) -> StoreClient,
    G: FnMut(crate::workload::Phase),
{
    use crate::workload::NativeOp;
    use bytes::Bytes;
    use dufs_coord::Watch;
    use dufs_zkstore::{CreateMode, ZkError};
    use std::time::Instant;

    struct ProcState<T: dufs_coord::ClientTransport> {
        zk: dufs_coord::ZkClient<T>,
        store: StoreClient,
        files: Vec<String>,
        zipf: Option<Zipf>,
    }

    let data = *data;
    let mut procs: Vec<ProcState<T>> = (0..spec.processes)
        .map(|p| ProcState {
            zk: client_for(p),
            store: store_for(p),
            files: spec.file_paths(p),
            zipf: data.zipf.map(|theta| Zipf::new(spec.files_per_proc, theta, p as u64 + 1)),
        })
        .collect();

    // Unmeasured setup (mdtest pre-creates the roots).
    for (p, st) in procs.iter_mut().enumerate() {
        for path in spec.setup_paths(p) {
            match st.zk.create(&path, Bytes::new(), CreateMode::Persistent) {
                Ok(_) | Err(ZkError::NodeExists) => {}
                Err(e) => panic!("setup {path}: {e:?}"),
            }
        }
    }

    let mut out = Vec::with_capacity(spec.phases.len());
    for &phase in &spec.phases {
        let t0 = Instant::now();
        let mut total_ops = 0u64;
        let handles: Vec<std::thread::JoinHandle<ProcState<T>>> = procs
            .drain(..)
            .enumerate()
            .map(|(p, mut st)| {
                let ops = spec.ops_for(p, phase);
                total_ops += ops.len() as u64;
                std::thread::spawn(move || {
                    for op in &ops {
                        match op {
                            NativeOp::Mkdir(path) => {
                                match st.zk.create(path, Bytes::new(), CreateMode::Persistent) {
                                    Ok(_) | Err(ZkError::NodeExists) => {}
                                    Err(e) => panic!("mkdir {path}: {e:?}"),
                                }
                            }
                            NativeOp::Create(path) => {
                                let meta = Bytes::from(path.clone().into_bytes());
                                match st.zk.create(path, meta, CreateMode::Persistent) {
                                    Ok(_) | Err(ZkError::NodeExists) => {}
                                    Err(e) => panic!("creat {path}: {e:?}"),
                                }
                                // The data half of the create: a striped,
                                // acked write of the file's contents.
                                let contents = contents_for(path, data.bytes);
                                st.store
                                    .write(fid_for_path(path), 0, &contents)
                                    .expect("striped write");
                            }
                            NativeOp::Rmdir(path) => match st.zk.delete(path, None) {
                                Ok(()) | Err(ZkError::NoNode) => {}
                                Err(e) => panic!("rmdir {path}: {e:?}"),
                            },
                            NativeOp::Unlink(path) => {
                                match st.zk.delete(path, None) {
                                    Ok(()) | Err(ZkError::NoNode) => {}
                                    Err(e) => panic!("unlink {path}: {e:?}"),
                                }
                                st.store.delete(fid_for_path(path)).expect("data delete");
                            }
                            NativeOp::StatDir(path) => {
                                let stat = st
                                    .zk
                                    .exists(path, Watch::None)
                                    .unwrap_or_else(|e| panic!("stat {path}: {e:?}"));
                                if strict_stats {
                                    assert!(stat.is_some(), "stat {path} found nothing");
                                }
                            }
                            NativeOp::StatFile(path) => {
                                let stat = st
                                    .zk
                                    .exists(path, Watch::None)
                                    .unwrap_or_else(|e| panic!("stat {path}: {e:?}"));
                                if strict_stats {
                                    assert!(stat.is_some(), "stat {path} found nothing");
                                }
                                // The data half of the stat: read back and
                                // verify this process's own file...
                                verify_file(&mut st.store, path, data.bytes);
                                // ...plus a popularity-skewed extra read
                                // when the Zipf knob is on.
                                if let Some(z) = st.zipf.as_mut() {
                                    let hot = st.files[z.sample()].clone();
                                    verify_file(&mut st.store, &hot, data.bytes);
                                }
                            }
                        }
                    }
                    if phase.is_mutation() {
                        st.zk.sync().expect("phase sync");
                        st.store.sync().expect("data sync");
                    }
                    st
                })
            })
            .collect();
        procs = handles.into_iter().map(|h| h.join().expect("proc thread")).collect();

        let wall_us = t0.elapsed().as_micros().max(1) as u64;
        out.push(crate::live::LivePhase {
            phase,
            ops: total_ops,
            wall_us,
            ops_per_sec: total_ops as f64 / (wall_us as f64 / 1e6),
        });
        after_phase(phase);
    }
    drop(procs);

    // Whole-namespace read-back through a dedicated verify client.
    let mut verify = store_for(spec.processes);
    let digest = read_back_digest(&mut verify, spec, &data);
    (out, digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Phase, WorkloadSpec};
    use dufs_backendfs::MemEngine;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            processes: 3,
            fanout: 4,
            dirs_per_proc: 2,
            files_per_proc: 5,
            phases: vec![Phase::FileCreate, Phase::FileStat],
            shared_dir: false,
        }
    }

    #[test]
    fn fids_and_contents_are_deterministic() {
        assert_eq!(fid_for_path("/mdtest/p0/f0"), fid_for_path("/mdtest/p0/f0"));
        assert_ne!(fid_for_path("/a"), fid_for_path("/b"));
        assert_eq!(contents_for("/a", 64), contents_for("/a", 64));
        assert_ne!(contents_for("/a", 64), contents_for("/b", 64));
    }

    #[test]
    fn round_trip_digest_matches_expected() {
        let spec = small_spec();
        let data = DataSpec { bytes: 100, stripe: 16, zipf: None };
        let engines: Vec<Arc<Mutex<MemEngine>>> =
            (0..4).map(|_| Arc::new(Mutex::new(MemEngine::new()))).collect();
        let mut store = StoreClient::local(&engines, data.stripe);
        for p in 0..spec.processes {
            write_all_files(&mut store, &spec, &data, p);
        }
        let got = read_back_digest(&mut store, &spec, &data);
        assert_eq!(got, expected_data_digest(&spec, &data));
    }

    #[test]
    fn digest_is_order_independent_but_content_sensitive() {
        let spec = small_spec();
        let a = DataSpec { bytes: 64, stripe: 8, zipf: None };
        let b = DataSpec { bytes: 65, stripe: 8, zipf: None };
        assert_ne!(expected_data_digest(&spec, &a), expected_data_digest(&spec, &b));
        // Stripe size must NOT affect the digest (it's a layout knob).
        let engines: Vec<Arc<Mutex<MemEngine>>> =
            (0..2).map(|_| Arc::new(Mutex::new(MemEngine::new()))).collect();
        let mut store = StoreClient::local(&engines, 32);
        for p in 0..spec.processes {
            write_all_files(&mut store, &spec, &a, p);
        }
        assert_eq!(read_back_digest(&mut store, &spec, &a), expected_data_digest(&spec, &a));
    }

    #[test]
    fn zipf_skews_and_uniform_spreads() {
        let n = 50;
        let mut hot = Zipf::new(n, 1.2, 7);
        let mut uni = Zipf::new(n, 0.0, 7);
        let draws = 20_000;
        let mut hot_counts = vec![0usize; n];
        let mut uni_counts = vec![0usize; n];
        for _ in 0..draws {
            hot_counts[hot.sample()] += 1;
            uni_counts[uni.sample()] += 1;
        }
        // Rank 0 dominates under skew, not under uniform.
        assert!(hot_counts[0] > draws / 10, "zipf(1.2) rank0 got {} of {draws}", hot_counts[0]);
        assert!(uni_counts[0] < draws / 10, "uniform rank0 got {} of {draws}", uni_counts[0]);
        // Every rank is reachable under uniform.
        assert!(uni_counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn verify_file_catches_truncation() {
        let spec = small_spec();
        let data = DataSpec { bytes: 40, stripe: 8, zipf: None };
        let engines: Vec<Arc<Mutex<MemEngine>>> =
            (0..2).map(|_| Arc::new(Mutex::new(MemEngine::new()))).collect();
        let mut store = StoreClient::local(&engines, data.stripe);
        let path = spec.file_paths(0)[0].clone();
        let contents = contents_for(&path, data.bytes);
        // Store one byte short: the verify must panic on extent mismatch.
        store.write(fid_for_path(&path), 0, &contents[..39]).unwrap();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            verify_file(&mut store, &path, data.bytes)
        }));
        assert!(res.is_err(), "short file must fail verification");
    }
}
