//! Testbed assembly and high-level experiment entry points.
//!
//! Reconstructs the paper's §V deployment in the simulator:
//! 8 client nodes (8 cores each) running the mdtest processes, with
//! coordination servers co-located on the first `z` client nodes (the paper
//! ran "ZooKeeper server … along with the DUFS clients"), dedicated
//! back-end metadata servers, and 1 GigE in between.

use std::collections::BTreeSet;

use bytes::Bytes;
use rand::rngs::StdRng;

use dufs_backendfs::ParallelFs;
use dufs_coord::shard::{is_internal_path, parent_dir, DEFAULT_VNODES};
use dufs_coord::HashRing;
use dufs_simnet::{GigEModel, LatencyModel, NodeId, Sim, SimDuration, SimTime};
use dufs_zab::{EnsembleConfig, PeerId, ZabConfig};
use dufs_zkstore::DataTree;

pub use crate::clients::RawOp;
use crate::clients::{DufsClientProc, NativeClientProc, NodeCpu, RawZkClientProc};
use crate::controller::ControllerProc;
use crate::costs;
use crate::msg::{wire_size, ClusterMsg};
use crate::servers::{BackendProc, CoordServerProc};
use crate::workload::{Phase, WorkloadSpec};

/// The system under test for an mdtest run (the four lines of Fig 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdtestSystem {
    /// mdtest directly against one Lustre-profile filesystem.
    BasicLustre,
    /// mdtest directly against one PVFS2-profile filesystem.
    BasicPvfs2,
    /// mdtest through DUFS over `backends` Lustre-profile mounts with a
    /// `zk_servers`-member coordination ensemble.
    DufsLustre {
        /// Coordination ensemble size (paper: 1/4/8).
        zk_servers: usize,
        /// Number of merged back-end mounts (paper: 2 or 4).
        backends: usize,
    },
    /// As above with PVFS2-profile mounts.
    DufsPvfs2 {
        /// Coordination ensemble size.
        zk_servers: usize,
        /// Number of merged mounts.
        backends: usize,
    },
}

impl MdtestSystem {
    /// Label used in tables (matches the paper's legends).
    pub fn label(self) -> String {
        match self {
            MdtestSystem::BasicLustre => "Basic Lustre".into(),
            MdtestSystem::BasicPvfs2 => "Basic PVFS".into(),
            MdtestSystem::DufsLustre { zk_servers, backends } => {
                format!("DUFS {backends}xLustre ({zk_servers} ZK)")
            }
            MdtestSystem::DufsPvfs2 { zk_servers, backends } => {
                format!("DUFS {backends}xPVFS ({zk_servers} ZK)")
            }
        }
    }
}

/// Configuration for one mdtest run.
#[derive(Debug, Clone)]
pub struct MdtestConfig {
    /// The system under test.
    pub system: MdtestSystem,
    /// The workload.
    pub spec: WorkloadSpec,
    /// Simulation seed (runs are deterministic per seed).
    pub seed: u64,
    /// Fault injection: crash coordination server `index` at the given
    /// virtual time, restarting it `down_ms` later (paper §IV-I: the
    /// service rides out server failures as long as a quorum survives).
    pub crash_coord: Option<CoordCrash>,
    /// ZAB group-commit tuning for the coordination ensemble. The default
    /// (`max_batch == 1`) is the configuration the paper measured.
    pub zab: ZabConfig,
    /// Run every coordination server with a write-ahead log: group fsyncs
    /// gate ACKs (charged as `FSYNC_US` pipeline time) and crashed servers
    /// recover from their log instead of from a live peer. The default
    /// (`false`) is the in-memory configuration every figure measures.
    pub durable: bool,
    /// Fault injection beyond quorum: crash the *entire* coordination
    /// ensemble at once and restart it from disk. Requires `durable`
    /// (without logs there is nothing to come back from) and switches the
    /// DUFS clients to retry-until-applied so the post-recovery namespace
    /// is comparable against an uncrashed control run.
    pub crash_all_coord: Option<CoordOutage>,
    /// Partition the namespace across this many **independent** ZAB
    /// ensembles (consistent-hash routing by parent directory), each of
    /// `zk_servers` members. `1` (the default) is the paper's
    /// single-ensemble deployment and runs the identical simulation it
    /// always did, bit for bit.
    pub shards: usize,
}

/// A scheduled coordination-server crash/restart.
#[derive(Debug, Clone, Copy)]
pub struct CoordCrash {
    /// Which coordination server (0-based).
    pub server: usize,
    /// Virtual time of the crash, milliseconds.
    pub at_ms: u64,
    /// How long it stays down.
    pub down_ms: u64,
}

/// A scheduled whole-ensemble outage: every coordination server crashes at
/// the same instant and restarts (from its write-ahead log) together.
#[derive(Debug, Clone, Copy)]
pub struct CoordOutage {
    /// Virtual time of the simultaneous crash, milliseconds.
    pub at_ms: u64,
    /// How long the whole ensemble stays down.
    pub down_ms: u64,
}

impl MdtestConfig {
    /// A fault-free configuration with the paper's write path (no
    /// batching, no write-ahead log).
    pub fn new(system: MdtestSystem, spec: WorkloadSpec, seed: u64) -> Self {
        MdtestConfig {
            system,
            spec,
            seed,
            crash_coord: None,
            zab: ZabConfig::default(),
            durable: false,
            crash_all_coord: None,
            shards: 1,
        }
    }
}

/// Write-path tuning for a raw coordination run: server-side group commit
/// plus client-side session pipelining. [`RawTuning::default`] reproduces
/// the paper's Fig 7 configuration exactly (batch 1, depth 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawTuning {
    /// Group-commit configuration for every coordination server.
    pub zab: ZabConfig,
    /// Outstanding requests per client session (`zoo_acreate`-style);
    /// 1 is the paper's synchronous closed loop.
    pub depth: usize,
    /// Put every coordination server behind a write-ahead log (group
    /// fsync before ACK, `FSYNC_US` per flush). `false` reproduces the
    /// paper's in-memory write path bit for bit.
    pub durable: bool,
}

impl Default for RawTuning {
    fn default() -> Self {
        RawTuning { zab: ZabConfig::default(), depth: 1, durable: false }
    }
}

/// Result of one measured phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Which phase.
    pub phase: Phase,
    /// Total operations.
    pub ops: u64,
    /// Failed operations.
    pub errors: u64,
    /// Aggregate throughput (the y-axis of Figs 8–10).
    pub ops_per_sec: f64,
    /// Mean per-operation latency, microseconds.
    pub mean_latency_us: f64,
    /// Approximate 99th-percentile latency, microseconds.
    pub p99_latency_us: f64,
}

/// Latency model with a physical-node map: messages between co-located sim
/// nodes (e.g. a client process and its node-local coordination server) use
/// loopback cost instead of the network.
struct TestbedLatency {
    phys: Vec<u32>,
    net: GigEModel,
}

impl LatencyModel for TestbedLatency {
    fn sample(&self, rng: &mut StdRng, src: NodeId, dst: NodeId, size_bytes: usize) -> SimDuration {
        let ps = self.phys.get(src.index()).copied().unwrap_or(u32::MAX);
        let pd = self.phys.get(dst.index()).copied().unwrap_or(u32::MAX - 1);
        if ps == pd {
            self.net.loopback
        } else {
            self.net.sample(rng, src, dst, size_bytes)
        }
    }
}

/// Drive the sim until the controller reports completion (or `cap` virtual
/// time elapses — a failed run hits the cap instead of hanging).
fn run_to_completion(sim: &mut Sim<ClusterMsg>, ctrl: NodeId, cap: SimTime) -> bool {
    loop {
        let target = (sim.now() + SimDuration::from_millis(500)).min(cap);
        sim.run_until(target);
        if sim.node_ref::<ControllerProc>(ctrl).finished {
            return true;
        }
        if sim.now() >= cap {
            return false;
        }
    }
}

/// Run a raw coordination-throughput experiment (paper Fig 7): `processes`
/// closed-loop clients over 8 client nodes issuing `op` against a
/// `zk_servers` ensemble; every client performs `items` measured
/// operations. Returns aggregate ops/sec.
pub fn run_zk_raw(zk_servers: usize, processes: usize, op: RawOp, items: usize, seed: u64) -> f64 {
    run_zk_raw_observers(zk_servers, 0, processes, op, items, seed)
}

/// As [`run_zk_raw`] with `observers` additional non-voting servers
/// (ZooKeeper observers): they serve reads and forward writes but never
/// join quorums, so reads scale without the write-path fan-out penalty.
pub fn run_zk_raw_observers(
    voters: usize,
    observers: usize,
    processes: usize,
    op: RawOp,
    items: usize,
    seed: u64,
) -> f64 {
    run_zk_raw_capture(voters, observers, processes, op, items, seed, RawTuning::default()).0
}

/// As [`run_zk_raw_observers`] with explicit write-path tuning (group
/// commit × pipeline depth). `RawTuning::default()` runs the *identical*
/// simulation the untuned entry points do.
pub fn run_zk_raw_tuned(
    voters: usize,
    observers: usize,
    processes: usize,
    op: RawOp,
    items: usize,
    seed: u64,
    tuning: RawTuning,
) -> RawRunResult {
    let (ops_per_sec, mean, p99) =
        run_zk_raw_capture(voters, observers, processes, op, items, seed, tuning);
    RawRunResult { ops_per_sec, mean_latency_us: mean, p99_latency_us: p99 }
}

fn run_zk_raw_capture(
    voters: usize,
    observers: usize,
    processes: usize,
    op: RawOp,
    items: usize,
    seed: u64,
    tuning: RawTuning,
) -> (f64, f64, f64) {
    let zk_servers = voters + observers;
    assert!(voters >= 1 && processes >= 1);
    let n_nodes = zk_servers + 1 + processes; // servers, controller, clients
                                              // Physical placement: coordination server i on client node i (§V-A:
                                              // ZooKeeper servers run along with the clients).
    let mut phys = Vec::with_capacity(n_nodes);
    for i in 0..zk_servers {
        phys.push((i % costs::CLIENT_NODES) as u32);
    }
    phys.push(1000); // controller: off to the side
    for p in 0..processes {
        phys.push((p % costs::CLIENT_NODES) as u32);
    }

    let mut sim: Sim<ClusterMsg> = Sim::new(seed, TestbedLatency { phys, net: GigEModel::gige() });
    sim.set_message_sizer(wire_size);

    let ensemble = EnsembleConfig::with_observers(voters, observers);
    let peer_nodes: Vec<NodeId> = (0..zk_servers as u32).map(NodeId).collect();
    for i in 0..zk_servers {
        let (peer, ens, nodes) = (PeerId(i as u32), ensemble.clone(), peer_nodes.clone());
        sim.add_node(if tuning.durable {
            CoordServerProc::new_durable_with_config(peer, ens, nodes, tuning.zab)
        } else {
            CoordServerProc::new_with_config(peer, ens, nodes, tuning.zab)
        });
    }
    let ctrl = NodeId(zk_servers as u32);
    let client_ids: Vec<NodeId> =
        (0..processes).map(|p| NodeId((zk_servers + 1 + p) as u32)).collect();
    sim.add_node(ControllerProc::new(client_ids.clone(), 1));

    let cpus: Vec<NodeCpu> =
        (0..costs::CLIENT_NODES).map(|_| NodeCpu::new(costs::NODE_CORES)).collect();
    for (p, &node) in client_ids.iter().enumerate() {
        let server = NodeId((p % zk_servers) as u32);
        let added = sim.add_node(
            RawZkClientProc::new(
                node.0 as u64,
                server,
                ctrl,
                cpus[p % costs::CLIENT_NODES].clone(),
                op,
                items,
            )
            .with_depth(tuning.depth),
        );
        assert_eq!(added, node);
    }

    let ok = run_to_completion(&mut sim, ctrl, SimTime::from_secs(3_000));
    assert!(ok, "raw run did not complete (zk={zk_servers}, procs={processes}, op={op:?})");
    let c = sim.node_ref::<ControllerProc>(ctrl);
    let t = &c.results[0];
    (t.ops_per_sec(), t.latency.mean().as_micros_f64(), t.latency.quantile(0.99).as_micros_f64())
}

/// Detailed result of a raw run (throughput + latency distribution).
#[derive(Debug, Clone)]
pub struct RawRunResult {
    /// Aggregate operations per second.
    pub ops_per_sec: f64,
    /// Mean per-operation latency, microseconds.
    pub mean_latency_us: f64,
    /// Approximate 99th-percentile latency, microseconds.
    pub p99_latency_us: f64,
}

/// As [`run_zk_raw_observers`], also reporting the latency distribution.
#[allow(clippy::too_many_arguments)]
pub fn run_zk_raw_detailed(
    voters: usize,
    observers: usize,
    processes: usize,
    op: RawOp,
    items: usize,
    seed: u64,
) -> RawRunResult {
    // Re-run with result capture (runs are deterministic, so this is the
    // same run the plain variant would do; the helper exists to keep the
    // common path's signature simple).
    let (ops_per_sec, mean, p99) =
        run_zk_raw_capture(voters, observers, processes, op, items, seed, RawTuning::default());
    RawRunResult { ops_per_sec, mean_latency_us: mean, p99_latency_us: p99 }
}

/// Run an mdtest experiment and return one [`PhaseResult`] per configured
/// phase.
pub fn run_mdtest(cfg: &MdtestConfig) -> Vec<PhaseResult> {
    run_mdtest_report(cfg).phases
}

/// Full report of an mdtest run: per-phase throughput plus the final
/// coordination-service namespace (digest over all replicas — asserted
/// identical — and znode count). Lets tests compare the simulated system
/// against a live replay of the same workload.
#[derive(Debug, Clone)]
pub struct MdtestReport {
    /// Per-phase results.
    pub phases: Vec<PhaseResult>,
    /// Content digest of the final replicated namespace (0 for the native
    /// baselines, which have no coordination service). For sharded runs
    /// this is the logical-namespace digest (see [`MdtestReport::logical_digest`]).
    pub namespace_digest: u64,
    /// Number of znodes in the final namespace (logical count for sharded
    /// runs).
    pub namespace_nodes: usize,
    /// Shard-count-independent digest of the *logical* user namespace:
    /// owner-verified paths closed over ancestors, coordination internals
    /// excluded. Equal values across different `shards` settings certify
    /// the runs built the same namespace. 0 for the native baselines.
    pub logical_digest: u64,
}

/// As [`run_mdtest`], returning the post-run namespace as well.
pub fn run_mdtest_report(cfg: &MdtestConfig) -> MdtestReport {
    let spec = &cfg.spec;
    let (zk_servers, n_backends, pvfs, dufs) = match cfg.system {
        MdtestSystem::BasicLustre => (0, 1, false, false),
        MdtestSystem::BasicPvfs2 => (0, 1, true, false),
        MdtestSystem::DufsLustre { zk_servers, backends } => (zk_servers, backends, false, true),
        MdtestSystem::DufsPvfs2 { zk_servers, backends } => (zk_servers, backends, true, true),
    };
    assert!(!dufs || zk_servers >= 1, "DUFS needs a coordination ensemble");
    let shards = cfg.shards;
    assert!(shards >= 1, "at least one shard");
    assert!(shards == 1 || dufs, "sharding needs a coordination ensemble");
    // Total coordination servers: `shards` independent ensembles of
    // `zk_servers` members each, at node ids `shard * zk_servers + member`.
    let n_coord = zk_servers * shards;

    let n_nodes = n_coord + n_backends + 1 + spec.processes;
    let mut phys = Vec::with_capacity(n_nodes);
    for i in 0..n_coord {
        // Member m of every shard is co-located with client node m (the
        // paper's "ZooKeeper servers run along with the DUFS clients").
        phys.push(((i % zk_servers) % costs::CLIENT_NODES) as u32);
    }
    for j in 0..n_backends {
        phys.push(100 + j as u32); // dedicated server nodes
    }
    phys.push(1000); // controller
    for p in 0..spec.processes {
        phys.push((p % costs::CLIENT_NODES) as u32);
    }

    let mut sim: Sim<ClusterMsg> =
        Sim::new(cfg.seed, TestbedLatency { phys, net: GigEModel::gige() });
    sim.set_message_sizer(wire_size);

    // Coordination servers first: one independent ensemble per shard.
    let ensemble = EnsembleConfig::of_size(zk_servers.max(1));
    for s in 0..shards {
        let peer_nodes: Vec<NodeId> =
            (0..zk_servers).map(|i| NodeId((s * zk_servers + i) as u32)).collect();
        for i in 0..zk_servers {
            let (peer, ens, nodes) = (PeerId(i as u32), ensemble.clone(), peer_nodes.clone());
            sim.add_node(if cfg.durable {
                CoordServerProc::new_durable_with_config(peer, ens, nodes, cfg.zab)
            } else {
                CoordServerProc::new_with_config(peer, ens, nodes, cfg.zab)
            });
        }
    }
    // Back-end mounts.
    let backend_nodes: Vec<NodeId> = (0..n_backends)
        .map(|j| {
            let fs = if pvfs { ParallelFs::pvfs2() } else { ParallelFs::lustre() };
            let id = sim.add_node(BackendProc::new(fs));
            debug_assert_eq!(id, NodeId((n_coord + j) as u32));
            id
        })
        .collect();
    // Controller.
    let ctrl = NodeId((n_coord + n_backends) as u32);
    let client_ids: Vec<NodeId> =
        (0..spec.processes).map(|p| NodeId((n_coord + n_backends + 1 + p) as u32)).collect();
    sim.add_node(ControllerProc::new(client_ids.clone(), spec.phases.len()));

    // Client processes.
    let cpus: Vec<NodeCpu> =
        (0..costs::CLIENT_NODES).map(|_| NodeCpu::new(costs::NODE_CORES)).collect();
    for (p, &node) in client_ids.iter().enumerate() {
        let cpu = cpus[p % costs::CLIENT_NODES].clone();
        if dufs {
            let server = NodeId((p % zk_servers) as u32);
            let mut client = DufsClientProc::new(
                node.0 as u64,
                p,
                server,
                backend_nodes.clone(),
                ctrl,
                cpu,
                spec.clone(),
            )
            .with_retry(cfg.crash_all_coord.is_some());
            if shards > 1 {
                // One session per shard, each pinned to the same member
                // index the unsharded client would use. FIDs are minted
                // under the node id this client would have in the
                // single-shard layout, so the shard sweep builds
                // byte-identical file metadata.
                let servers: Vec<NodeId> =
                    (0..shards).map(|s| NodeId((s * zk_servers + p % zk_servers) as u32)).collect();
                client = client
                    .with_shards(HashRing::new(shards as u32, DEFAULT_VNODES), servers)
                    .with_fid_client((zk_servers + n_backends + 1 + p) as u64);
            }
            let added = sim.add_node(client);
            assert_eq!(added, node);
        } else {
            let added = sim.add_node(NativeClientProc::new(
                node.0 as u64,
                p,
                backend_nodes[0],
                ctrl,
                cpu,
                spec.clone(),
            ));
            assert_eq!(added, node);
        }
    }

    if let Some(crash) = cfg.crash_coord {
        assert!(dufs && crash.server < n_coord, "crash target must be a coord server");
        let node = NodeId(crash.server as u32);
        sim.schedule_crash(node, SimTime::from_millis(crash.at_ms));
        sim.schedule_restart(node, SimTime::from_millis(crash.at_ms + crash.down_ms));
    }
    if let Some(outage) = cfg.crash_all_coord {
        assert!(dufs, "a whole-ensemble outage needs a coordination ensemble");
        assert!(cfg.durable, "nothing survives a whole-ensemble crash without write-ahead logs");
        for i in 0..n_coord {
            let node = NodeId(i as u32);
            sim.schedule_crash(node, SimTime::from_millis(outage.at_ms));
            sim.schedule_restart(node, SimTime::from_millis(outage.at_ms + outage.down_ms));
        }
    }
    let ok = run_to_completion(&mut sim, ctrl, SimTime::from_secs(30_000));
    assert!(ok, "mdtest run did not complete ({:?})", cfg.system);

    // Replication correctness under the measured load: every replica of
    // every shard must end bit-identical to its ensemble peers.
    let (namespace_digest, namespace_nodes, logical_digest) = if dufs {
        for s in 0..shards {
            let digests: Vec<(u64, usize)> = (0..zk_servers)
                .map(|i| {
                    let srv = sim
                        .node_ref::<CoordServerProc>(NodeId((s * zk_servers + i) as u32))
                        .server();
                    (srv.tree().digest(), srv.tree().node_count())
                })
                .collect();
            assert!(
                digests.windows(2).all(|w| w[0].0 == w[1].0),
                "shard {s} replicas diverged after the run: {digests:?}"
            );
        }
        let trees: Vec<&DataTree> = (0..shards)
            .map(|s| {
                sim.node_ref::<CoordServerProc>(NodeId((s * zk_servers) as u32)).server().tree()
            })
            .collect();
        let ring = HashRing::new(shards as u32, DEFAULT_VNODES);
        let (logical, logical_nodes) = logical_namespace_digest(&trees, &ring);
        if shards == 1 {
            // Single ensemble: keep the historical raw-tree figures.
            (trees[0].digest(), trees[0].node_count(), logical)
        } else {
            (logical, logical_nodes, logical)
        }
    } else {
        (0, 0, 0)
    };

    let tallies = sim.node_ref::<ControllerProc>(ctrl).results.clone();
    let phases = spec
        .phases
        .iter()
        .zip(tallies)
        .map(|(&phase, t)| PhaseResult {
            phase,
            ops: t.ops,
            errors: t.errors,
            ops_per_sec: t.ops_per_sec(),
            mean_latency_us: t.latency.mean().as_micros_f64(),
            p99_latency_us: t.latency.quantile(0.99).as_micros_f64(),
        })
        .collect();
    MdtestReport { phases, namespace_digest, namespace_nodes, logical_digest }
}

/// Shard-count-independent digest of the logical user namespace held by
/// `trees` (one fully-converged replica per shard), mirroring
/// `ShardedClient::user_digest`: a path logically exists if it is present
/// on its owner shard or is an ancestor of one that is (ancestors may
/// exist only as lazily-materialized copies on other shards); each logical
/// node contributes `fnv(path ++ 0x00 ++ owner-data)`; coordination
/// internals are excluded. Returns `(digest, logical node count)`.
fn logical_namespace_digest(trees: &[&DataTree], ring: &HashRing) -> (u64, usize) {
    let mut candidates: BTreeSet<String> = BTreeSet::new();
    for t in trees {
        for p in t.subtree_paths("/").expect("root always exists") {
            if p != "/" && !is_internal_path(&p) {
                candidates.insert(p);
            }
        }
    }
    let mut live: BTreeSet<String> = BTreeSet::new();
    for p in &candidates {
        let owner = ring.route_path(p) as usize;
        if trees[owner].get_data(p).is_ok() {
            live.insert(p.clone());
        }
    }
    let mut logical: BTreeSet<String> = BTreeSet::new();
    for p in &live {
        let mut cur = p.as_str();
        while cur != "/" {
            if !logical.insert(cur.to_string()) {
                break;
            }
            cur = parent_dir(cur);
        }
    }
    let mut digest = 0u64;
    for p in &logical {
        let owner = ring.route_path(p) as usize;
        let data = match trees[owner].get_data(p) {
            Ok((d, _)) => d,
            Err(_) => Bytes::new(),
        };
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in p.as_bytes().iter().chain([0u8].iter()).chain(data.iter()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        digest = digest.wrapping_add(h);
    }
    (digest, logical.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(processes: usize) -> WorkloadSpec {
        WorkloadSpec {
            processes,
            fanout: 10,
            dirs_per_proc: 12,
            files_per_proc: 12,
            phases: Phase::ALL.to_vec(),
            shared_dir: false,
        }
    }

    #[test]
    fn tuned_defaults_reproduce_the_untuned_run_exactly() {
        // The tuned entry point with batch 1 / depth 1 must be the *same*
        // simulation as the paper-parity path — bit-identical throughput,
        // not merely close (runs are deterministic per seed).
        let base = run_zk_raw(3, 24, RawOp::Create, 30, 17);
        let tuned = run_zk_raw_tuned(3, 0, 24, RawOp::Create, 30, 17, RawTuning::default());
        assert_eq!(base, tuned.ops_per_sec, "batch 1 / depth 1 must be the paper's write path");
    }

    #[test]
    fn group_commit_and_pipelining_raise_write_throughput() {
        // The gain grows with ensemble size (group commit amortizes the
        // per-transaction follower fan-out), so measure where the paper's
        // write path is at its worst: 8 voters.
        let base = run_zk_raw(8, 24, RawOp::Create, 30, 17);
        let tuned = run_zk_raw_tuned(
            8,
            0,
            24,
            RawOp::Create,
            30,
            17,
            RawTuning { zab: ZabConfig::batched(32, 1), depth: 8, ..RawTuning::default() },
        );
        assert!(
            tuned.ops_per_sec > base * 1.5,
            "batched+pipelined writes must beat the synchronous loop: {} vs {}",
            tuned.ops_per_sec,
            base
        );
    }

    #[test]
    fn raw_get_scales_with_servers_and_create_does_not() {
        let get1 = run_zk_raw(1, 32, RawOp::Get, 40, 1);
        let get4 = run_zk_raw(4, 32, RawOp::Get, 40, 1);
        assert!(get4 > get1 * 1.8, "reads must scale out: 1={get1:.0} 4={get4:.0}");

        let cr1 = run_zk_raw(1, 32, RawOp::Create, 40, 1);
        let cr4 = run_zk_raw(4, 32, RawOp::Create, 40, 1);
        assert!(cr1 > cr4, "writes must slow with ensemble size: 1={cr1:.0} 4={cr4:.0}");
    }

    #[test]
    fn basic_lustre_mdtest_runs_clean() {
        let cfg = MdtestConfig::new(MdtestSystem::BasicLustre, small_spec(16), 3);
        let res = run_mdtest(&cfg);
        assert_eq!(res.len(), 6);
        for r in &res {
            assert_eq!(r.errors, 0, "{:?}: {} errors", r.phase, r.errors);
            assert_eq!(r.ops, 16 * 12, "{:?}", r.phase);
            assert!(r.ops_per_sec > 0.0);
        }
        // Stat phases are faster than their mutation counterparts.
        let by = |p: Phase| res.iter().find(|r| r.phase == p).unwrap().ops_per_sec;
        assert!(by(Phase::DirStat) > by(Phase::DirCreate));
        assert!(by(Phase::FileStat) > by(Phase::FileCreate));
    }

    #[test]
    fn dufs_mdtest_survives_coord_follower_crash_mid_run() {
        // Crash one of 3 coordination servers two virtual seconds in and
        // bring it back 5 s later: the run completes, losses are bounded to
        // requests in flight during failover, and the restarted replica
        // converges (asserted inside run_mdtest_report).
        let cfg = MdtestConfig {
            crash_coord: Some(CoordCrash { server: 2, at_ms: 2_000, down_ms: 5_000 }),
            ..MdtestConfig::new(
                MdtestSystem::DufsLustre { zk_servers: 3, backends: 2 },
                small_spec(12),
                9,
            )
        };
        let report = run_mdtest_report(&cfg);
        assert_eq!(report.phases.len(), 6);
        let total_ops: u64 = report.phases.iter().map(|p| p.ops).sum();
        let total_errors: u64 = report.phases.iter().map(|p| p.errors).sum();
        assert_eq!(total_ops, 6 * 12 * 12);
        // Clients whose server died time out and count an error; the
        // overwhelming majority of the workload must still succeed.
        assert!(
            (total_errors as f64) < (total_ops as f64) * 0.2,
            "errors bounded: {total_errors}/{total_ops}"
        );
    }

    #[test]
    fn durable_servers_change_cost_but_not_namespace_content() {
        // The WAL is a durability layer, not a semantics layer: the same
        // workload through fsyncing servers must build the identical
        // namespace, only slower. (MemStorage never fails, so the runs
        // differ purely in service times.)
        let system = MdtestSystem::DufsLustre { zk_servers: 3, backends: 2 };
        let base = run_mdtest_report(&MdtestConfig::new(system, small_spec(8), 21));
        let durable = run_mdtest_report(&MdtestConfig {
            durable: true,
            ..MdtestConfig::new(system, small_spec(8), 21)
        });
        assert_eq!(durable.namespace_digest, base.namespace_digest);
        assert_eq!(durable.namespace_nodes, base.namespace_nodes);
        let ops = |r: &MdtestReport| -> u64 { r.phases.iter().map(|p| p.ops).sum() };
        assert_eq!(ops(&durable), ops(&base));
        // fsync-per-write (batch 1) must actually cost something on the
        // write phases — otherwise the charge is not wired through.
        let create = |r: &MdtestReport| {
            r.phases.iter().find(|p| p.phase == Phase::DirCreate).unwrap().ops_per_sec
        };
        assert!(
            create(&durable) < create(&base) * 0.9,
            "fsync-per-write must slow creates: durable {} vs in-memory {}",
            create(&durable),
            create(&base)
        );
    }

    #[test]
    fn dufs_mdtest_survives_whole_ensemble_crash_and_matches_uncrashed_control() {
        // Kill ALL coordination servers 60 virtual ms into the run (mid
        // file-creation for this workload size) and restart them from
        // their write-ahead logs 2 s later. The run must complete, and
        // the recovered namespace must be *identical* (content digest) to
        // a control run that never crashed: nothing acknowledged is lost,
        // nothing is applied twice, every workload op eventually lands.
        let system = MdtestSystem::DufsLustre { zk_servers: 3, backends: 2 };
        let control =
            MdtestConfig { durable: true, ..MdtestConfig::new(system, small_spec(8), 33) };
        let crashed = MdtestConfig {
            crash_all_coord: Some(CoordOutage { at_ms: 60, down_ms: 2_000 }),
            ..control.clone()
        };
        let want = run_mdtest_report(&control);
        let got = run_mdtest_report(&crashed);
        assert_eq!(got.phases.len(), 6);
        // Guard against the outage landing after the workload already
        // finished (which would make this test vacuous): the stall and
        // retries must be visible in at least one phase's timing.
        let disrupted = got
            .phases
            .iter()
            .zip(&want.phases)
            .any(|(g, w)| g.ops_per_sec.to_bits() != w.ops_per_sec.to_bits());
        assert!(disrupted, "the outage must land mid-run and perturb phase timing");
        assert_eq!(
            got.namespace_digest, want.namespace_digest,
            "recovered namespace must match the uncrashed control bit for bit"
        );
        assert_eq!(got.namespace_nodes, want.namespace_nodes);
        let ops = |r: &MdtestReport| -> u64 { r.phases.iter().map(|p| p.ops).sum() };
        assert_eq!(ops(&got), ops(&want), "every workload op completes despite the outage");
    }

    #[test]
    fn sharded_sim_builds_the_same_logical_namespace() {
        // The full 6-phase workload over 2 shards must complete with zero
        // errors and tear the namespace back down to the same logical
        // content a single-ensemble run ends with (routing, mkdir -p ghost
        // materialization, and the two-leg sharded delete all cancel out).
        let system = MdtestSystem::DufsLustre { zk_servers: 1, backends: 2 };
        let base = run_mdtest_report(&MdtestConfig::new(system, small_spec(8), 11));
        let sharded = run_mdtest_report(&MdtestConfig {
            shards: 2,
            ..MdtestConfig::new(system, small_spec(8), 11)
        });
        for r in base.phases.iter().chain(sharded.phases.iter()) {
            assert_eq!(r.errors, 0, "{:?}: {} errors", r.phase, r.errors);
        }
        let ops = |r: &MdtestReport| -> u64 { r.phases.iter().map(|p| p.ops).sum() };
        assert_eq!(ops(&sharded), ops(&base));
        assert_eq!(
            sharded.logical_digest, base.logical_digest,
            "2-shard run diverged from the single-ensemble namespace"
        );
    }

    #[test]
    fn sharded_sim_logical_digest_is_shard_count_independent_with_live_tree() {
        // Create/stat phases only, so the run *ends* with the namespace
        // fully populated: the digest certifies every dir and file landed
        // on its owner shard with the right data, across 1/2/4 shards.
        let spec = WorkloadSpec {
            phases: vec![Phase::DirCreate, Phase::DirStat, Phase::FileCreate, Phase::FileStat],
            ..small_spec(8)
        };
        let system = MdtestSystem::DufsLustre { zk_servers: 1, backends: 2 };
        let reports: Vec<MdtestReport> = [1usize, 2, 4]
            .iter()
            .map(|&shards| {
                let cfg = MdtestConfig { shards, ..MdtestConfig::new(system, spec.clone(), 13) };
                let r = run_mdtest_report(&cfg);
                for p in &r.phases {
                    assert_eq!(p.errors, 0, "shards={shards} {:?}: {} errors", p.phase, p.errors);
                }
                r
            })
            .collect();
        assert_eq!(reports[0].logical_digest, reports[1].logical_digest);
        assert_eq!(reports[0].logical_digest, reports[2].logical_digest);
        // A populated tree: /mdtest + 8 proc roots + 8×12 dirs + 8×12 files.
        assert_eq!(reports[1].namespace_nodes, 1 + 8 + 8 * 12 + 8 * 12);
    }

    #[test]
    fn dufs_mdtest_runs_clean() {
        let cfg = MdtestConfig::new(
            MdtestSystem::DufsLustre { zk_servers: 3, backends: 2 },
            small_spec(16),
            5,
        );
        let res = run_mdtest(&cfg);
        assert_eq!(res.len(), 6);
        for r in &res {
            assert_eq!(r.errors, 0, "{:?}: {} errors", r.phase, r.errors);
            assert_eq!(r.ops, 16 * 12, "{:?}", r.phase);
            assert!(r.mean_latency_us > 0.0, "{:?} latency populated", r.phase);
            assert!(r.p99_latency_us >= r.mean_latency_us * 0.5, "{:?}", r.phase);
        }
    }
}
