//! `mdtest-sim` — command-line front end for the simulated testbed, with
//! mdtest-flavoured output.
//!
//! ```text
//! Usage: mdtest_sim [OPTIONS]
//!   --system <lustre|pvfs2|dufs-lustre|dufs-pvfs2>   (default dufs-lustre)
//!   --procs <N>        client processes               (default 64)
//!   --items <N>        dirs/files per process         (default 40)
//!   --zk <N>           coordination servers (DUFS)    (default 8)
//!   --shards <N>       independent coordination ensembles of --zk members
//!                      each, namespace consistent-hashed across them
//!   --backends <N>     merged back-end mounts (DUFS)  (default 2)
//!   --shared-dir       all file creates into one directory
//!   --seed <N>         simulation seed                (default 1)
//!   --crash <srv:ms:down_ms>  crash a coord server mid-run
//!   --durable          write-ahead log on every coord server
//!   --crash-all <ms:down_ms>  crash the WHOLE ensemble (needs --durable)
//!   --live <thread|tcp>  drive a REAL cluster (wall-clock) instead of simnet
//!   --net-stats        print per-endpoint transport counters (live tcp only)
//!   --read-from <leader|spread>  live sessions: all at the leader, or spread
//!                      round-robin across every member (default leader)
//!   --consistency <local|sync|linear>  live read recency (default sync:
//!                      read-your-writes via a ZAB no-op barrier)
//!   --cache            wrap every live session in the dufs-cache client
//!                      cache (leases on); prints a CACHE STATS line
//!   --cache-shared     like --cache, but all sessions attach to ONE
//!                      process-wide shared cache (implies --cache)
//!   --no-lease         with --cache: disable staleness leases (strict
//!                      PR 5 barrier semantics around the cache)
//!   --data <bytes>     mixed metadata+data run: every file create also
//!                      stripes <bytes> of contents across the data
//!                      targets, every file stat read-back-verifies the
//!                      per-FID CRC; prints a `data digest` line that is
//!                      identical across sim / --live thread / --live tcp
//!   --stripe <bytes>   data stripe size                (default 65536)
//!   --zipf <theta>     with --data: skew stat-phase re-reads by a
//!                      Zipf(theta) file-popularity distribution
//!                      (0 = uniform; 0.8-1.2 = realistic hot files)
//! ```
//!
//! Live mode runs the same deterministic op streams against an actual
//! in-process (`thread`) or loopback-socket (`tcp`) ensemble and reports
//! wall-clock rates plus the converged namespace digest — `scripts/ci.sh`
//! compares the digest across the two runtimes. Only the create/stat phases
//! run live, so the digest covers a populated tree.
//!
//! Example:
//! ```text
//! cargo run --release -p dufs-mdtest --bin mdtest_sim -- \
//!     --system dufs-lustre --procs 128 --items 60 --zk 8 --backends 4
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use dufs_backendfs::MemEngine;
use dufs_cache::{CacheBuilder, CacheStats};
use dufs_coord::runtime::ServerStatus;
use dufs_coord::{ClientOptions, ClusterBuilder, ReadConsistency};
use dufs_mdtest::data::{
    expected_data_digest, read_back_digest, run_live_data, verify_file, write_all_files, DataSpec,
    Zipf,
};
use dufs_mdtest::live::{aggregate_cache_stats, run_live, LivePhase};
use dufs_mdtest::scenario::{
    run_mdtest_report, CoordCrash, CoordOutage, MdtestConfig, MdtestSystem,
};
use dufs_mdtest::workload::{Phase, WorkloadSpec};
use dufs_store::{FileEngine, FsyncPolicy, StoreClient, StoreServer};
use parking_lot::Mutex;

fn usage() -> ! {
    eprintln!(
        "usage: mdtest_sim [--system lustre|pvfs2|dufs-lustre|dufs-pvfs2] \
         [--procs N] [--items N] [--zk N] [--shards N] [--backends N] \
         [--shared-dir] [--seed N] [--crash srv:at_ms:down_ms] [--durable] \
         [--crash-all at_ms:down_ms] [--live thread|tcp] [--net-stats] \
         [--read-from leader|spread] [--consistency local|sync|linear] \
         [--cache] [--cache-shared] [--no-lease] [--data BYTES] [--stripe BYTES] \
         [--zipf THETA]"
    );
    std::process::exit(2);
}

/// Poll until every member reports one digest at one applied index.
fn converged_digest(status: impl Fn(usize) -> ServerStatus, n: usize) -> ServerStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut s: Vec<ServerStatus> = (0..n).map(&status).collect();
        if s.iter().all(|x| x.digest == s[0].digest && x.last_applied == s[0].last_applied) {
            return s.swap_remove(0);
        }
        if Instant::now() > deadline {
            eprintln!("replicas never converged: {s:?}");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn print_live(phases: &[LivePhase]) {
    println!("SUMMARY rate (wall clock): (ops/sec)");
    println!("   {:<22} {:>12} {:>12}", "Operation", "ops/sec", "total ops");
    for p in phases {
        println!("   {:<22} {:>12.1} {:>12}", p.phase.label(), p.ops_per_sec, p.ops);
    }
}

/// One-line cache/lease counter summary over all sessions (the cache
/// analogue of the NET STATS block). The counters themselves are printed
/// through [`CacheStats`]'s `Display`, the one formatter shared with
/// `bench_reads` — one shape everywhere.
fn print_cache_stats(sessions: usize, shared: bool, s: &CacheStats) {
    let kind = if shared { "sessions, shared cache" } else { "sessions" };
    println!("\nCACHE STATS ({sessions} {kind}): {s}");
}

/// How live sessions attach to the ensemble: placement, read recency,
/// and the optional client-cache wrap (private per session, or all
/// sessions attached to one process-wide shared cache).
#[derive(Clone, Copy)]
struct Sessions {
    spread: bool,
    consistency: ReadConsistency,
    cache: Option<CacheBuilder>,
    cache_shared: bool,
}

/// Live mode: the same WorkloadSpec op streams against a real ensemble.
/// Create/stat phases only, so the final digest covers a populated tree.
/// With `data`, every process also drives the striped data path — shared
/// in-memory targets on the `thread` runtime, real `StoreServer`s over
/// durable `FileEngine` targets on `tcp` — and the read-back contents
/// digest is printed and asserted against the spec-derived expectation.
#[allow(clippy::too_many_arguments)]
fn run_live_mode(
    mode: &str,
    spec: WorkloadSpec,
    zk: usize,
    backends: usize,
    durable: bool,
    net_stats: bool,
    sess: Sessions,
    data: Option<DataSpec>,
) {
    let Sessions { spread, consistency, cache, cache_shared } = sess;
    let spec = WorkloadSpec {
        phases: vec![Phase::DirCreate, Phase::DirStat, Phase::FileCreate, Phase::FileStat],
        ..spec
    };
    let wal_dir = std::env::temp_dir().join(format!("dufs-mdtest-live-{}", std::process::id()));
    // Each process stats only paths it created itself in an earlier, synced
    // phase, so any read-your-writes level lets us insist the stats hit.
    let strict_stats = consistency != ReadConsistency::Local;
    match mode {
        "thread" => {
            let mut b = ClusterBuilder::new().voters(zk);
            if durable {
                b = b.durable(&wal_dir);
            }
            let tc = b.threads();
            let leader = tc.await_leader(Duration::from_secs(30)).expect("no leader");
            let opts_for = |p: usize| {
                ClientOptions::at(if spread { p % zk } else { leader })
                    .with_consistency(consistency)
            };
            if let Some(d) = data {
                // Shared in-memory data targets: every process routes
                // MD5(fid) mod N to the same engines, like live threads
                // sharing one data-server fleet.
                let engines: Vec<Arc<Mutex<MemEngine>>> =
                    (0..backends).map(|_| Arc::new(Mutex::new(MemEngine::new()))).collect();
                let (phases, digest) = run_live_data(
                    &spec,
                    &d,
                    |p| tc.client(opts_for(p)).expect("session"),
                    |_| StoreClient::local(&engines, d.stripe),
                    |_| {},
                    strict_stats,
                );
                print_live(&phases);
                assert_eq!(
                    digest,
                    expected_data_digest(&spec, &d),
                    "read-back contents digest drifted from the spec-derived value"
                );
                println!("\ndata digest {digest:#018x} ({backends} in-memory data targets)");
            } else if let Some(builder) = cache {
                // `--cache-shared`: every session attaches to ONE
                // process-wide store; otherwise each gets a private cache.
                let shared = cache_shared.then(|| builder.shared());
                let (phases, clients) = run_live(
                    &spec,
                    |p| {
                        let inner = tc.client(opts_for(p)).expect("session");
                        match &shared {
                            Some(sc) => sc.session(inner),
                            None => builder.session(inner),
                        }
                    },
                    |_| {},
                    strict_stats,
                );
                let stats: Vec<CacheStats> = clients.iter().map(|c| c.stats()).collect();
                print_live(&phases);
                print_cache_stats(clients.len(), cache_shared, &aggregate_cache_stats(&stats));
            } else {
                let (phases, _) = run_live(
                    &spec,
                    |p| tc.client(opts_for(p)).expect("session"),
                    |_| {},
                    strict_stats,
                );
                print_live(&phases);
            }
            let s = converged_digest(|i| tc.status(i), zk);
            println!(
                "\nfinal namespace: {} znodes, replicated digest {:#018x}",
                s.node_count, s.digest
            );
            tc.shutdown();
        }
        "tcp" => {
            let mut b = ClusterBuilder::new().voters(zk);
            if durable {
                b = b.durable(&wal_dir);
            }
            let cluster = b.tcp();
            let leader = cluster.await_leader(Duration::from_secs(30)).expect("no leader");
            let opts_for = |p: usize| {
                ClientOptions::at(if spread { p % zk } else { leader })
                    .with_failover()
                    .with_consistency(consistency)
            };
            // Per-session transport snapshots for the NET STATS block,
            // whichever wrapper served the run.
            let client_net: Vec<_>;
            if let Some(d) = data {
                // Real data servers: one StoreServer per target over a
                // durable FileEngine directory, group fsync — the full
                // frame/demux/group-commit path under mixed load.
                let data_dirs: Vec<std::path::PathBuf> = (0..backends)
                    .map(|t| {
                        let dir = std::env::temp_dir()
                            .join(format!("dufs-store-live-{}-{t}", std::process::id()));
                        let _ = std::fs::remove_dir_all(&dir);
                        dir
                    })
                    .collect();
                let servers: Vec<StoreServer> = data_dirs
                    .iter()
                    .enumerate()
                    .map(|(t, dir)| {
                        let engine =
                            FileEngine::open(dir, FsyncPolicy::Group).expect("open target dir");
                        StoreServer::spawn(
                            "127.0.0.1:0".parse().unwrap(),
                            engine,
                            FsyncPolicy::Group,
                            t as u64 + 1,
                        )
                        .expect("spawn store server")
                    })
                    .collect();
                let addrs: Vec<std::net::SocketAddr> = servers.iter().map(|s| s.addr()).collect();
                let (phases, digest) = run_live_data(
                    &spec,
                    &d,
                    |p| cluster.client(opts_for(p)).expect("session"),
                    |p| StoreClient::tcp(&addrs, d.stripe, 1000 + p as u64).expect("store session"),
                    |_| {},
                    strict_stats,
                );
                print_live(&phases);
                assert_eq!(
                    digest,
                    expected_data_digest(&spec, &d),
                    "read-back contents digest drifted from the spec-derived value"
                );
                println!("\ndata digest {digest:#018x} ({backends} store servers, group fsync)");
                for s in servers {
                    s.stop();
                }
                for dir in &data_dirs {
                    let _ = std::fs::remove_dir_all(dir);
                }
                client_net = Vec::new();
            } else if let Some(builder) = cache {
                let shared = cache_shared.then(|| builder.shared());
                let (phases, clients) = run_live(
                    &spec,
                    |p| {
                        let inner = cluster.client(opts_for(p)).expect("session");
                        match &shared {
                            Some(sc) => sc.session(inner),
                            None => builder.session(inner),
                        }
                    },
                    |_| {},
                    strict_stats,
                );
                let stats: Vec<CacheStats> = clients.iter().map(|c| c.stats()).collect();
                print_live(&phases);
                print_cache_stats(clients.len(), cache_shared, &aggregate_cache_stats(&stats));
                client_net = clients.iter().map(|c| c.inner().transport().stats()).collect();
            } else {
                let (phases, clients) = run_live(
                    &spec,
                    |p| cluster.client(opts_for(p)).expect("session"),
                    |_| {},
                    strict_stats,
                );
                print_live(&phases);
                client_net = clients.iter().map(|c| c.transport().stats()).collect();
            }
            let s = converged_digest(|i| cluster.status(i), zk);
            println!(
                "\nfinal namespace: {} znodes, replicated digest {:#018x}",
                s.node_count, s.digest
            );
            if net_stats {
                println!("\nNET STATS (per endpoint):");
                let mut total = cluster.net_stats(0);
                println!("   server 0: {total}");
                for i in 1..zk {
                    let s = cluster.net_stats(i);
                    println!("   server {i}: {s}");
                    total.absorb(&s);
                }
                let mut client_total = client_net[0];
                for s in &client_net[1..] {
                    client_total.absorb(s);
                }
                println!("   clients ({}): {client_total}", client_net.len());
                total.absorb(&client_total);
                println!("   TOTAL: {total}");
            }
            cluster.shutdown();
        }
        other => {
            eprintln!("--live must be 'thread' or 'tcp', got {other:?}");
            usage();
        }
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Live mode over a *sharded* namespace: one `ShardedClient` (a session
/// per shard) per process. Prints the shard-count-independent logical
/// content digest, which `scripts/ci.sh` compares across `--shards` values.
fn run_live_sharded_mode(
    mode: &str,
    spec: WorkloadSpec,
    zk: usize,
    shards: usize,
    durable: bool,
    sess: Sessions,
) {
    let Sessions { spread, consistency, cache, cache_shared } = sess;
    let spec = WorkloadSpec {
        phases: vec![Phase::DirCreate, Phase::DirStat, Phase::FileCreate, Phase::FileStat],
        ..spec
    };
    let wal_dir = std::env::temp_dir().join(format!("dufs-mdtest-live-{}", std::process::id()));
    let strict_stats = consistency != ReadConsistency::Local;
    let opts_for = |p: usize| {
        ClientOptions::at(if spread { p % zk } else { 0 })
            .with_failover()
            .with_consistency(consistency)
    };
    // One shard-cluster run, cached or not, returning the logical digest
    // (macro: the thread/tcp cluster types differ).
    macro_rules! sharded_run {
        ($cluster:expr) => {{
            let cluster = $cluster;
            let digest = if let Some(builder) = cache {
                let shared = cache_shared.then(|| builder.shared());
                let (phases, mut clients) = run_live(
                    &spec,
                    |p| {
                        let inner = cluster.client(opts_for(p)).expect("session");
                        match &shared {
                            Some(sc) => sc.session_sharded(inner),
                            None => builder.session_sharded(inner),
                        }
                    },
                    |_| {},
                    strict_stats,
                );
                let stats: Vec<CacheStats> = clients.iter().map(|c| c.stats()).collect();
                print_live(&phases);
                print_cache_stats(clients.len(), cache_shared, &aggregate_cache_stats(&stats));
                clients[0].user_digest().expect("digest")
            } else {
                let (phases, mut clients) = run_live(
                    &spec,
                    |p| cluster.client(opts_for(p)).expect("session"),
                    |_| {},
                    strict_stats,
                );
                print_live(&phases);
                clients[0].user_digest().expect("digest")
            };
            cluster.shutdown();
            digest
        }};
    }
    let digest = match mode {
        "thread" => {
            let mut b = ClusterBuilder::new().voters(zk).shards(shards);
            if durable {
                b = b.durable(&wal_dir);
            }
            sharded_run!(b.sharded_threads())
        }
        "tcp" => {
            let mut b = ClusterBuilder::new().voters(zk).shards(shards);
            if durable {
                b = b.durable(&wal_dir);
            }
            sharded_run!(b.sharded_tcp())
        }
        other => {
            eprintln!("--live must be 'thread' or 'tcp', got {other:?}");
            usage();
        }
    };
    println!("\nfinal namespace ({shards} shards): content digest {digest:#018x}");
    let _ = std::fs::remove_dir_all(&wal_dir);
}

fn main() {
    let mut system = "dufs-lustre".to_string();
    let mut procs = 64usize;
    let mut items = 40usize;
    let mut zk = 8usize;
    let mut shards: Option<usize> = None;
    let mut backends = 2usize;
    let mut shared = false;
    let mut seed = 1u64;
    let mut crash: Option<CoordCrash> = None;
    let mut durable = false;
    let mut crash_all: Option<CoordOutage> = None;
    let mut live: Option<String> = None;
    let mut net_stats = false;
    let mut read_from = "leader".to_string();
    let mut consistency = ReadConsistency::SyncThenLocal;
    let mut cache = false;
    let mut cache_shared = false;
    let mut no_lease = false;
    let mut data_bytes: Option<usize> = None;
    let mut stripe = 65536usize;
    let mut zipf_theta: Option<f64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--system" => system = next(&mut i),
            "--procs" => procs = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--items" => items = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--zk" => zk = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = Some(next(&mut i).parse().unwrap_or_else(|_| usage())),
            "--backends" => backends = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--shared-dir" => shared = true,
            "--seed" => seed = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--crash" => {
                let spec = next(&mut i);
                let parts: Vec<u64> = spec.split(':').filter_map(|s| s.parse().ok()).collect();
                if parts.len() != 3 {
                    usage();
                }
                crash = Some(CoordCrash {
                    server: parts[0] as usize,
                    at_ms: parts[1],
                    down_ms: parts[2],
                });
            }
            "--durable" => durable = true,
            "--crash-all" => {
                let spec = next(&mut i);
                let parts: Vec<u64> = spec.split(':').filter_map(|s| s.parse().ok()).collect();
                if parts.len() != 2 {
                    usage();
                }
                crash_all = Some(CoordOutage { at_ms: parts[0], down_ms: parts[1] });
            }
            "--live" => live = Some(next(&mut i)),
            "--net-stats" => net_stats = true,
            "--cache" => cache = true,
            "--cache-shared" => {
                cache = true;
                cache_shared = true;
            }
            "--no-lease" => no_lease = true,
            "--data" => data_bytes = Some(next(&mut i).parse().unwrap_or_else(|_| usage())),
            "--stripe" => stripe = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--zipf" => zipf_theta = Some(next(&mut i).parse().unwrap_or_else(|_| usage())),
            "--read-from" => {
                read_from = next(&mut i);
                if read_from != "leader" && read_from != "spread" {
                    eprintln!("--read-from must be 'leader' or 'spread', got {read_from:?}");
                    usage();
                }
            }
            "--consistency" => {
                consistency = match next(&mut i).as_str() {
                    "local" => ReadConsistency::Local,
                    "sync" => ReadConsistency::SyncThenLocal,
                    "linear" => ReadConsistency::Linearizable,
                    other => {
                        eprintln!("--consistency must be local|sync|linear, got {other:?}");
                        usage();
                    }
                };
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    if procs == 0 || items == 0 || zk == 0 || backends == 0 || shards == Some(0) {
        eprintln!("--procs/--items/--zk/--shards/--backends must be >= 1");
        usage();
    }
    if shards.is_some_and(|n| n > 1) && !system.starts_with("dufs") {
        eprintln!("--shards needs a DUFS system (the basic baselines have no namespace)");
        usage();
    }
    if crash_all.is_some() && !durable {
        eprintln!("--crash-all kills every coordination server; recovery needs --durable");
        usage();
    }
    if net_stats && live.as_deref() != Some("tcp") {
        eprintln!("--net-stats needs --live tcp (only sockets have transport counters)");
        usage();
    }
    if net_stats && shards.is_some() {
        eprintln!("--net-stats is not wired through sharded live runs yet");
        usage();
    }
    if cache && live.is_none() {
        eprintln!("--cache wraps live sessions; it needs --live thread|tcp");
        usage();
    }
    if no_lease && !cache {
        eprintln!("--no-lease only modifies --cache");
        usage();
    }
    if stripe == 0 {
        eprintln!("--stripe must be >= 1");
        usage();
    }
    if zipf_theta.is_some() && data_bytes.is_none() {
        eprintln!("--zipf skews data re-reads; it needs --data");
        usage();
    }
    if zipf_theta.is_some_and(|t| t.is_nan() || t < 0.0) {
        eprintln!("--zipf theta must be a non-negative number");
        usage();
    }
    if data_bytes.is_some() && shards.is_some() {
        eprintln!("--data is not wired through sharded runs yet");
        usage();
    }
    if data_bytes.is_some() && cache {
        eprintln!("--cache caches metadata sessions; it is not wired through --data runs");
        usage();
    }
    if data_bytes.is_some() && net_stats {
        eprintln!("--net-stats is not wired through --data runs");
        usage();
    }
    if data_bytes.is_some() && live.is_none() && !system.starts_with("dufs") {
        eprintln!("--data drives the DUFS data path; use a dufs-* system (or --live)");
        usage();
    }
    let data_spec = data_bytes.map(|bytes| DataSpec { bytes, stripe, zipf: zipf_theta });
    let cache_builder = cache.then(|| CacheBuilder::new().lease(!no_lease));

    if let Some(mode) = live {
        if crash.is_some() || crash_all.is_some() {
            eprintln!(
                "--crash/--crash-all are simulation-only; the live kill-9 harness is \
                       crates/coord/tests/kill9_recovery.rs"
            );
            usage();
        }
        let spec = WorkloadSpec {
            processes: procs,
            fanout: 10,
            dirs_per_proc: items,
            files_per_proc: items,
            phases: Phase::ALL.to_vec(),
            shared_dir: shared,
        };
        if let Some(n) = shards {
            println!(
                "-- mdtest-live: {mode} runtime, {n} shards x {zk} coordination servers{} --",
                if durable { " (durable)" } else { "" }
            );
            println!(
                "   {procs} routed client sessions ({consistency:?} reads{}), \
                 {items} items/proc, create/stat phases\n",
                match (cache_builder, cache_shared) {
                    (Some(_), true) => ", shared cache",
                    (Some(b), false) if b.options().lease => ", cached+leased",
                    (Some(_), false) => ", cached",
                    (None, _) => "",
                }
            );
            run_live_sharded_mode(
                &mode,
                spec,
                zk,
                n,
                durable,
                Sessions {
                    spread: read_from == "spread",
                    consistency,
                    cache: cache_builder,
                    cache_shared,
                },
            );
            return;
        }
        println!(
            "-- mdtest-live: {mode} runtime, {zk} coordination servers{} --",
            if durable { " (durable)" } else { "" }
        );
        println!(
            "   {procs} client sessions at the {read_from} ({consistency:?} reads{}), \
             {items} items/proc, create/stat phases",
            match (cache_builder, cache_shared) {
                (Some(_), true) => ", shared cache",
                (Some(b), false) if b.options().lease => ", cached+leased",
                (Some(_), false) => ", cached",
                (None, _) => "",
            }
        );
        if let Some(d) = data_spec {
            println!(
                "   mixed data path: {} bytes/file, {} byte stripes over {backends} targets{}",
                d.bytes,
                d.stripe,
                d.zipf.map(|t| format!(", zipf({t}) re-reads")).unwrap_or_default()
            );
        }
        println!();
        run_live_mode(
            &mode,
            spec,
            zk,
            backends,
            durable,
            net_stats,
            Sessions {
                spread: read_from == "spread",
                consistency,
                cache: cache_builder,
                cache_shared,
            },
            data_spec,
        );
        return;
    }

    let sys = match system.as_str() {
        "lustre" => MdtestSystem::BasicLustre,
        "pvfs2" => MdtestSystem::BasicPvfs2,
        "dufs-lustre" => MdtestSystem::DufsLustre { zk_servers: zk, backends },
        "dufs-pvfs2" => MdtestSystem::DufsPvfs2 { zk_servers: zk, backends },
        other => {
            eprintln!("unknown system: {other}");
            usage();
        }
    };

    let spec = WorkloadSpec {
        processes: procs,
        fanout: 10,
        dirs_per_proc: items,
        files_per_proc: items,
        phases: Phase::ALL.to_vec(),
        shared_dir: shared,
    };

    let n_shards = shards.unwrap_or(1);
    println!(
        "-- mdtest-sim: {}{}{} --",
        sys.label(),
        if n_shards > 1 { format!(" x {n_shards} shards") } else { String::new() },
        if durable { " (durable: WAL + group fsync)" } else { "" }
    );
    println!(
        "   {} processes over 8 client nodes, {} items/proc, tree fan-out {}, {} placement{}",
        procs,
        items,
        spec.fanout,
        if shared { "shared-directory" } else { "unique-directory" },
        crash
            .map(|c| format!(", crash server {} @{}ms for {}ms", c.server, c.at_ms, c.down_ms))
            .unwrap_or_default()
    );
    if let Some(o) = crash_all {
        println!(
            "   whole-ensemble outage @{}ms for {}ms; servers restart from their logs",
            o.at_ms, o.down_ms
        );
    }
    println!();

    let report = run_mdtest_report(&MdtestConfig {
        crash_coord: crash,
        durable,
        crash_all_coord: crash_all,
        shards: n_shards,
        ..MdtestConfig::new(sys, spec.clone(), seed)
    });

    println!("SUMMARY rate (of virtual testbed time): (ops/sec)");
    println!(
        "   {:<22} {:>12} {:>10} {:>12} {:>12}",
        "Operation", "ops/sec", "errors", "mean lat", "p99 lat"
    );
    for r in &report.phases {
        println!(
            "   {:<22} {:>12.1} {:>10} {:>9.2} ms {:>9.2} ms",
            r.phase.label(),
            r.ops_per_sec,
            r.errors,
            r.mean_latency_us / 1000.0,
            r.p99_latency_us / 1000.0
        );
    }
    if report.namespace_nodes > 0 {
        println!(
            "\nfinal namespace: {} znodes, replicated digest {:#018x}",
            report.namespace_nodes, report.namespace_digest
        );
    }
    if report.logical_digest != 0 {
        println!(
            "logical content digest (shard-count independent) {:#018x}",
            report.logical_digest
        );
    }

    // Mixed-run data half: drive the same path-derived contents through a
    // striped client over `backends` in-memory targets, read everything
    // back, and print the contents digest — the value the live runners
    // must reproduce byte-for-byte.
    if let Some(d) = data_spec {
        let engines: Vec<Arc<Mutex<MemEngine>>> =
            (0..backends).map(|_| Arc::new(Mutex::new(MemEngine::new()))).collect();
        let mut store = StoreClient::local(&engines, d.stripe);
        for p in 0..spec.processes {
            write_all_files(&mut store, &spec, &d, p);
        }
        let digest = read_back_digest(&mut store, &spec, &d);
        assert_eq!(
            digest,
            expected_data_digest(&spec, &d),
            "read-back contents digest drifted from the spec-derived value"
        );
        // Exercise the popularity skew in sim mode too: a zipf-sampled
        // re-read pass per process, so the knob is live on every path.
        if let Some(theta) = d.zipf {
            for p in 0..spec.processes {
                let files = spec.file_paths(p);
                let mut z = Zipf::new(files.len(), theta, p as u64 + 1);
                for _ in 0..files.len() {
                    verify_file(&mut store, &files[z.sample()], d.bytes);
                }
            }
        }
        println!(
            "data digest {digest:#018x} ({} bytes/file over {backends} in-memory data targets)",
            d.bytes
        );
    }
}
