#![warn(missing_docs)]

//! # dufs-mdtest — workload generator and simulation harness
//!
//! Reproduces the paper's evaluation methodology: the mdtest metadata
//! benchmark (ref. 13 of the paper) run against (a) raw ZooKeeper-style coordination
//! (paper §V-A/B), (b) DUFS over Lustre/PVFS2 back-ends, and (c) the
//! native filesystems themselves ("Basic Lustre", "Basic PVFS") — all
//! inside the deterministic discrete-event simulator from `dufs-simnet`.
//!
//! The simulated testbed mirrors §V's: 8 client nodes (8 cores each), each
//! co-hosting a coordination server and a pack of closed-loop client
//! processes, 1 GigE between nodes, and per-mount metadata servers with
//! Lustre/PVFS2 timing profiles. Calibration constants live in [`costs`]
//! with their derivations.
//!
//! High-level entry points in [`scenario`]:
//! * [`scenario::run_zk_raw`] — Fig 7 (raw coordination throughput);
//! * [`scenario::run_mdtest`] — Figs 8, 9, 10 (DUFS vs Basic Lustre/PVFS2
//!   across client counts, ensemble sizes and back-end counts).

pub mod clients;
pub mod controller;
pub mod costs;
pub mod data;
pub mod live;
pub mod msg;
pub mod scenario;
pub mod servers;
pub mod workload;

pub use live::{run_live, LivePhase, LiveSession};
pub use scenario::{
    run_mdtest, run_mdtest_report, run_zk_raw, run_zk_raw_detailed, run_zk_raw_observers,
    run_zk_raw_tuned, CoordCrash, CoordOutage, MdtestConfig, MdtestReport, MdtestSystem,
    PhaseResult, RawOp, RawTuning,
};
pub use workload::{Phase, WorkloadSpec};
