//! Simulated client processes: raw coordination clients (Fig 7), DUFS
//! clients (Figs 8–10), and native mdtest clients (the Basic Lustre /
//! Basic PVFS2 baselines).
//!
//! Every client process defaults to a closed loop: it keeps exactly one
//! operation in flight, as an mdtest process does. The raw coordination
//! clients can additionally run a depth-K pipeline (`zoo_acreate`-style
//! asynchronous sessions) — depth 1 reproduces the paper's synchronous loop
//! event for event. Client-side CPU is charged on a per-physical-node core
//! pool shared by all processes of that node (the paper ran up to 32
//! processes per 8-core node, co-located with a ZooKeeper server — client
//! CPU is a first-class bottleneck there).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;

use dufs_coord::{HashRing, ZkRequest, ZkResponse};
use dufs_core::fid::{Fid, FidGenerator};
use dufs_core::mapping::Md5Mapping;
use dufs_core::plan::{MetaOp, OpExec, PlanStep, StepResponse};
use dufs_simnet::{
    Ctx, LatencyHist, NodeId, Process, ServiceQueue, SimDuration, SimTime, TimerToken,
};
use dufs_zkstore::CreateMode;

use crate::costs;
use crate::msg::ClusterMsg;
use crate::workload::{NativeOp, Phase, WorkloadSpec};

/// Shared core pool of one physical client node.
#[derive(Clone)]
pub struct NodeCpu(Rc<RefCell<ServiceQueue>>);

impl NodeCpu {
    /// A pool with `cores` cores.
    pub fn new(cores: usize) -> Self {
        NodeCpu(Rc::new(RefCell::new(ServiceQueue::new(cores))))
    }

    /// Charge `cost_us` of CPU starting at `now`; returns the delay until
    /// the work completes (queueing + execution).
    pub fn charge(&self, now: SimTime, cost_us: f64) -> SimDuration {
        self.0.borrow_mut().complete_at(now, costs::us(cost_us)).since(now)
    }
}

/// The raw coordination operation types of Fig 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RawOp {
    /// `zoo_create()` — a fresh znode per operation.
    Create,
    /// `zoo_get()` — repeated reads of one znode.
    Get,
    /// `zoo_set()` — repeated data replacement on one znode.
    Set,
    /// `zoo_delete()` — alternating create/delete; deletes are counted.
    Delete,
}

/// Timer token used to defer an action past a CPU-charge delay.
const T_ISSUE: TimerToken = 1;
/// Timer tokens ≥ this encode a request-timeout for request id
/// `token - T_REQ_TIMEOUT_BASE`.
const T_REQ_TIMEOUT_BASE: TimerToken = 1 << 32;
/// Per-request timeout (virtual). Generous: even a saturated PVFS2 mkdir
/// queue stays well under this.
const REQ_TIMEOUT: SimDuration = SimDuration::from_secs(20);

enum RawState {
    Connecting,
    SetupBench,
    SetupOwn,
    Barrier,
    Running,
    Finished,
}

/// One outstanding measured request of a pipelined session.
struct Inflight {
    req_id: u64,
    started: SimTime,
    /// Whether completing this request counts as one measured op (false for
    /// the create half of a Delete pair).
    counts: bool,
}

/// A Fig 7 client process: raw coordination ops, closed-loop at depth 1 or
/// pipelined with up to `depth` requests outstanding per session.
pub struct RawZkClientProc {
    id: u64,
    server: NodeId,
    controller: NodeId,
    cpu: NodeCpu,
    op: RawOp,
    items: usize,
    state: RawState,
    session: u64,
    next_req: u64,
    seq: usize,
    /// For Delete: whether the next write is the create half of the pair.
    delete_create_half: bool,
    done_ops: u64,
    errors: u64,
    /// Per-op latency (measured phase only).
    pub hist: LatencyHist,
    /// Request queued while the CPU charge elapses.
    staged: Option<ZkRequest>,
    /// Setup-stage request awaited (Connect and the two setup creates are
    /// always synchronous).
    awaiting: Option<u64>,
    /// Pipeline window: max measured requests outstanding (1 = the paper's
    /// synchronous loop).
    depth: usize,
    /// Outstanding measured requests, oldest first.
    inflight: VecDeque<Inflight>,
    /// Counted measured ops *issued* so far. Issuance is bounded by this
    /// rather than by completions so a pipelined session stops at exactly
    /// `items` ops.
    issued: usize,
}

impl RawZkClientProc {
    /// Create a raw client bound to `server`, reporting to `controller`.
    pub fn new(
        id: u64,
        server: NodeId,
        controller: NodeId,
        cpu: NodeCpu,
        op: RawOp,
        items: usize,
    ) -> Self {
        RawZkClientProc {
            id,
            server,
            controller,
            cpu,
            op,
            items,
            state: RawState::Connecting,
            session: 0,
            next_req: 0,
            seq: 0,
            delete_create_half: true,
            done_ops: 0,
            errors: 0,
            hist: LatencyHist::new(),
            staged: None,
            awaiting: None,
            depth: 1,
            inflight: VecDeque::new(),
            issued: 0,
        }
    }

    /// Pipeline `depth` measured requests per session (`zoo_acreate`-style).
    /// Depth 1 is the default synchronous loop.
    ///
    /// # Panics
    /// Panics if `depth` is zero.
    pub fn with_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "a session needs at least one outstanding slot");
        self.depth = depth;
        self
    }

    fn base_path(&self) -> String {
        format!("/bench/c{}", self.id)
    }

    fn send_req(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, req: ZkRequest, charge_cpu: bool) {
        self.next_req += 1;
        self.awaiting = Some(self.next_req);
        let delay = if charge_cpu {
            self.cpu.charge(ctx.now(), costs::RAW_CLIENT_OP_US)
        } else {
            SimDuration::ZERO
        };
        ctx.set_timer(REQ_TIMEOUT + delay, T_REQ_TIMEOUT_BASE + self.next_req);
        ctx.send_after(
            self.server,
            ClusterMsg::ZkReq {
                client: self.id,
                req_id: self.next_req,
                session: self.session,
                req,
            },
            delay,
        );
    }

    /// Generate the next measured request, with whether its completion
    /// counts as a measured op. `None` once `items` counted ops have been
    /// *issued* (some may still be in flight).
    fn next_measured_req(&mut self) -> Option<(ZkRequest, bool)> {
        if self.issued >= self.items {
            return None;
        }
        let (req, counts) = match self.op {
            RawOp::Create => {
                let path = format!("{}/n{}", self.base_path(), self.seq);
                self.seq += 1;
                (
                    ZkRequest::Create {
                        path,
                        data: Bytes::from_static(b"x"),
                        mode: CreateMode::Persistent,
                    },
                    true,
                )
            }
            RawOp::Get => (ZkRequest::GetData { path: self.base_path(), watch: false }, true),
            RawOp::Set => (
                ZkRequest::SetData {
                    path: self.base_path(),
                    data: Bytes::from_static(b"payload-xxxxxxxx"),
                    version: None,
                },
                true,
            ),
            RawOp::Delete => {
                let path = format!("{}/n{}", self.base_path(), self.seq);
                if self.delete_create_half {
                    self.delete_create_half = false;
                    (
                        ZkRequest::Create {
                            path,
                            data: Bytes::new(),
                            mode: CreateMode::Persistent,
                        },
                        false,
                    )
                } else {
                    self.delete_create_half = true;
                    self.seq += 1;
                    (ZkRequest::Delete { path, version: None }, true)
                }
            }
        };
        if counts {
            self.issued += 1;
        }
        Some((req, counts))
    }

    /// Submit one measured request: charge client CPU, arm its timeout and
    /// append it to the pipeline window.
    fn send_measured(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, req: ZkRequest, counts: bool) {
        self.next_req += 1;
        let req_id = self.next_req;
        let delay = self.cpu.charge(ctx.now(), costs::RAW_CLIENT_OP_US);
        ctx.set_timer(REQ_TIMEOUT + delay, T_REQ_TIMEOUT_BASE + req_id);
        ctx.send_after(
            self.server,
            ClusterMsg::ZkReq { client: self.id, req_id, session: self.session, req },
            delay,
        );
        self.inflight.push_back(Inflight { req_id, started: ctx.now(), counts });
    }

    /// Top the pipeline window back up to `depth` outstanding requests; once
    /// the workload is exhausted *and* the window has drained, report the
    /// phase done. With depth 1 this is exactly the old issue-one-await-one
    /// loop.
    fn fill_window(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
        while self.inflight.len() < self.depth {
            match self.next_measured_req() {
                Some((req, counts)) => self.send_measured(ctx, req, counts),
                None => break,
            }
        }
        if self.inflight.is_empty() {
            self.state = RawState::Finished;
            ctx.send(
                self.controller,
                ClusterMsg::PhaseDone {
                    client: self.id,
                    ops: self.done_ops,
                    errors: self.errors,
                    hist: std::mem::take(&mut self.hist),
                },
            );
        }
    }
}

impl Process<ClusterMsg> for RawZkClientProc {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
        self.send_req(ctx, ZkRequest::Connect, false);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, _from: NodeId, msg: ClusterMsg) {
        match msg {
            ClusterMsg::ZkResp { resp, req_id, .. } => match self.state {
                RawState::Connecting if self.awaiting == Some(req_id) => {
                    if let ZkResponse::Connected { session } = resp {
                        self.session = session;
                        self.state = RawState::SetupBench;
                        self.send_req(
                            ctx,
                            ZkRequest::Create {
                                path: "/bench".into(),
                                data: Bytes::new(),
                                mode: CreateMode::Persistent,
                            },
                            false,
                        );
                    } else {
                        // Election still settling: retry shortly.
                        self.staged = Some(ZkRequest::Connect);
                        ctx.set_timer(SimDuration::from_millis(200), T_ISSUE);
                    }
                }
                RawState::Connecting => {}
                RawState::SetupBench => {
                    // NodeExists from the 255 other processes is expected.
                    self.state = RawState::SetupOwn;
                    self.send_req(
                        ctx,
                        ZkRequest::Create {
                            path: self.base_path(),
                            data: Bytes::from_static(b"seed"),
                            mode: CreateMode::Persistent,
                        },
                        false,
                    );
                }
                RawState::SetupOwn => {
                    self.awaiting = None;
                    self.state = RawState::Barrier;
                    ctx.send(
                        self.controller,
                        ClusterMsg::PhaseDone {
                            client: self.id,
                            ops: 0,
                            errors: 0,
                            hist: LatencyHist::new(),
                        },
                    );
                }
                RawState::Running => {
                    // Match the completion against the pipeline window by
                    // request id (the live client matches by xid too):
                    // simulated link jitter may reorder two responses in
                    // flight, and a response for a timed-out request is
                    // simply gone from the window.
                    let Some(pos) = self.inflight.iter().position(|f| f.req_id == req_id) else {
                        return;
                    };
                    let entry = self.inflight.remove(pos).expect("position is in bounds");
                    if matches!(resp, ZkResponse::Error(_)) {
                        self.errors += 1;
                    }
                    if entry.counts {
                        self.done_ops += 1;
                        self.hist.record(ctx.now().since(entry.started));
                    }
                    self.fill_window(ctx);
                }
                RawState::Barrier | RawState::Finished => {}
            },
            ClusterMsg::StartPhase { .. } => {
                self.state = RawState::Running;
                self.fill_window(ctx);
            }
            other => panic!("raw client got {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, token: TimerToken) {
        if token == T_ISSUE {
            if let Some(req) = self.staged.take() {
                self.send_req(ctx, req, false);
            }
            return;
        }
        let req_id = token - T_REQ_TIMEOUT_BASE;
        if self.awaiting == Some(req_id) {
            // A setup stage timed out: retry it (measured ops are handled
            // through the window below).
            self.awaiting = None;
            match self.state {
                RawState::Connecting => self.send_req(ctx, ZkRequest::Connect, false),
                RawState::SetupBench | RawState::SetupOwn => {
                    self.errors += 1;
                    self.fill_window(ctx);
                }
                _ => {}
            }
            return;
        }
        if matches!(self.state, RawState::Running) {
            if let Some(pos) = self.inflight.iter().position(|f| f.req_id == req_id) {
                // A measured request timed out: drop it from the window,
                // count the error, and issue a replacement so the session
                // still performs `items` measured ops.
                let entry = self.inflight.remove(pos).expect("position is in bounds");
                self.errors += 1;
                if entry.counts {
                    self.issued -= 1;
                }
                self.fill_window(ctx);
            }
        }
    }
}

fn native_to_meta(op: &NativeOp) -> MetaOp {
    match op {
        NativeOp::Mkdir(p) => MetaOp::Mkdir { path: p.clone(), mode: 0o755 },
        NativeOp::Rmdir(p) => MetaOp::Rmdir { path: p.clone() },
        NativeOp::Create(p) => MetaOp::Create { path: p.clone(), mode: 0o644 },
        NativeOp::Unlink(p) => MetaOp::Unlink { path: p.clone() },
        NativeOp::StatDir(p) | NativeOp::StatFile(p) => MetaOp::Stat { path: p.clone() },
    }
}

enum DufsState {
    Connecting,
    SetupShared,
    SetupRoot,
    Barrier,
    Running,
    Finished,
}

/// State machine of a sharded delete. A directory's node can exist on two
/// shards (real copy on its owner, a lazily-materialized copy on its
/// children-owner), and deeper `mkdir -p` materialization can leave empty
/// ghost *chains* under the real copy too. The ghost leg runs first: if the
/// children-owner copy holds anything, the directory is genuinely
/// non-empty and the op fails before anything moved. Once it is gone, a
/// `NotEmpty` from the owner copy can only be ghost residue, which is
/// purged (BFS listing, then deepest-first deletes) before the final
/// retry.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SDel {
    /// No sharded delete in flight.
    Idle,
    /// Awaiting the children-owner shard's delete of the ghost copy.
    GhostLeg { path: String, version: Option<u32> },
    /// Awaiting the owner shard's delete of the real copy.
    OwnerLeg { path: String, version: Option<u32>, ghost_removed: bool },
    /// Awaiting `GetChildren(expanding)` on the owner shard while walking
    /// the ghost residue blocking the real copy.
    PurgeExpand {
        path: String,
        version: Option<u32>,
        owner: usize,
        expanding: String,
        /// Directories still to list.
        expand: Vec<String>,
        /// Everything discovered, BFS order (parents before children).
        discovered: Vec<String>,
    },
    /// Awaiting one residue delete; `remaining` is deleted back to front
    /// (deepest first), then the real copy is retried.
    PurgeDelete { path: String, version: Option<u32>, owner: usize, remaining: Vec<String> },
    /// Awaiting the post-purge retry of the owner copy's delete.
    OwnerRetry,
}

/// A DUFS client process: runs the mdtest phases through the full DUFS op
/// planner (FUSE → coordination service → deterministic mapping →
/// back-end), with timing for every hop.
pub struct DufsClientProc {
    id: u64,
    proc_idx: usize,
    zk_server: NodeId,
    backend_nodes: Vec<NodeId>,
    controller: NodeId,
    cpu: NodeCpu,
    spec: WorkloadSpec,
    mapper: Md5Mapping,
    fids: FidGenerator,
    state: DufsState,
    /// Sharded namespace: the routing ring (`None` = one unsharded
    /// ensemble, the paper's deployment and the default).
    ring: Option<HashRing>,
    /// One coordination server per shard (the member this client talks
    /// to). Empty when unsharded — `zk_server` is the single target.
    shard_servers: Vec<NodeId>,
    /// One session per shard (unsharded runs only use index 0).
    sessions: Vec<u64>,
    /// Which shard is being connected during startup.
    connect_idx: usize,
    /// Sharded delete in flight (see `ShardedClient::delete` for the
    /// two-copy story this state machine mirrors).
    sdel: SDel,
    next_req: u64,
    phase: usize,
    ops: Vec<MetaOp>,
    op_idx: usize,
    exec: Option<OpExec>,
    /// Request id currently awaited (stale responses are dropped).
    awaiting: Option<u64>,
    done_ops: u64,
    errors: u64,
    /// Per-op latency of the current phase.
    pub hist: LatencyHist,
    op_started: SimTime,
    retry_connect: bool,
    /// Retry timed-out ops from scratch instead of failing them (used for
    /// whole-ensemble-outage runs: every workload op must eventually land
    /// so the recovered namespace matches an uncrashed control run).
    retry_ops: bool,
    /// FID minted for the op in flight: a retry re-plans the *same* op and
    /// must reuse it, or the retried create would write different znode
    /// data than the control run.
    op_fid: Option<Fid>,
}

impl DufsClientProc {
    /// Build DUFS client `proc_idx` (globally unique node/client id `id`).
    pub fn new(
        id: u64,
        proc_idx: usize,
        zk_server: NodeId,
        backend_nodes: Vec<NodeId>,
        controller: NodeId,
        cpu: NodeCpu,
        spec: WorkloadSpec,
    ) -> Self {
        let n = backend_nodes.len();
        DufsClientProc {
            id,
            proc_idx,
            zk_server,
            backend_nodes,
            controller,
            cpu,
            spec,
            mapper: Md5Mapping::new(n),
            fids: FidGenerator::new(id),
            state: DufsState::Connecting,
            ring: None,
            shard_servers: Vec::new(),
            sessions: vec![0],
            connect_idx: 0,
            sdel: SDel::Idle,
            next_req: 0,
            phase: 0,
            ops: Vec::new(),
            op_idx: 0,
            exec: None,
            awaiting: None,
            done_ops: 0,
            errors: 0,
            hist: LatencyHist::new(),
            op_started: SimTime::ZERO,
            retry_connect: false,
            retry_ops: false,
            op_fid: None,
        }
    }

    /// Retry timed-out operations until they complete (at-least-once
    /// submission; the namespace stays exactly-once because replayed
    /// creates hit `NodeExists` and replayed deletes hit `NoNode`). Off by
    /// default — fault-free runs and single-server-crash runs keep the
    /// fail-and-continue semantics the figures were calibrated with.
    pub fn with_retry(mut self, retry: bool) -> Self {
        self.retry_ops = retry;
        self
    }

    /// Route this client across a sharded namespace: `servers[s]` is the
    /// coordination server of shard `s` this client talks to, `ring` the
    /// routing table every client computes from the shared `ShardConfig`.
    /// Creates become `CreatePath` (a shard owns a path without
    /// necessarily owning its ancestors) and deletes clean up the
    /// children-owner shard's materialized copy, mirroring the live
    /// `ShardedClient` semantics.
    ///
    /// # Panics
    /// Panics if `servers` does not match the ring's shard count.
    pub fn with_shards(mut self, ring: HashRing, servers: Vec<NodeId>) -> Self {
        assert_eq!(ring.shard_count() as usize, servers.len(), "one server per shard");
        self.sessions = vec![0; servers.len()];
        self.ring = Some(ring);
        self.shard_servers = servers;
        self
    }

    /// Mint FIDs under `id` instead of this client's node id. FIDs are
    /// baked into znode data and pick the back-end server, so runs that
    /// must build identical namespaces across different node layouts
    /// (e.g. shard-count sweeps, where coordination servers shift every
    /// node id) need a layout-independent FID identity.
    pub fn with_fid_client(mut self, id: u64) -> Self {
        self.fids = FidGenerator::new(id);
        self
    }

    fn shard_count(&self) -> usize {
        self.shard_servers.len().max(1)
    }

    /// The shard a request routes to (always 0 when unsharded).
    fn shard_of(&self, req: &ZkRequest) -> usize {
        let Some(ring) = &self.ring else { return 0 };
        match req {
            ZkRequest::Create { path, .. }
            | ZkRequest::CreatePath { path, .. }
            | ZkRequest::Delete { path, .. }
            | ZkRequest::SetData { path, .. }
            | ZkRequest::GetData { path, .. }
            | ZkRequest::Exists { path, .. } => ring.route_path(path) as usize,
            ZkRequest::GetChildren { path, .. } | ZkRequest::GetChildrenData { path } => {
                ring.route_children(path) as usize
            }
            _ => 0,
        }
    }

    fn send_zk_shard(
        &mut self,
        ctx: &mut Ctx<'_, ClusterMsg>,
        shard: usize,
        req: ZkRequest,
        delay: SimDuration,
    ) {
        self.next_req += 1;
        self.awaiting = Some(self.next_req);
        ctx.set_timer(REQ_TIMEOUT + delay, T_REQ_TIMEOUT_BASE + self.next_req);
        let target =
            if self.shard_servers.is_empty() { self.zk_server } else { self.shard_servers[shard] };
        ctx.send_after(
            target,
            ClusterMsg::ZkReq {
                client: self.id,
                req_id: self.next_req,
                session: self.sessions[shard],
                req,
            },
            delay,
        );
    }

    fn send_zk(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, req: ZkRequest, delay: SimDuration) {
        let shard = self.shard_of(&req);
        self.send_zk_shard(ctx, shard, req, delay);
    }

    /// An unmeasured setup create (`/mdtest`, the proc root). Sharded runs
    /// use `CreatePath`: the owning shard materializes missing ancestors.
    fn send_setup_create(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, path: String) {
        let data = dufs_core::meta::NodeMeta::dir(0o755).encode();
        let req = if self.ring.is_some() {
            ZkRequest::CreatePath { path, data, mode: CreateMode::Persistent }
        } else {
            ZkRequest::Create { path, data, mode: CreateMode::Persistent }
        };
        self.send_zk(ctx, req, SimDuration::ZERO);
    }

    fn dispatch_step(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, step: PlanStep, delay: SimDuration) {
        match step {
            PlanStep::Zk(req) => {
                let req = match (self.ring.is_some(), req) {
                    // A sharded create must materialize ancestors the
                    // owning shard has never seen (`mkdir -p`).
                    (true, ZkRequest::Create { path, data, mode }) => {
                        ZkRequest::CreatePath { path, data, mode }
                    }
                    (_, req) => req,
                };
                if let (Some(ring), ZkRequest::Delete { path, version }) = (&self.ring, &req) {
                    let owner = ring.route_path(path) as usize;
                    let kids = ring.route_children(path) as usize;
                    if kids != owner {
                        // Two-step sharded delete: the children-owner
                        // shard's materialized copy first, so a populated
                        // directory fails with NotEmpty before anything is
                        // touched; the owner copy follows on its response.
                        self.sdel = SDel::GhostLeg { path: path.clone(), version: *version };
                        let ghost = ZkRequest::Delete { path: path.clone(), version: None };
                        self.send_zk_shard(ctx, kids, ghost, delay);
                        return;
                    }
                }
                self.send_zk(ctx, req, delay);
            }
            PlanStep::Backend { backend, req } => {
                self.next_req += 1;
                self.awaiting = Some(self.next_req);
                ctx.set_timer(REQ_TIMEOUT + delay, T_REQ_TIMEOUT_BASE + self.next_req);
                ctx.send_after(
                    self.backend_nodes[backend],
                    ClusterMsg::BeReq {
                        client: self.id,
                        req_id: self.next_req,
                        req,
                        deep_path: true,
                    },
                    delay,
                );
            }
            PlanStep::Done(r) => {
                if r.is_err() {
                    self.errors += 1;
                }
                self.awaiting = None;
                self.done_ops += 1;
                self.hist.record(ctx.now().since(self.op_started));
                self.exec = None;
                self.start_next_op(ctx);
            }
        }
    }

    fn op_cpu_cost(&self) -> f64 {
        let phase = self.spec.phases[self.phase];
        match phase {
            Phase::FileCreate | Phase::FileStat | Phase::FileRemove => {
                costs::DUFS_META_OP_US + costs::DUFS_BACKEND_EXTRA_US
            }
            _ => costs::DUFS_META_OP_US,
        }
    }

    fn start_next_op(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
        if self.op_idx >= self.ops.len() {
            self.state = DufsState::Barrier;
            ctx.send(
                self.controller,
                ClusterMsg::PhaseDone {
                    client: self.id,
                    ops: self.done_ops,
                    errors: self.errors,
                    hist: std::mem::take(&mut self.hist),
                },
            );
            return;
        }
        self.op_idx += 1;
        self.op_started = ctx.now();
        self.op_fid = None;
        self.issue_op(ctx);
    }

    /// Handle one mid-flight leg of a sharded delete, if that is what
    /// `resp` answers. Returns the response to feed the planner, or `None`
    /// if another leg was just issued and the op is still in flight.
    fn sharded_delete_leg(
        &mut self,
        ctx: &mut Ctx<'_, ClusterMsg>,
        resp: ZkResponse,
    ) -> Option<ZkResponse> {
        use dufs_zkstore::ZkError;
        match std::mem::replace(&mut self.sdel, SDel::Idle) {
            SDel::Idle => Some(resp),
            SDel::GhostLeg { path, version } => match resp {
                ZkResponse::Deleted | ZkResponse::Error(ZkError::NoNode) => {
                    let ghost_removed = matches!(resp, ZkResponse::Deleted);
                    let owner =
                        self.ring.as_ref().expect("sharded delete").route_path(&path) as usize;
                    let req = ZkRequest::Delete { path: path.clone(), version };
                    self.sdel = SDel::OwnerLeg { path, version, ghost_removed };
                    self.send_zk_shard(ctx, owner, req, SimDuration::ZERO);
                    None
                }
                // NotEmpty and friends fail the op before anything moved.
                other => Some(other),
            },
            SDel::OwnerLeg { path, version, ghost_removed } => match resp {
                // The directory only ever existed as a materialized copy;
                // the ghost leg's removal completed the delete.
                ZkResponse::Error(ZkError::NoNode) if ghost_removed => Some(ZkResponse::Deleted),
                // The ghost leg certified the directory has no real
                // children, so only materialized ghost chains (left by
                // deeper `mkdir -p`s that executed on this shard) block
                // the real copy. Walk and purge them, then retry.
                ZkResponse::Error(ZkError::NotEmpty) => {
                    let owner =
                        self.ring.as_ref().expect("sharded delete").route_path(&path) as usize;
                    let req = ZkRequest::GetChildren { path: path.clone(), watch: false };
                    self.sdel = SDel::PurgeExpand {
                        expanding: path.clone(),
                        path,
                        version,
                        owner,
                        expand: Vec::new(),
                        discovered: Vec::new(),
                    };
                    self.send_zk_shard(ctx, owner, req, SimDuration::ZERO);
                    None
                }
                other => Some(other),
            },
            SDel::PurgeExpand { path, version, owner, expanding, mut expand, mut discovered } => {
                match resp {
                    ZkResponse::Children { names, .. } => {
                        for n in names {
                            let child = if expanding == "/" {
                                format!("/{n}")
                            } else {
                                format!("{expanding}/{n}")
                            };
                            expand.push(child.clone());
                            discovered.push(child);
                        }
                    }
                    ZkResponse::Error(ZkError::NoNode) => {}
                    other => return Some(other),
                }
                if let Some(next) = expand.pop() {
                    let req = ZkRequest::GetChildren { path: next.clone(), watch: false };
                    self.sdel = SDel::PurgeExpand {
                        path,
                        version,
                        owner,
                        expanding: next,
                        expand,
                        discovered,
                    };
                    self.send_zk_shard(ctx, owner, req, SimDuration::ZERO);
                    return None;
                }
                self.purge_delete_next(ctx, path, version, owner, discovered);
                None
            }
            SDel::PurgeDelete { path, version, owner, remaining } => match resp {
                ZkResponse::Deleted | ZkResponse::Error(ZkError::NoNode) => {
                    self.purge_delete_next(ctx, path, version, owner, remaining);
                    None
                }
                other => Some(other),
            },
            SDel::OwnerRetry => match resp {
                // Everything — ghosts and real copy — is gone.
                ZkResponse::Error(ZkError::NoNode) => Some(ZkResponse::Deleted),
                other => Some(other),
            },
        }
    }

    /// Delete the next discovered ghost (deepest first); once all are
    /// gone, retry the owner copy's delete.
    fn purge_delete_next(
        &mut self,
        ctx: &mut Ctx<'_, ClusterMsg>,
        path: String,
        version: Option<u32>,
        owner: usize,
        mut remaining: Vec<String>,
    ) {
        if let Some(victim) = remaining.pop() {
            let req = ZkRequest::Delete { path: victim, version: None };
            self.sdel = SDel::PurgeDelete { path, version, owner, remaining };
            self.send_zk_shard(ctx, owner, req, SimDuration::ZERO);
        } else {
            let req = ZkRequest::Delete { path, version };
            self.sdel = SDel::OwnerRetry;
            self.send_zk_shard(ctx, owner, req, SimDuration::ZERO);
        }
    }

    /// (Re)issue the current op (`ops[op_idx - 1]`) from its first plan
    /// step. First issue mints a fresh FID on demand; a retry reuses the
    /// cached one so both attempts describe the identical file.
    fn issue_op(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
        self.sdel = SDel::Idle;
        let op = self.ops[self.op_idx - 1].clone();
        let delay = self.cpu.charge(ctx.now(), self.op_cpu_cost());
        let fids = &mut self.fids;
        let cached = &mut self.op_fid;
        let (exec, step) =
            OpExec::start(op, || *cached.get_or_insert_with(|| fids.next_fid()), &self.mapper);
        self.exec = Some(exec);
        self.dispatch_step(ctx, step, delay);
    }

    fn feed(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, resp: StepResponse) {
        let mut exec = self.exec.take().expect("an op is in flight");
        let step = exec.feed(resp, &self.mapper);
        self.exec = Some(exec);
        self.dispatch_step(ctx, step, SimDuration::ZERO);
    }
}

impl Process<ClusterMsg> for DufsClientProc {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
        self.send_zk_shard(ctx, 0, ZkRequest::Connect, SimDuration::ZERO);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, _from: NodeId, msg: ClusterMsg) {
        match msg {
            ClusterMsg::ZkResp { resp, req_id, .. } => match self.state {
                DufsState::Connecting => {
                    let _ = req_id;
                    if let ZkResponse::Connected { session } = resp {
                        self.sessions[self.connect_idx] = session;
                        self.connect_idx += 1;
                        if self.connect_idx < self.shard_count() {
                            // Sharded: one session per shard, opened in turn.
                            let idx = self.connect_idx;
                            self.send_zk_shard(ctx, idx, ZkRequest::Connect, SimDuration::ZERO);
                            return;
                        }
                        self.state = DufsState::SetupShared;
                        self.send_setup_create(ctx, "/mdtest".into());
                    } else {
                        self.retry_connect = true;
                        ctx.set_timer(SimDuration::from_millis(200), T_ISSUE);
                    }
                }
                DufsState::SetupShared => {
                    // NodeExists is fine: 255 sibling processes race us.
                    self.state = DufsState::SetupRoot;
                    self.send_setup_create(ctx, WorkloadSpec::proc_root(self.proc_idx));
                }
                DufsState::SetupRoot => {
                    self.state = DufsState::Barrier;
                    ctx.send(
                        self.controller,
                        ClusterMsg::PhaseDone {
                            client: self.id,
                            ops: 0,
                            errors: 0,
                            hist: LatencyHist::new(),
                        },
                    );
                }
                DufsState::Running => {
                    if self.awaiting == Some(req_id) {
                        if let Some(resp) = self.sharded_delete_leg(ctx, resp) {
                            self.feed(ctx, StepResponse::Zk(resp));
                        }
                    }
                }
                DufsState::Barrier | DufsState::Finished => {}
            },
            ClusterMsg::BeResp { resp, req_id, .. } => {
                if matches!(self.state, DufsState::Running) && self.awaiting == Some(req_id) {
                    self.feed(ctx, StepResponse::Backend(resp));
                }
            }
            ClusterMsg::StartPhase { idx } => {
                if idx >= self.spec.phases.len() {
                    self.state = DufsState::Finished;
                    return;
                }
                self.phase = idx;
                self.ops = self
                    .spec
                    .ops_for(self.proc_idx, self.spec.phases[idx])
                    .iter()
                    .map(native_to_meta)
                    .collect();
                self.op_idx = 0;
                self.done_ops = 0;
                self.errors = 0;
                self.hist = LatencyHist::new();
                self.state = DufsState::Running;
                self.start_next_op(ctx);
            }
            other => panic!("dufs client got {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, token: TimerToken) {
        if token == T_ISSUE {
            if self.retry_connect {
                self.retry_connect = false;
                let idx = self.connect_idx.min(self.shard_count() - 1);
                self.send_zk_shard(ctx, idx, ZkRequest::Connect, SimDuration::ZERO);
            }
            return;
        }
        // Request timeout: if still awaited, fail the in-flight step so the
        // op completes with an error and the loop continues (the live
        // ZooKeeper client library does the same).
        let req_id = token - T_REQ_TIMEOUT_BASE;
        if self.awaiting == Some(req_id) {
            self.awaiting = None;
            match self.state {
                DufsState::Running if self.retry_ops && self.exec.is_some() => {
                    // Outage mode: throw the half-done plan away and replay
                    // the whole op (same FID). Whatever the lost attempt
                    // already applied surfaces as NodeExists/NoNode, which
                    // leaves the namespace exactly as if it ran once.
                    self.exec = None;
                    self.issue_op(ctx);
                }
                DufsState::Running if self.exec.is_some() => {
                    self.sdel = SDel::Idle;
                    self.feed(
                        ctx,
                        StepResponse::Zk(ZkResponse::Error(dufs_zkstore::ZkError::ConnectionLoss)),
                    );
                }
                DufsState::Connecting => {
                    let idx = self.connect_idx.min(self.shard_count() - 1);
                    self.send_zk_shard(ctx, idx, ZkRequest::Connect, SimDuration::ZERO);
                }
                DufsState::SetupShared | DufsState::SetupRoot => {
                    // Restart setup from the top; creates tolerate Exists.
                    self.state = DufsState::Connecting;
                    self.connect_idx = 0;
                    self.send_zk_shard(ctx, 0, ZkRequest::Connect, SimDuration::ZERO);
                }
                _ => {}
            }
        }
    }
}

enum NativeState {
    SetupShared,
    SetupRoot,
    Barrier,
    Running,
    Finished,
}

/// A native mdtest client process (Basic Lustre / Basic PVFS2): the same
/// workload issued directly against one back-end filesystem.
pub struct NativeClientProc {
    id: u64,
    proc_idx: usize,
    backend: NodeId,
    controller: NodeId,
    cpu: NodeCpu,
    spec: WorkloadSpec,
    state: NativeState,
    next_req: u64,
    phase: usize,
    ops: Vec<NativeOp>,
    op_idx: usize,
    done_ops: u64,
    errors: u64,
    /// Per-op latency of the current phase.
    pub hist: LatencyHist,
    op_started: SimTime,
}

impl NativeClientProc {
    /// Build native client `proc_idx` against `backend`.
    pub fn new(
        id: u64,
        proc_idx: usize,
        backend: NodeId,
        controller: NodeId,
        cpu: NodeCpu,
        spec: WorkloadSpec,
    ) -> Self {
        NativeClientProc {
            id,
            proc_idx,
            backend,
            controller,
            cpu,
            spec,
            state: NativeState::SetupShared,
            next_req: 0,
            phase: 0,
            ops: Vec::new(),
            op_idx: 0,
            done_ops: 0,
            errors: 0,
            hist: LatencyHist::new(),
            op_started: SimTime::ZERO,
        }
    }

    fn send_native(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, op: NativeOp, delay: SimDuration) {
        self.next_req += 1;
        ctx.send_after(
            self.backend,
            ClusterMsg::NativeReq { client: self.id, req_id: self.next_req, op },
            delay,
        );
    }

    fn start_next_op(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
        if self.op_idx >= self.ops.len() {
            self.state = NativeState::Barrier;
            ctx.send(
                self.controller,
                ClusterMsg::PhaseDone {
                    client: self.id,
                    ops: self.done_ops,
                    errors: self.errors,
                    hist: std::mem::take(&mut self.hist),
                },
            );
            return;
        }
        let op = self.ops[self.op_idx].clone();
        self.op_idx += 1;
        self.op_started = ctx.now();
        let delay = self.cpu.charge(ctx.now(), costs::NATIVE_CLIENT_OP_US);
        self.send_native(ctx, op, delay);
    }
}

impl Process<ClusterMsg> for NativeClientProc {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
        self.send_native(ctx, NativeOp::Mkdir("/mdtest".into()), SimDuration::ZERO);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, _from: NodeId, msg: ClusterMsg) {
        match msg {
            ClusterMsg::NativeResp { ok, .. } => match self.state {
                NativeState::SetupShared => {
                    self.state = NativeState::SetupRoot;
                    self.send_native(
                        ctx,
                        NativeOp::Mkdir(WorkloadSpec::proc_root(self.proc_idx)),
                        SimDuration::ZERO,
                    );
                }
                NativeState::SetupRoot => {
                    self.state = NativeState::Barrier;
                    ctx.send(
                        self.controller,
                        ClusterMsg::PhaseDone {
                            client: self.id,
                            ops: 0,
                            errors: 0,
                            hist: LatencyHist::new(),
                        },
                    );
                }
                NativeState::Running => {
                    if !ok {
                        self.errors += 1;
                    }
                    self.done_ops += 1;
                    self.hist.record(ctx.now().since(self.op_started));
                    self.start_next_op(ctx);
                }
                NativeState::Barrier | NativeState::Finished => {}
            },
            ClusterMsg::StartPhase { idx } => {
                if idx >= self.spec.phases.len() {
                    self.state = NativeState::Finished;
                    return;
                }
                self.phase = idx;
                self.ops = self.spec.ops_for(self.proc_idx, self.spec.phases[idx]);
                self.op_idx = 0;
                self.done_ops = 0;
                self.errors = 0;
                self.hist = LatencyHist::new();
                self.state = NativeState::Running;
                self.start_next_op(ctx);
            }
            other => panic!("native client got {other:?}"),
        }
    }
}
