//! Simulated server processes: coordination servers and back-end
//! metadata/IO servers.

use dufs_backendfs::{MetaOpKind, ParallelFs};
use dufs_coord::server::{CoordServer, CoordTimer, ServerIn, ServerOut};
use dufs_coord::ZkRequest;
use dufs_core::plan::BackendReq;
use dufs_core::services::apply_backend_req;
use dufs_simnet::{Ctx, NodeId, Process, ServiceQueue, SimDuration, TimerToken};
use dufs_wal::MemStorage;
use dufs_zab::{EnsembleConfig, PeerId, ZabConfig};

use crate::costs;
use crate::msg::ClusterMsg;
use crate::workload::NativeOp;

/// A coordination server inside the simulation: the [`CoordServer`] state
/// machine plus a CPU cost model. All request handling is serialized
/// through a single pipeline queue (ZooKeeper's ordered commit path), which
/// is what makes writes *slow down* as the ensemble grows — every extra
/// follower adds propose/ack/commit CPU at the leader (Fig 7a–c) — while
/// reads scale out across servers (Fig 7d).
pub struct CoordServerProc {
    server: CoordServer,
    /// Map peer id → sim node of that coordination server.
    peer_nodes: Vec<NodeId>,
    queue: ServiceQueue,
    timers: Vec<CoordTimer>,
    startup: Option<Vec<ServerOut>>,
    /// WAL fsyncs already charged on the pipeline (durable servers only):
    /// each increment of `wal_sync_count()` past this costs `FSYNC_US`.
    wal_synced: u64,
}

impl CoordServerProc {
    /// Build server `peer` of `ensemble`; `peer_nodes[i]` must be the sim
    /// node hosting peer `i`.
    pub fn new(peer: PeerId, ensemble: EnsembleConfig, peer_nodes: Vec<NodeId>) -> Self {
        Self::new_with_config(peer, ensemble, peer_nodes, ZabConfig::default())
    }

    /// As [`CoordServerProc::new`] with explicit ZAB group-commit tuning
    /// (the default reproduces the paper's one-round-per-write broadcast).
    pub fn new_with_config(
        peer: PeerId,
        ensemble: EnsembleConfig,
        peer_nodes: Vec<NodeId>,
        zab: ZabConfig,
    ) -> Self {
        let (server, startup) = CoordServer::new_with_config(peer, ensemble, zab);
        CoordServerProc {
            server,
            peer_nodes,
            queue: ServiceQueue::new(costs::ZK_PIPELINE_WIDTH),
            timers: Vec::new(),
            startup: Some(startup),
            wal_synced: 0,
        }
    }

    /// As [`CoordServerProc::new_with_config`] with a write-ahead log: the
    /// server fsyncs every ZAB batch before its ACK leaves (charged as
    /// `FSYNC_US` pipeline time per group fsync) and recovers its state
    /// from the log after a crash instead of resyncing from a peer. The
    /// log lives on deterministic in-memory storage so simulation runs
    /// stay reproducible per seed.
    pub fn new_durable_with_config(
        peer: PeerId,
        ensemble: EnsembleConfig,
        peer_nodes: Vec<NodeId>,
        zab: ZabConfig,
    ) -> Self {
        let (server, startup) =
            CoordServer::new_durable(peer, ensemble, zab, Box::new(MemStorage::new()))
                .expect("in-memory WAL storage cannot fail");
        let wal_synced = server.wal_sync_count();
        CoordServerProc {
            server,
            peer_nodes,
            queue: ServiceQueue::new(costs::ZK_PIPELINE_WIDTH),
            timers: Vec::new(),
            startup: Some(startup),
            wal_synced,
        }
    }

    /// The wrapped server (for digests/memory probes after a run).
    pub fn server(&self) -> &CoordServer {
        &self.server
    }

    fn request_cost(req: &ZkRequest) -> f64 {
        if req.is_read() {
            costs::ZK_READ_US + 2.0 * costs::ZK_CLIENT_MSG_US
        } else {
            let extra = match req {
                ZkRequest::Multi { ops } => costs::ZK_MULTI_PER_OP_US * ops.len() as f64,
                ZkRequest::SetData { .. } => 40.0, // payload rewrite (Fig 7c)
                _ => 0.0,
            };
            costs::ZK_WRITE_BASE_US + 2.0 * costs::ZK_CLIENT_MSG_US + extra
        }
    }

    /// Execute server outputs, sending network messages after `delay`
    /// (the request's residual service time).
    fn dispatch(
        &mut self,
        ctx: &mut Ctx<'_, ClusterMsg>,
        outs: Vec<ServerOut>,
        delay: SimDuration,
    ) {
        for o in outs {
            match o {
                ServerOut::Client { client, req_id, resp } => {
                    ctx.send_after(
                        NodeId(client as u32),
                        ClusterMsg::ZkResp { client, req_id, resp },
                        delay,
                    );
                }
                ServerOut::Peer { to, msg } => {
                    let node = self.peer_nodes[to.0 as usize];
                    ctx.send_after(
                        node,
                        ClusterMsg::CoordPeer { from: self.server.id(), msg },
                        delay,
                    );
                }
                ServerOut::Timer { timer, after_ms } => {
                    let token = self.timers.len() as TimerToken;
                    self.timers.push(timer);
                    ctx.set_timer(SimDuration::from_millis(after_ms) + delay, token);
                }
                ServerOut::Watch { .. } => {
                    // The simulated mdtest clients do not register watches.
                }
            }
        }
    }

    /// Charge `cost_us` (+ per-peer-message tx cost once outputs are known)
    /// on the pipeline and dispatch.
    fn charge_and_dispatch(
        &mut self,
        ctx: &mut Ctx<'_, ClusterMsg>,
        outs: Vec<ServerOut>,
        base_cost_us: f64,
    ) {
        let peer_sends = outs.iter().filter(|o| matches!(o, ServerOut::Peer { .. })).count() as f64;
        // Durable servers block the pipeline for every WAL group fsync the
        // event triggered (ACKs only left the server after the flush).
        let syncs = self.server.wal_sync_count().saturating_sub(self.wal_synced) as f64;
        self.wal_synced = self.server.wal_sync_count();
        let cost =
            costs::us(base_cost_us + peer_sends * costs::ZK_PEER_MSG_US + syncs * costs::FSYNC_US);
        let done = self.queue.complete_at(ctx.now(), cost);
        let delay = done.since(ctx.now());
        self.dispatch(ctx, outs, delay);
    }
}

impl Process<ClusterMsg> for CoordServerProc {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
        if let Some(outs) = self.startup.take() {
            self.dispatch(ctx, outs, SimDuration::ZERO);
        }
    }

    fn on_crash(&mut self) {
        self.server.on_crash();
        self.queue.reset();
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
        let outs = self.server.on_restart(ctx.now().as_nanos());
        // Recovery replay (log scan + snapshot load) happens "during the
        // restart"; its fsync is not charged against the serving pipeline.
        self.wal_synced = self.server.wal_sync_count();
        self.dispatch(ctx, outs, SimDuration::ZERO);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, _from: NodeId, msg: ClusterMsg) {
        match msg {
            ClusterMsg::ZkReq { client, req_id, session, req } => {
                let cost = Self::request_cost(&req);
                let outs = self.server.handle(
                    ctx.now().as_nanos(),
                    ServerIn::Client { client, req_id, session, req },
                );
                self.charge_and_dispatch(ctx, outs, cost);
            }
            ClusterMsg::CoordPeer { from, msg } => {
                // A forwarded client write costs the full transaction
                // pipeline at the leader, exactly like a locally received
                // one; protocol chatter costs one message's worth.
                let cost = match &msg {
                    dufs_coord::CoordMsg::Forward { op, .. } => {
                        let extra = match op {
                            dufs_coord::TxnOp::Multi { ops } => {
                                costs::ZK_MULTI_PER_OP_US * ops.len() as f64
                            }
                            dufs_coord::TxnOp::SetData { .. } => 40.0,
                            _ => 0.0,
                        };
                        costs::ZK_WRITE_BASE_US + costs::ZK_PEER_MSG_US + extra
                    }
                    _ => costs::ZK_PEER_MSG_US,
                };
                let outs = self.server.handle(ctx.now().as_nanos(), ServerIn::Peer { from, msg });
                self.charge_and_dispatch(ctx, outs, cost);
            }
            other => panic!("coord server got unexpected message {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, token: TimerToken) {
        let timer = self.timers[token as usize];
        let outs = self.server.handle(ctx.now().as_nanos(), ServerIn::Timer(timer));
        // Protocol timers are cheap; only their sends cost.
        self.charge_and_dispatch(ctx, outs, 1.0);
    }
}

/// One back-end filesystem mount inside the simulation: a functional
/// [`ParallelFs`] behind an MDS service queue with the mount's timing
/// profile (Lustre or PVFS2).
pub struct BackendProc {
    fs: ParallelFs,
    queue: ServiceQueue,
    /// One exclusive DLM lock per directory: namespace mutations serialize
    /// on their parent (see `PfsTimingProfile::dir_lock_us`).
    dir_locks: std::collections::HashMap<String, ServiceQueue>,
}

impl BackendProc {
    /// Wrap a functional filesystem instance.
    pub fn new(fs: ParallelFs) -> Self {
        let width = fs.profile().mds_parallelism;
        BackendProc {
            fs,
            queue: ServiceQueue::new(width),
            dir_locks: std::collections::HashMap::new(),
        }
    }

    fn parent_of(path: &str) -> String {
        match path.rfind('/') {
            Some(0) | None => "/".to_string(),
            Some(i) => path[..i].to_string(),
        }
    }

    /// Mutations first acquire the parent directory's exclusive lock; the
    /// MDS service starts once the lock is granted.
    fn mutation_start(&mut self, now: dufs_simnet::SimTime, path: &str) -> dufs_simnet::SimTime {
        let lock_us = self.fs.profile().dir_lock_us;
        if lock_us <= 0.0 {
            return now;
        }
        let parent = Self::parent_of(path);
        let q = self.dir_locks.entry(parent).or_insert_with(|| ServiceQueue::new(1));
        q.complete_at(now, costs::us(lock_us))
    }

    /// The wrapped filesystem (post-run verification).
    pub fn fs(&self) -> &ParallelFs {
        &self.fs
    }

    fn kind_of_backend_req(req: &BackendReq) -> MetaOpKind {
        match req {
            BackendReq::CreateFile { .. } => MetaOpKind::Create,
            BackendReq::Unlink { .. } => MetaOpKind::Unlink,
            BackendReq::Stat { .. } => MetaOpKind::StatFile,
            BackendReq::Chmod { .. } | BackendReq::Truncate { .. } => MetaOpKind::SetAttr,
            BackendReq::Access { .. } => MetaOpKind::Open,
            BackendReq::SetTimes { .. } => MetaOpKind::SetAttr,
            BackendReq::StatFs => MetaOpKind::StatDir,
            BackendReq::Read { .. } | BackendReq::Write { .. } => MetaOpKind::Open, // + IO below
        }
    }

    fn kind_of_native(op: &NativeOp) -> MetaOpKind {
        match op {
            NativeOp::Mkdir(_) => MetaOpKind::Mkdir,
            NativeOp::Rmdir(_) => MetaOpKind::Rmdir,
            NativeOp::Create(_) => MetaOpKind::Create,
            NativeOp::Unlink(_) => MetaOpKind::Unlink,
            NativeOp::StatDir(_) => MetaOpKind::StatDir,
            NativeOp::StatFile(_) => MetaOpKind::StatFile,
        }
    }
}

impl Process<ClusterMsg> for BackendProc {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, from: NodeId, msg: ClusterMsg) {
        match msg {
            ClusterMsg::BeReq { client, req_id, req, deep_path } => {
                let kind = Self::kind_of_backend_req(&req);
                let load = self.queue.in_flight(ctx.now());
                let mut service = self.fs.profile().service_time(kind, load);
                if deep_path {
                    service = service.mul_f64(self.fs.profile().shard_depth_factor);
                }
                // Data ops add per-target IO time.
                if let BackendReq::Read { len, .. } = &req {
                    service = service + self.fs.profile().io_time(*len);
                }
                if let BackendReq::Write { data, .. } = &req {
                    service = service + self.fs.profile().io_time(data.len());
                }
                // Namespace mutations hold the parent directory's lock.
                let start = match &req {
                    BackendReq::CreateFile { path, .. } | BackendReq::Unlink { path } => {
                        self.mutation_start(ctx.now(), path)
                    }
                    _ => ctx.now(),
                };
                let done = self.queue.complete_at(start, service);
                let resp = apply_backend_req(&mut self.fs, req, done.as_nanos());
                ctx.send_after(
                    from,
                    ClusterMsg::BeResp { client, req_id, resp },
                    done.since(ctx.now()),
                );
            }
            ClusterMsg::NativeReq { client, req_id, op } => {
                let kind = Self::kind_of_native(&op);
                let load = self.queue.in_flight(ctx.now());
                let service = self.fs.profile().service_time(kind, load);
                let start = match &op {
                    NativeOp::Mkdir(p)
                    | NativeOp::Rmdir(p)
                    | NativeOp::Create(p)
                    | NativeOp::Unlink(p) => self.mutation_start(ctx.now(), p),
                    _ => ctx.now(),
                };
                let done = self.queue.complete_at(start, service);
                let t = done.as_nanos();
                let ok = match &op {
                    NativeOp::Mkdir(p) => {
                        matches!(
                            self.fs.mkdir(p, 0o755, t),
                            Ok(()) | Err(dufs_backendfs::FsError::Exists)
                        )
                    }
                    NativeOp::Rmdir(p) => self.fs.rmdir(p, t).is_ok(),
                    NativeOp::Create(p) => self.fs.create(p, 0o644, t).is_ok(),
                    NativeOp::Unlink(p) => self.fs.unlink(p, t).is_ok(),
                    NativeOp::StatDir(p) | NativeOp::StatFile(p) => self.fs.stat(p).is_ok(),
                };
                ctx.send_after(
                    from,
                    ClusterMsg::NativeResp { client, req_id, ok },
                    done.since(ctx.now()),
                );
            }
            other => panic!("backend got unexpected message {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufs_simnet::{FixedLatency, Sim, SimTime};

    /// A driver that fires native requests at a backend and records reply
    /// times.
    struct Probe {
        target: NodeId,
        send: Vec<NativeOp>,
        replies: Vec<(u64, bool)>, // (time ns, ok)
    }
    impl Process<ClusterMsg> for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
            for (i, op) in self.send.iter().cloned().enumerate() {
                ctx.send(self.target, ClusterMsg::NativeReq { client: 99, req_id: i as u64, op });
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, _from: NodeId, msg: ClusterMsg) {
            if let ClusterMsg::NativeResp { ok, .. } = msg {
                self.replies.push((ctx.now().as_nanos(), ok));
            }
        }
    }

    #[test]
    fn backend_serves_native_ops_with_service_delay() {
        let mut sim: Sim<ClusterMsg> = Sim::new(7, FixedLatency::micros(50));
        let be = sim.add_node(BackendProc::new(ParallelFs::lustre()));
        let probe = sim.add_node(Probe {
            target: be,
            send: vec![
                NativeOp::Mkdir("/a".into()),
                NativeOp::StatDir("/a".into()),
                NativeOp::Rmdir("/a".into()),
            ],
            replies: vec![],
        });
        sim.run_until_idle();
        let p = sim.node_ref::<Probe>(probe);
        assert_eq!(p.replies.len(), 3);
        assert!(p.replies.iter().all(|&(_, ok)| ok), "{:?}", p.replies);
        // mkdir costs ~1.3ms service + 100us RTT: first reply not before that.
        assert!(p.replies[0].0 > 1_300_000, "reply at {}", p.replies[0].0);
        // Backend is empty again.
        assert_eq!(sim.node_ref::<BackendProc>(be).fs().entry_count(), 0);
    }

    #[test]
    fn coord_server_single_ensemble_answers_requests() {
        struct ZkProbe {
            target: NodeId,
            got: Vec<ClusterMsg>,
        }
        impl Process<ClusterMsg> for ZkProbe {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ClusterMsg>) {
                ctx.send(
                    self.target,
                    ClusterMsg::ZkReq { client: 1, req_id: 0, session: 0, req: ZkRequest::Connect },
                );
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, ClusterMsg>, _f: NodeId, msg: ClusterMsg) {
                if let ClusterMsg::ZkResp { resp, .. } = &msg {
                    use dufs_coord::ZkResponse;
                    match resp {
                        ZkResponse::Connected { session } => {
                            let session = *session;
                            self.got.push(msg);
                            ctx.send(
                                self.target,
                                ClusterMsg::ZkReq {
                                    client: 1,
                                    req_id: 1,
                                    session,
                                    req: ZkRequest::Create {
                                        path: "/x".into(),
                                        data: bytes::Bytes::new(),
                                        mode: dufs_zkstore::CreateMode::Persistent,
                                    },
                                },
                            );
                        }
                        _ => self.got.push(msg),
                    }
                }
            }
        }
        let mut sim: Sim<ClusterMsg> = Sim::new(3, FixedLatency::micros(50));
        // Node 0 hosts the single coordination server.
        let coord = sim.add_node(CoordServerProc::new(
            PeerId(0),
            EnsembleConfig::of_size(1),
            vec![NodeId(0)],
        ));
        assert_eq!(coord, NodeId(0));
        let probe = sim.add_node(ZkProbe { target: coord, got: vec![] });
        sim.run_until(SimTime::from_secs(2));
        let p = sim.node_ref::<ZkProbe>(probe);
        assert_eq!(p.got.len(), 2, "connect + create answered: {:?}", p.got);
    }
}
