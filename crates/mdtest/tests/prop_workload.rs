//! Property tests for the workload generator: structural invariants every
//! simulated run depends on.

use proptest::prelude::*;
use std::collections::HashSet;

use dufs_mdtest::workload::{NativeOp, Phase, WorkloadSpec};

fn spec(processes: usize, fanout: usize, dirs: usize, files: usize, shared: bool) -> WorkloadSpec {
    WorkloadSpec {
        processes,
        fanout,
        dirs_per_proc: dirs,
        files_per_proc: files,
        phases: Phase::ALL.to_vec(),
        shared_dir: shared,
    }
}

proptest! {
    /// Directory creation order is executable: every directory's parent is
    /// either the process root or a directory created earlier.
    #[test]
    fn dir_creation_order_is_executable(
        fanout in 2usize..12,
        dirs in 1usize..120,
        proc in 0usize..8,
    ) {
        let s = spec(8, fanout, dirs, 0, false);
        let mut existing: HashSet<String> = HashSet::new();
        existing.insert(WorkloadSpec::proc_root(proc));
        for p in s.dir_paths(proc) {
            let parent = p[..p.rfind('/').unwrap()].to_string();
            prop_assert!(existing.contains(&parent), "{p} created before its parent");
            existing.insert(p);
        }
    }

    /// Removal is the exact reverse of creation, so it is also executable
    /// (children before parents).
    #[test]
    fn removal_reverses_creation(fanout in 2usize..12, dirs in 1usize..80) {
        let s = spec(4, fanout, dirs, 0, false);
        let creates: Vec<String> = s
            .ops_for(1, Phase::DirCreate)
            .into_iter()
            .map(|o| match o {
                NativeOp::Mkdir(p) => p,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let mut removes: Vec<String> = s
            .ops_for(1, Phase::DirRemove)
            .into_iter()
            .map(|o| match o {
                NativeOp::Rmdir(p) => p,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        removes.reverse();
        prop_assert_eq!(creates, removes);
    }

    /// File paths are unique within a process and disjoint across
    /// processes, in both placement modes.
    #[test]
    fn file_paths_unique_and_disjoint(
        procs in 2usize..6,
        dirs in 1usize..30,
        files in 1usize..60,
        shared in any::<bool>(),
    ) {
        let s = spec(procs, 10, dirs, files, shared);
        let mut all: HashSet<String> = HashSet::new();
        for p in 0..procs {
            let mine = s.file_paths(p);
            prop_assert_eq!(mine.len(), files);
            for f in mine {
                prop_assert!(all.insert(f.clone()), "duplicate file path {f}");
            }
        }
    }

    /// Shared mode puts every file directly under /mdtest; unique mode puts
    /// every file strictly inside the owner's subtree.
    #[test]
    fn placement_mode_controls_parents(
        procs in 1usize..5,
        files in 1usize..40,
        shared in any::<bool>(),
    ) {
        let s = spec(procs, 10, 12, files, shared);
        for p in 0..procs {
            for f in s.file_paths(p) {
                if shared {
                    let parent = &f[..f.rfind('/').unwrap()];
                    prop_assert_eq!(parent, "/mdtest");
                } else {
                    let root = WorkloadSpec::proc_root(p);
                    prop_assert!(f.starts_with(&format!("{root}/")), "{f} outside {root}");
                }
            }
        }
    }

    /// Every phase produces exactly the configured number of operations.
    #[test]
    fn phase_op_counts(dirs in 1usize..40, files in 1usize..40) {
        let s = spec(3, 10, dirs, files, false);
        for phase in Phase::ALL {
            let expect = if matches!(phase, Phase::DirCreate | Phase::DirStat | Phase::DirRemove) {
                dirs
            } else {
                files
            };
            prop_assert_eq!(s.ops_for(0, phase).len(), expect, "{:?}", phase);
        }
    }
}
