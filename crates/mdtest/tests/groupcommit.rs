//! Property test: group commit is invisible to the namespace.
//!
//! A batched run must finish with a replicated namespace whose *content*
//! digest equals the unbatched run's — group commit may change message
//! counts, zxid assignment and timing, but never which znodes exist or what
//! they hold. (The digest is content-only: it ignores zxids and timestamps,
//! which legitimately differ between write-path configurations.)
//!
//! `run_mdtest_report` additionally asserts all replicas of *each* run end
//! bit-identical, so this test also re-checks replication under batching.

use proptest::prelude::*;

use dufs_mdtest::scenario::{run_mdtest_report, MdtestConfig, MdtestSystem};
use dufs_mdtest::{Phase, WorkloadSpec};
use dufs_zab::ZabConfig;

fn spec(processes: usize) -> WorkloadSpec {
    WorkloadSpec {
        processes,
        fanout: 10,
        dirs_per_proc: 8,
        files_per_proc: 8,
        phases: vec![Phase::DirCreate, Phase::FileCreate, Phase::FileStat, Phase::FileRemove],
        shared_dir: false,
    }
}

proptest! {
    // Each case is a pair of full simulation runs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn batched_namespace_digest_equals_unbatched(
        seed in 0u64..1000,
        max_batch in 2usize..33,
        flush_ms in 1u64..9,
    ) {
        let system = MdtestSystem::DufsLustre { zk_servers: 3, backends: 2 };
        let base = run_mdtest_report(&MdtestConfig::new(system, spec(8), seed));
        let batched = run_mdtest_report(&MdtestConfig {
            zab: ZabConfig::batched(max_batch, flush_ms),
            ..MdtestConfig::new(system, spec(8), seed)
        });

        prop_assert_eq!(base.namespace_nodes, batched.namespace_nodes,
            "batching must not change how many znodes exist");
        prop_assert_eq!(base.namespace_digest, batched.namespace_digest,
            "batching must not change namespace content (batch {} / flush {} ms)",
            max_batch, flush_ms);
        // The workload itself completed identically.
        let ops = |r: &dufs_mdtest::MdtestReport| -> u64 { r.phases.iter().map(|p| p.ops).sum() };
        prop_assert_eq!(ops(&base), ops(&batched));
    }
}
