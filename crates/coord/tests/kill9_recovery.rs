//! Out-of-process crash recovery: real `coord_server` processes, real
//! `SIGKILL`, no in-process shortcuts. The harness
//!
//! 1. computes a control digest by running an idempotent workload against
//!    an uncrashed in-process ensemble,
//! 2. spawns three `coord_server` children (durable, loopback),
//! 3. kills one member with `SIGKILL` mid-workload and keeps writing
//!    through the survivors,
//! 4. kills the *entire* ensemble, respawns all three over the same WAL
//!    directories — on fresh ports, because the durable identity is the
//!    directory, not the address — and
//! 5. asserts that acknowledged data survived and that, after an
//!    idempotent repair pass, the recovered namespace digest equals the
//!    uncrashed control.
//!
//! Every workload op treats `NodeExists`/`NoNode` as success, so
//! at-least-once retries through kills cannot diverge the final tree.

#![cfg(unix)]

use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use bytes::Bytes;

use dufs_coord::shard::{ShardConfig, DEFAULT_VNODES, SHARD_CONFIG_PATH};
use dufs_coord::sharded::{txn_decision_path, ShardedClient};
use dufs_coord::tcp::{remote_status, TcpTransport, TcpZkClient};
use dufs_coord::{ClientOptions, ClusterBuilder, Watch, ZkClient};
use dufs_zkstore::{CreateMode, MultiOp, ZkError};

const DIRS: usize = 3;
const FILES: usize = 4;
const CANARY: &[u8] = b"acked-before-any-kill";

// ------------------------------------------------------------ process tools

/// `n` distinct free loopback ports (held simultaneously while probing so
/// they cannot collide with each other).
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let held: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("probe port")).collect();
    held.iter().map(|l| l.local_addr().unwrap()).collect()
}

fn spawn_member(me: usize, addrs: &[SocketAddr], wal_root: &Path) -> Child {
    let peers = addrs.iter().map(ToString::to_string).collect::<Vec<_>>().join(",");
    Command::new(env!("CARGO_BIN_EXE_coord_server"))
        .arg("--me")
        .arg(me.to_string())
        .arg("--peers")
        .arg(peers)
        .arg("--wal-dir")
        .arg(wal_root.join(format!("server-{me}")))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coord_server")
}

/// SIGKILL — no shutdown hooks, no flushes, the real failure mode.
fn kill9(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

fn await_leader(addrs: &[SocketAddr], timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        for (i, a) in addrs.iter().enumerate() {
            if let Some(s) = remote_status(*a, Duration::from_secs(2)) {
                if s.is_leader {
                    return i;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("no leader within {timeout:?} among {addrs:?}");
}

fn session(addrs: &[SocketAddr]) -> TcpZkClient {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match ZkClient::establish(TcpTransport::new(addrs.to_vec())) {
            Ok(c) => return c,
            Err(_) => {
                assert!(Instant::now() < deadline, "could not open a session");
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }
}

// ------------------------------------------------------- idempotent workload

/// Retry `f` through transport-level failures until the op lands (or a
/// real application error surfaces). This is the harness's outer retry
/// loop — [`ZkClient::request`]'s 8 internal attempts are not enough to
/// bridge a whole-ensemble respawn.
fn until_ok(mut f: impl FnMut() -> Result<(), ZkError>) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match f() {
            Ok(()) => return,
            Err(ZkError::ConnectionLoss | ZkError::Net | ZkError::SessionExpired) => {
                assert!(Instant::now() < deadline, "op never landed");
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("workload op failed: {e:?}"),
        }
    }
}

fn idem_create(c: &mut TcpZkClient, path: &str, data: &[u8]) {
    let data = Bytes::copy_from_slice(data);
    until_ok(|| match c.create(path, data.clone(), CreateMode::Persistent) {
        Ok(_) | Err(ZkError::NodeExists) => Ok(()),
        Err(e) => Err(e),
    });
}

fn idem_set(c: &mut TcpZkClient, path: &str, data: &[u8]) {
    let data = Bytes::copy_from_slice(data);
    until_ok(|| match c.set_data(path, data.clone(), None) {
        Ok(_) => Ok(()),
        Err(e) => Err(e),
    });
}

fn idem_delete(c: &mut TcpZkClient, path: &str) {
    until_ok(|| match c.delete(path, None) {
        Ok(()) | Err(ZkError::NoNode) => Ok(()),
        Err(e) => Err(e),
    });
}

/// First half: directory tree + canary. Runs before any kill.
fn phase1(c: &mut TcpZkClient) {
    for d in 0..DIRS {
        idem_create(c, &format!("/d{d}"), b"");
    }
    idem_create(c, "/canary", CANARY);
}

/// Second half: file churn. Runs while members are being killed, and again
/// as the post-recovery repair pass.
fn phase2(c: &mut TcpZkClient) {
    for d in 0..DIRS {
        for f in 0..FILES {
            idem_create(c, &format!("/d{d}/f{f}"), format!("content-{d}-{f}").as_bytes());
        }
    }
    for d in 0..DIRS {
        idem_set(c, &format!("/d{d}/f0"), format!("v2-{d}").as_bytes());
        idem_delete(c, &format!("/d{d}/f1"));
    }
}

/// Wait until every replica reports the same internal tree digest — the
/// replication-consistency check *within* one ensemble.
fn await_convergence(c: &mut TcpZkClient, addrs: &[SocketAddr]) {
    until_ok(|| c.sync().map(|_| ()));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s: Vec<_> =
            addrs.iter().filter_map(|a| remote_status(*a, Duration::from_secs(2))).collect();
        if s.len() == addrs.len() && s.iter().all(|x| x.digest == s[0].digest) {
            return;
        }
        assert!(Instant::now() < deadline, "replicas never converged: {s:?}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Client-side digest over (path, data) of the whole namespace, read through
/// an ordinary session. Unlike the server's internal tree digest this
/// ignores stat counters (`version`, `cversion`), which is the point: under
/// at-least-once delivery a retried `set_data` bumps `version` twice, so
/// counter-inclusive digests are not comparable across *separate runs* —
/// only the acked contents are.
fn content_digest(c: &mut TcpZkClient) -> u64 {
    fn eat(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    let mut acc: u64 = 0;
    let mut count: u64 = 0;
    let mut stack = vec![String::from("/")];
    while let Some(path) = stack.pop() {
        let mut got = None;
        until_ok(|| {
            got = Some(c.get_data(&path, Watch::None)?);
            Ok(())
        });
        let (data, _) = got.unwrap();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        eat(&mut h, path.as_bytes());
        eat(&mut h, &data);
        acc = acc.wrapping_add(h);
        count += 1;

        let mut kids = None;
        until_ok(|| {
            kids = Some(c.get_children(&path, Watch::None)?.0);
            Ok(())
        });
        for k in kids.unwrap() {
            stack.push(if path == "/" { format!("/{k}") } else { format!("{path}/{k}") });
        }
    }
    acc.wrapping_add(count)
}

// ------------------------------------------------------------------ the test

#[test]
fn kill9_one_member_then_whole_ensemble_and_recover() {
    // 1. Uncrashed control, same ops, in-process.
    let control = ClusterBuilder::new().voters(3).tcp();
    control.await_leader(Duration::from_secs(20)).expect("control leader");
    let control_digest = {
        let mut c = control.client(ClientOptions::at(0).with_failover()).unwrap();
        phase1(&mut c);
        phase2(&mut c);
        await_convergence(&mut c, control.addrs());
        content_digest(&mut c)
    };
    control.shutdown();

    // 2. The real thing: three OS processes, durable.
    let wal_root = std::env::temp_dir().join(format!("dufs-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);
    let addrs = free_addrs(3);
    let mut procs: Vec<Child> = (0..3).map(|i| spawn_member(i, &addrs, &wal_root)).collect();
    await_leader(&addrs, Duration::from_secs(60));

    let mut c = session(&addrs);
    phase1(&mut c);
    until_ok(|| c.sync().map(|_| ())); // canary is acked + synced from here on

    // 3. SIGKILL one member mid-workload; the survivors must keep serving.
    kill9(&mut procs[0]);
    phase2(&mut c);
    let survivor = remote_status(addrs[1], Duration::from_secs(5))
        .or_else(|| remote_status(addrs[2], Duration::from_secs(5)))
        .expect("survivors answer");
    assert!(survivor.alive);

    // 4. SIGKILL the whole ensemble. Nothing is left running.
    for p in procs.iter_mut() {
        kill9(p);
    }
    for a in &addrs {
        assert!(
            remote_status(*a, Duration::from_millis(500)).is_none(),
            "a killed server answered a probe"
        );
    }

    // 5. Respawn ALL members over the same WAL directories, fresh ports.
    let addrs2 = free_addrs(3);
    let mut procs: Vec<Child> = (0..3).map(|i| spawn_member(i, &addrs2, &wal_root)).collect();
    await_leader(&addrs2, Duration::from_secs(60));

    let mut c2 = session(&addrs2);
    // Acked-before-kill data must have survived bit-exactly.
    let (data, _) = loop {
        match c2.get_data("/canary", Watch::None) {
            Ok(v) => break v,
            Err(ZkError::ConnectionLoss | ZkError::Net) => {
                std::thread::sleep(Duration::from_millis(100))
            }
            Err(e) => panic!("canary lost after kill -9 recovery: {e:?}"),
        }
    };
    assert_eq!(&data[..], CANARY, "canary data corrupted by recovery");

    // Repair pass (covers ops in flight at kill time). All replicas must
    // re-converge on one internal digest, and the namespace *contents* must
    // equal the uncrashed control's.
    phase1(&mut c2);
    phase2(&mut c2);
    await_convergence(&mut c2, &addrs2);
    let recovered = content_digest(&mut c2);
    assert_eq!(recovered, control_digest, "recovered namespace differs from the uncrashed control");

    for p in procs.iter_mut() {
        kill9(p);
    }
    let _ = std::fs::remove_dir_all(&wal_root);
}

// ----------------------------------------------- sharded 2PC kill -9 recovery

/// Open one session per single-member shard and assemble a routed client.
/// Writes the shard config first if asked (bootstrap vs reconnect).
fn sharded_session(shard_addrs: &[SocketAddr], bootstrap: bool) -> ShardedClient<TcpTransport> {
    let config = ShardConfig { epoch: 1, shards: shard_addrs.len() as u32, vnodes: DEFAULT_VNODES };
    let mut sessions = Vec::new();
    for a in shard_addrs {
        let mut s = session(&[*a]);
        if bootstrap {
            idem_create(&mut s, SHARD_CONFIG_PATH, &config.encode());
        }
        sessions.push(s);
    }
    ShardedClient::connect(sessions).expect("assemble sharded client")
}

fn sharded_seed(c: &mut ShardedClient<TcpTransport>, src: &str) {
    for d in 0..DIRS {
        for f in 0..FILES {
            let p = format!("/s{d}/f{f}");
            until_ok(|| match c.create(&p, Bytes::copy_from_slice(p.as_bytes())) {
                Ok(_) | Err(ZkError::NodeExists) => Ok(()),
                Err(e) => Err(e),
            });
        }
    }
    until_ok(|| match c.create(src, Bytes::from_static(b"victim-payload")) {
        Ok(_) | Err(ZkError::NodeExists) => Ok(()),
        Err(e) => Err(e),
    });
}

/// A `(src, dst)` pair on different shards — pure ring arithmetic, so the
/// control and crash runs agree on it.
fn sharded_pair(c: &ShardedClient<TcpTransport>) -> (String, String) {
    let src = "/mv-src/victim".to_string();
    for i in 0..10_000 {
        let dst = format!("/mv-dst{i}/moved");
        if c.route(&dst) != c.route(&src) {
            return (src, dst);
        }
    }
    panic!("no cross-shard pair");
}

/// `kill -9` one shard's (only, hence leader) member after the prepares
/// and the coordinator's durable `C` record but before any commit lands;
/// respawn it over the same WAL on a fresh port; let a brand-new session's
/// recovery sweep finish the commit; check the namespace digest against an
/// uncrashed in-process control.
#[test]
fn sharded_rename_commit_survives_kill9_of_a_shard_leader() {
    // 1. Uncrashed control: same workload, commit goes through undisturbed.
    let control = ClusterBuilder::new().voters(1).shards(2).sharded_tcp();
    assert!(control.await_leaders(Duration::from_secs(30)), "control leaders");
    let control_digest = {
        let mut c = control.client(ClientOptions::at(0).with_failover()).unwrap();
        let (src, dst) = sharded_pair(&c);
        sharded_seed(&mut c, &src);
        c.rename(&src, &dst).unwrap();
        c.user_digest().unwrap()
    };
    control.shutdown();

    // 2. Two single-member shard ensembles as real OS processes.
    let wal_root = std::env::temp_dir().join(format!("dufs-2pc-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);
    let addrs = free_addrs(2);
    let mut procs: Vec<Child> = (0..2)
        .map(|k| spawn_member(0, &addrs[k..=k], &wal_root.join(format!("shard-{k}"))))
        .collect();
    for a in &addrs {
        await_leader(&[*a], Duration::from_secs(60));
    }

    let mut c = sharded_session(&addrs, true);
    let (src, dst) = sharded_pair(&c);
    sharded_seed(&mut c, &src);

    // 3. Prepare both slices of the rename, then SIGKILL the destination
    //    shard's member with the transaction undecided.
    let (data, stat) = c.get_data(&src).unwrap();
    let slices = vec![
        (
            c.route(&src),
            vec![
                MultiOp::Check { path: src.clone(), version: Some(stat.version) },
                MultiOp::Delete { path: src.clone(), version: Some(stat.version) },
            ],
        ),
        (
            c.route(&dst),
            vec![MultiOp::Create { path: dst.clone(), data, mode: CreateMode::Persistent }],
        ),
    ];
    let mut participants: Vec<u32> = slices.iter().map(|&(s, _)| s as u32).collect();
    participants.sort_unstable();
    let txn_id = c.mint_txn_id();
    for (s, ops) in &slices {
        c.txn_prepare_on(*s, txn_id, ops.clone(), participants.clone()).unwrap();
    }
    // The coordinator durably records its commit verdict — this is the
    // point of no return — and then "dies" along with the shard below.
    c.shard_client(participants[0] as usize)
        .create_path(&txn_decision_path(txn_id), Bytes::from_static(b"C"), CreateMode::Persistent)
        .unwrap();
    let dst_shard = c.route(&dst);
    kill9(&mut procs[dst_shard]);
    assert!(
        remote_status(addrs[dst_shard], Duration::from_millis(500)).is_none(),
        "killed shard answered a probe"
    );

    // 4. Respawn over the same WAL on a fresh port; the prepared slice and
    //    its fence must have been recovered from the log.
    let fresh = free_addrs(1);
    let mut addrs2 = addrs.clone();
    addrs2[dst_shard] = fresh[0];
    procs[dst_shard] = spawn_member(0, &fresh, &wal_root.join(format!("shard-{dst_shard}")));
    await_leader(&fresh, Duration::from_secs(60));

    // 5. A brand-new session (never party to the prepare) sweeps the
    //    parked markers; the durable `C` record makes it finish the commit.
    let mut c2 = sharded_session(&addrs2, false);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match c2.recover_txns() {
            Ok(n) if n >= 1 => break,
            Ok(_) | Err(ZkError::ConnectionLoss | ZkError::Net | ZkError::SessionExpired) => {
                assert!(Instant::now() < deadline, "recovery sweep never resolved the txn");
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("recovery sweep failed: {e:?}"),
        }
    }
    assert_eq!(c2.exists(&src).unwrap(), None, "rename source survived the commit");
    assert_eq!(&c2.get_data(&dst).unwrap().0[..], b"victim-payload");

    let recovered = c2.user_digest().unwrap();
    assert_eq!(
        recovered, control_digest,
        "recovered sharded namespace differs from the uncrashed control"
    );

    for p in procs.iter_mut() {
        kill9(p);
    }
    let _ = std::fs::remove_dir_all(&wal_root);
}
