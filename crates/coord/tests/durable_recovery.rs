//! Durability safety: a WAL-backed coordination server must never lose an
//! acknowledged transaction across crash/restart cycles — even when the
//! storage layer injects torn tails, partial fsyncs, bit flips and short
//! reads. An op counts as "acked" only once its client response was
//! released (the server's group fsync succeeded); everything else may
//! vanish, but nothing acked ever may.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use dufs_coord::{CoordServer, ServerIn, ServerOut, ZkRequest, ZkResponse};
use dufs_wal::{FaultConfig, FaultyStorage, MemStorage};
use dufs_zab::{EnsembleConfig, PeerId, ZabConfig};
use dufs_zkstore::CreateMode;

fn new_durable_server(seed: u64) -> CoordServer {
    // The very first open can hit an injected fsync failure (the storage is
    // hostile from byte zero); nothing durable exists yet, so retrying with
    // a fresh store is the honest equivalent of "reformat and start over".
    for attempt in 0..64 {
        let storage = FaultyStorage::new(
            MemStorage::new(),
            seed.wrapping_mul(1_000_003).wrapping_add(attempt),
            FaultConfig::default(),
        );
        if let Ok((s, _)) = CoordServer::new_durable(
            PeerId(0),
            EnsembleConfig::of_size(1),
            ZabConfig::default(),
            Box::new(storage),
        ) {
            return s;
        }
    }
    panic!("could not open a durable server in 64 attempts");
}

/// Restart until recovery succeeds (injected faults can fail a reopen; the
/// server stays fenced and the operator — us — retries).
fn restart_until_up(s: &mut CoordServer) {
    for _ in 0..64 {
        let _ = s.on_restart(0);
        if !s.is_fenced() {
            return;
        }
    }
    panic!("server never recovered");
}

fn acked_create(out: &[ServerOut]) -> bool {
    out.iter().any(|o| {
        matches!(o, ServerOut::Client { resp, .. }
            if matches!(resp, ZkResponse::Created { .. }))
    })
}

/// One full adversarial run: random creates, random crash points, fault-
/// injecting storage. Returns nothing; panics on any safety violation.
fn torture(seed: u64, ops: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = new_durable_server(seed);
    let mut acked: Vec<String> = Vec::new();
    let mut now_ns: u64 = 1_000_000;

    for i in 0..ops {
        now_ns += 1_000_000;
        if rng.random::<f64>() < 0.08 {
            s.on_crash();
            restart_until_up(&mut s);
            for path in &acked {
                assert!(
                    s.tree().get_data(path).is_ok(),
                    "seed {seed}: acked node {path} lost after crash #{i}"
                );
            }
        }
        let path = format!("/n{i:05}");
        let out = s.handle(
            now_ns,
            ServerIn::Client {
                client: 1,
                req_id: i as u64,
                session: 0,
                req: ZkRequest::Create {
                    path: path.clone(),
                    data: Bytes::from(format!("payload-{i}").into_bytes()),
                    mode: CreateMode::Persistent,
                },
            },
        );
        if s.is_fenced() {
            // The WAL failed mid-op: the response (if any) was withheld, so
            // the op is NOT acked. Restart from disk and carry on.
            restart_until_up(&mut s);
        } else if acked_create(&out) {
            acked.push(path);
        }
    }

    // Final verdict after one last crash cycle.
    s.on_crash();
    restart_until_up(&mut s);
    for path in &acked {
        let (data, _) = s
            .tree()
            .get_data(path)
            .unwrap_or_else(|e| panic!("seed {seed}: acked node {path} lost at end: {e}"));
        let i: usize = path[2..].parse().unwrap();
        assert_eq!(&data[..], format!("payload-{i}").as_bytes(), "seed {seed}: payload mangled");
    }
    // No phantom state: every surviving node is one we actually submitted.
    let survivors = s.tree().node_count();
    assert!(survivors <= ops + 1, "seed {seed}: {survivors} nodes from {ops} submissions");
}

#[test]
fn no_acked_txn_is_ever_lost_across_200_seeds() {
    for seed in 0..200 {
        torture(seed, 120);
    }
}

#[test]
fn checkpoints_under_faults_preserve_acked_state() {
    // Enough traffic to cross the server's checkpoint threshold several
    // times, so recovery exercises snapshot + log-tail replay (not just
    // log replay) while faults fire.
    torture(1_000_001, 2_600);
}

#[test]
fn clean_restart_resumes_from_disk_and_keeps_serving() {
    let (mut s, _) = CoordServer::new_durable(
        PeerId(0),
        EnsembleConfig::of_size(1),
        ZabConfig::default(),
        Box::new(MemStorage::new()),
    )
    .expect("pristine storage opens");
    let mk = |s: &mut CoordServer, i: u32| {
        let out = s.handle(
            1_000_000 + u64::from(i),
            ServerIn::Client {
                client: 1,
                req_id: u64::from(i),
                session: 0,
                req: ZkRequest::Create {
                    path: format!("/k{i}"),
                    data: Bytes::from_static(b"v"),
                    mode: CreateMode::Persistent,
                },
            },
        );
        assert!(acked_create(&out), "create {i} acked");
    };
    for i in 0..50 {
        mk(&mut s, i);
    }
    let digest = s.tree().digest();
    assert!(s.wal_sync_count() > 0, "durable mode actually fsyncs");

    s.on_crash();
    let _ = s.on_restart(2_000_000);
    assert!(!s.is_fenced());
    assert_eq!(s.tree().digest(), digest, "cold start restores the exact tree");

    // Still a working server: new writes land and survive another cycle.
    for i in 50..60 {
        mk(&mut s, i);
    }
    let digest2 = s.tree().digest();
    s.on_crash();
    let _ = s.on_restart(3_000_000);
    assert_eq!(s.tree().digest(), digest2);
}
