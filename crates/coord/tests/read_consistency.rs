//! Property: [`ReadConsistency::SyncThenLocal`] gives read-your-writes.
//!
//! A session that writes and then reads must observe its own acked writes —
//! even while other clients mutate the namespace concurrently, and even
//! when the server it was reading from dies and the session fails over to
//! a replica that may lag the leader. The barrier that makes this true is
//! the tentpole's no-op proposal through ZAB: `SyncThenLocal` inserts it
//! exactly when staleness could be observed (after own writes, after a
//! reconnect), so the property must hold on both the channel transport and
//! the TCP transport.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;

use dufs_coord::{ClientOptions, ClusterBuilder, ReadConsistency, Watch};
use dufs_zkstore::CreateMode;

/// Cluster tests use real-time election timers; running several ensembles
/// concurrently on a loaded machine makes watchdogs flap. Serialize.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
fn serial() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn payload(tag: u8, round: usize) -> Bytes {
    Bytes::from(format!("payload-{tag}-{round}").into_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Channel transport: the reader session starts on an OBSERVER (the
    /// replica most likely to lag), writes through it, has it crashed out
    /// from under itself mid-round, and must still see every one of its own
    /// acked writes after failing over — while a second session hammers the
    /// namespace from another member.
    #[test]
    fn sync_then_local_reads_own_writes_across_thread_failover(
        tags in proptest::collection::vec(any::<u8>(), 2..5),
    ) {
        let _g = serial();
        let cluster = Arc::new(ClusterBuilder::new().voters(3).observers(1).threads());
        cluster.await_leader(Duration::from_secs(15)).expect("leader");
        let observer = 3;

        let mut c = cluster
            .client(
                ClientOptions::at(observer)
                    .with_failover()
                    .with_consistency(ReadConsistency::SyncThenLocal),
            )
            .unwrap();
        c.set_timeout(Duration::from_millis(500));

        // Concurrent mutator: unrelated churn from another member, so the
        // reader's barrier has real replication traffic to race against.
        let stop = Arc::new(AtomicBool::new(false));
        let mutator = {
            let stop = stop.clone();
            let cluster = cluster.clone();
            std::thread::spawn(move || {
                let mut m = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let _ = m.create(
                        &format!("/noise-{i}"),
                        Bytes::from_static(b"n"),
                        CreateMode::Persistent,
                    );
                    i += 1;
                }
            })
        };

        let mut written: Vec<(String, Bytes, u8)> = Vec::new();
        for (round, &tag) in tags.iter().enumerate() {
            let path = format!("/ryw-{round}");
            let data = payload(tag, round);
            c.create(&path, data.clone(), CreateMode::Persistent).unwrap();
            written.push((path, data, tag));

            // Every other round, kill the replica the session sits on: the
            // read below must fail over and STILL see the write.
            let crashed = round % 2 == 0;
            if crashed {
                cluster.crash(observer);
            }
            for (p, want, _) in &written {
                let (got, _) = c.get_data(p, Watch::None).unwrap_or_else(|e| {
                    panic!("own acked write {p} invisible after failover: {e:?}")
                });
                prop_assert_eq!(&got, want, "stale read of {}", p);
            }
            if crashed {
                cluster.restart(observer);
            }
        }

        stop.store(true, Ordering::Relaxed);
        mutator.join().expect("mutator");
        Arc::try_unwrap(cluster).ok().expect("all handles dropped").shutdown();
    }

    /// TCP transport: same property over real sockets. A member is stopped
    /// for good (kill-the-process failure model — no restart), so the
    /// session's remaining reads all come from a replica the original
    /// barrier never touched.
    #[test]
    fn sync_then_local_reads_own_writes_across_tcp_failover(
        tags in proptest::collection::vec(any::<u8>(), 2..4),
    ) {
        let _g = serial();
        let mut cluster = ClusterBuilder::new().voters(3).tcp();
        let leader = cluster.await_leader(Duration::from_secs(20)).expect("leader");
        let start = (0..3).find(|&i| i != leader).unwrap();

        let mut c = cluster
            .client(
                ClientOptions::at(start)
                    .with_failover()
                    .with_consistency(ReadConsistency::SyncThenLocal),
            )
            .unwrap();
        c.set_timeout(Duration::from_millis(500));
        let stop = Arc::new(AtomicBool::new(false));
        let mutator = {
            let stop = stop.clone();
            let mut m = cluster.client(ClientOptions::at(leader).with_failover()).unwrap();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let _ = m.create(
                        &format!("/noise-{i}"),
                        Bytes::from_static(b"n"),
                        CreateMode::Persistent,
                    );
                    i += 1;
                }
            })
        };

        // Phase 1: write + read-back while the home server is alive.
        let mut written: Vec<(String, Bytes)> = Vec::new();
        for (round, &tag) in tags.iter().enumerate() {
            let path = format!("/ryw-{round}");
            let data = payload(tag, round);
            c.create(&path, data.clone(), CreateMode::Persistent).unwrap();
            let (got, _) = c.get_data(&path, Watch::None).unwrap();
            prop_assert_eq!(&got, &data);
            written.push((path, data));
        }

        // Phase 2: the home server dies for good; every prior acked write
        // must be observed through whichever member the session lands on.
        cluster.stop(start);
        for (p, want) in &written {
            let (got, _) = c.get_data(p, Watch::None).unwrap_or_else(|e| {
                panic!("own acked write {p} invisible after tcp failover: {e:?}")
            });
            prop_assert_eq!(&got, want, "stale read of {} after failover", p);
        }
        // And the session still gives RYW for fresh writes post-failover.
        c.create("/ryw-post", Bytes::from_static(b"post"), CreateMode::Persistent).unwrap();
        let (got, _) = c.get_data("/ryw-post", Watch::None).unwrap();
        prop_assert_eq!(&got[..], b"post");

        stop.store(true, Ordering::Relaxed);
        mutator.join().expect("mutator");
        cluster.shutdown();
    }
}
