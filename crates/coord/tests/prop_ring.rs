//! Property tests for the consistent-hash ring that places the namespace
//! across shards (`dufs_coord::shard`). Three properties carry the sharded
//! design:
//!
//! 1. **Balance** — with virtual nodes, no shard owns much more than its
//!    fair share of a realistic key population.
//! 2. **Determinism** — placement is a pure function of the config; two
//!    clients that read the same `ShardConfig` route identically.
//! 3. **Minimal remap** — growing or shrinking the ring by one shard moves
//!    only ~1/N of the keys; everything else stays put (the property that
//!    makes online resharding tractable at all).

use proptest::prelude::*;

use dufs_coord::shard::{parent_dir, DEFAULT_VNODES};
use dufs_coord::{HashRing, ShardConfig};

/// A directory-shaped key population: `/dir<i>` parents, the shape the ring
/// actually routes (placement is by parent directory).
fn keys(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("/dir{i}")).collect()
}

#[test]
fn balance_within_15_percent_over_1k_keys() {
    // Shard counts of the bench sweep. At 1000 sampled keys the sampling
    // noise alone is ~sqrt(1000/N)/(1000/N) per shard, so the 15% bound is
    // meaningful up to a handful of shards and would need more keys beyond.
    for shards in [2u32, 3, 4] {
        let ring = HashRing::new(shards, DEFAULT_VNODES);
        let keys = keys(1000);
        let mut counts = vec![0usize; shards as usize];
        for k in &keys {
            counts[ring.route_key(k) as usize] += 1;
        }
        let fair = keys.len() as f64 / f64::from(shards);
        for (shard, &c) in counts.iter().enumerate() {
            let skew = (c as f64 - fair).abs() / fair;
            assert!(
                skew <= 0.15,
                "shard {shard}/{shards} owns {c} of {} keys ({:.1}% off fair share)",
                keys.len(),
                skew * 100.0
            );
        }
    }
}

proptest! {
    /// Placement is deterministic: independently built rings from the same
    /// config agree on every key, and sibling paths colocate with their
    /// parent's listing.
    #[test]
    fn placement_is_deterministic_and_parent_grouped(
        shards in 1u32..9,
        vnodes in 1u32..129,
        dirs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..8).prop_map(|v| {
                v.into_iter().map(|b| (b'a' + (b % 26)) as char).collect::<String>()
            }),
            1..20,
        ),
    ) {
        let a = HashRing::new(shards, vnodes);
        let b = ShardConfig { epoch: 1, shards, vnodes }.ring();
        for d in &dirs {
            let dir = format!("/{d}");
            let child = format!("{dir}/leaf");
            prop_assert_eq!(a.route_key(&dir), b.route_key(&dir));
            // All single-path ops on a child route to the shard owning the
            // parent's child listing.
            prop_assert_eq!(a.route_path(&child), a.route_children(&dir));
            prop_assert_eq!(parent_dir(&child), dir.as_str());
        }
    }

    /// Adding one shard moves strictly fewer than 2/N of the keys, and
    /// every key that moves lands on the new shard — nothing reshuffles
    /// between surviving shards. Removing the top shard is the exact
    /// mirror (the ring is a pure function of the shard count).
    #[test]
    fn join_and_leave_remap_is_minimal(n in 2u32..9) {
        let before = HashRing::new(n, DEFAULT_VNODES);
        let after = HashRing::new(n + 1, DEFAULT_VNODES);
        let keys = keys(1000);
        let mut moved = 0usize;
        for k in &keys {
            let (was, is) = (before.route_key(k), after.route_key(k));
            if was != is {
                moved += 1;
                prop_assert_eq!(
                    is, n,
                    "key {} reshuffled between surviving shards {} -> {}", k, was, is
                );
            }
        }
        let bound = (2.0 / f64::from(n + 1)) * keys.len() as f64;
        prop_assert!(
            (moved as f64) < bound,
            "{moved} of {} keys moved on join; bound {bound:.0}", keys.len()
        );
    }
}
