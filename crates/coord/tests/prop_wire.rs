//! Codec-robustness property tests for the coordination-layer wire
//! messages — the companion of `crates/net/tests/prop_frame.rs`, one layer
//! up: every message type that crosses a socket must round-trip bit-exactly
//! through its codec, and corrupt bytes (truncations, bit flips, random
//! garbage) must produce a `WireError`, never a panic and never a silently
//! wrong value.

use bytes::Bytes;
use proptest::prelude::*;

use dufs_coord::runtime::ServerStatus;
use dufs_coord::watch::WatchEventKind;
use dufs_coord::wire::{get_zab_msg, put_zab_msg};
use dufs_coord::{
    ClientFrame, CoordMsg, LeaseGrant, ServerFrame, Txn, TxnOp, WatchNotification, ZkRequest,
    ZkResponse,
};
use dufs_net::{Wire, WireCursor};
use dufs_zab::{PeerId, Vote, ZabMsg, Zxid};
use dufs_zkstore::{CreateMode, MultiOp, MultiResult, Stat, ZkError};

// ---------------------------------------------------------------- strategies

fn arb_string() -> BoxedStrategy<String> {
    collection::vec(any::<u8>(), 0..12)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + (b % 26)) as char).collect())
        .boxed()
}

fn arb_bytes() -> BoxedStrategy<Bytes> {
    collection::vec(any::<u8>(), 0..32).prop_map(Bytes::from).boxed()
}

fn arb_zxid() -> BoxedStrategy<Zxid> {
    (any::<u32>(), any::<u32>()).prop_map(|(e, c)| Zxid::new(e, c)).boxed()
}

fn arb_peer() -> BoxedStrategy<PeerId> {
    any::<u32>().prop_map(PeerId).boxed()
}

fn arb_mode() -> BoxedStrategy<CreateMode> {
    prop_oneof![
        Just(CreateMode::Persistent),
        Just(CreateMode::Ephemeral),
        Just(CreateMode::PersistentSequential),
        Just(CreateMode::EphemeralSequential),
    ]
    .boxed()
}

fn arb_version() -> BoxedStrategy<Option<u32>> {
    option::of(any::<u32>()).boxed()
}

fn arb_stat() -> BoxedStrategy<Stat> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<u32>(), any::<u32>()),
    )
        .prop_map(|((czxid, mzxid, pzxid, ctime_ns, mtime_ns), rest)| {
            let (version, cversion, ephemeral_owner, data_length, num_children) = rest;
            Stat {
                czxid,
                mzxid,
                pzxid,
                ctime_ns,
                mtime_ns,
                version,
                cversion,
                ephemeral_owner,
                data_length,
                num_children,
            }
        })
        .boxed()
}

fn arb_zk_error() -> BoxedStrategy<ZkError> {
    prop_oneof![
        Just(ZkError::NoNode),
        Just(ZkError::NodeExists),
        Just(ZkError::NotEmpty),
        Just(ZkError::BadVersion),
        Just(ZkError::NoChildrenForEphemerals),
        Just(ZkError::InvalidPath),
        Just(ZkError::SessionExpired),
        Just(ZkError::ConnectionLoss),
        Just(ZkError::RootReadOnly),
        Just(ZkError::CorruptSnapshot),
        Just(ZkError::Net),
    ]
    .boxed()
}

fn arb_multi_op() -> BoxedStrategy<MultiOp> {
    prop_oneof![
        (arb_string(), arb_bytes(), arb_mode()).prop_map(|(path, data, mode)| MultiOp::Create {
            path,
            data,
            mode
        }),
        (arb_string(), arb_version()).prop_map(|(path, version)| MultiOp::Delete { path, version }),
        (arb_string(), arb_bytes(), arb_version())
            .prop_map(|(path, data, version)| MultiOp::SetData { path, data, version }),
        (arb_string(), arb_version()).prop_map(|(path, version)| MultiOp::Check { path, version }),
    ]
    .boxed()
}

fn arb_multi_result() -> BoxedStrategy<MultiResult> {
    prop_oneof![
        arb_string().prop_map(MultiResult::Created),
        Just(MultiResult::Deleted),
        arb_stat().prop_map(MultiResult::Set),
        Just(MultiResult::Checked),
    ]
    .boxed()
}

fn arb_txn_op() -> BoxedStrategy<TxnOp> {
    prop_oneof![
        (arb_string(), arb_bytes(), arb_mode()).prop_map(|(path, data, mode)| TxnOp::Create {
            path,
            data,
            mode
        }),
        (arb_string(), arb_version()).prop_map(|(path, version)| TxnOp::Delete { path, version }),
        (arb_string(), arb_bytes(), arb_version())
            .prop_map(|(path, data, version)| TxnOp::SetData { path, data, version }),
        collection::vec(arb_multi_op(), 0..4).prop_map(|ops| TxnOp::Multi { ops }),
        any::<u64>().prop_map(|session| TxnOp::CreateSession { session }),
        any::<u64>().prop_map(|session| TxnOp::CloseSession { session }),
        Just(TxnOp::Noop),
    ]
    .boxed()
}

fn arb_txn() -> BoxedStrategy<Txn> {
    (any::<u64>(), arb_txn_op(), arb_peer(), any::<u64>(), any::<u64>())
        .prop_map(|(session, op, origin, tag, time_ns)| Txn { session, op, origin, tag, time_ns })
        .boxed()
}

fn arb_entries() -> BoxedStrategy<Vec<(Zxid, Txn)>> {
    collection::vec((arb_zxid(), arb_txn()), 0..4).boxed()
}

fn arb_vote() -> BoxedStrategy<Vote> {
    (arb_peer(), arb_zxid(), any::<u64>())
        .prop_map(|(candidate, candidate_zxid, round)| Vote { candidate, candidate_zxid, round })
        .boxed()
}

fn arb_zab_msg() -> BoxedStrategy<ZabMsg<Txn>> {
    prop_oneof![
        (arb_vote(), option::of(arb_peer()))
            .prop_map(|(vote, established)| ZabMsg::Notification { vote, established }),
        (arb_zxid(), any::<u32>()).prop_map(|(last_zxid, accepted_epoch)| ZabMsg::FollowerInfo {
            last_zxid,
            accepted_epoch
        }),
        (
            any::<u32>(),
            option::of((arb_zxid(), arb_bytes())),
            arb_entries(),
            arb_zxid(),
            any::<bool>(),
            any::<u32>(),
        )
            .prop_map(|(epoch, snapshot, entries, commit_to, reset, snap_chunks)| {
                ZabMsg::SyncLog { epoch, snapshot, entries, commit_to, reset, snap_chunks }
            }),
        (any::<u32>(), arb_zxid(), (any::<u32>(), any::<u32>(), any::<u32>()), arb_bytes())
            .prop_map(|(epoch, zxid, (seq, total, crc), data)| ZabMsg::SnapChunk {
                epoch,
                zxid,
                seq,
                total,
                crc,
                data
            }),
        any::<u32>().prop_map(|epoch| ZabMsg::AckSync { epoch }),
        (arb_zxid(), collection::vec(arb_txn(), 0..4))
            .prop_map(|(zxid, txns)| ZabMsg::Propose { zxid, txns }),
        arb_zxid().prop_map(|zxid| ZabMsg::Ack { zxid }),
        arb_zxid().prop_map(|zxid| ZabMsg::Commit { zxid }),
        (arb_zxid(), collection::vec(arb_txn(), 0..4))
            .prop_map(|(zxid, txns)| ZabMsg::Inform { zxid, txns }),
        (any::<u32>(), arb_zxid()).prop_map(|(epoch, commit_to)| ZabMsg::Ping { epoch, commit_to }),
        Just(ZabMsg::Pong),
    ]
    .boxed()
}

fn arb_coord_msg() -> BoxedStrategy<CoordMsg> {
    prop_oneof![
        arb_zab_msg().prop_map(CoordMsg::Zab),
        (any::<u64>(), arb_txn_op(), arb_peer(), any::<u64>())
            .prop_map(|(session, op, origin, tag)| CoordMsg::Forward { session, op, origin, tag }),
        any::<u64>().prop_map(|tag| CoordMsg::ForwardReject { tag }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(commit_to, age_ms)| CoordMsg::LeaseAuth { commit_to, age_ms }),
    ]
    .boxed()
}

fn arb_lease_grant() -> BoxedStrategy<LeaseGrant> {
    (any::<u32>(), any::<u32>()).prop_map(|(ttl_ms, epoch)| LeaseGrant { ttl_ms, epoch }).boxed()
}

fn arb_zk_request() -> BoxedStrategy<ZkRequest> {
    prop_oneof![
        Just(ZkRequest::Connect),
        Just(ZkRequest::CloseSession),
        (arb_string(), arb_bytes(), arb_mode()).prop_map(|(path, data, mode)| ZkRequest::Create {
            path,
            data,
            mode
        }),
        (arb_string(), arb_version())
            .prop_map(|(path, version)| ZkRequest::Delete { path, version }),
        (arb_string(), arb_bytes(), arb_version())
            .prop_map(|(path, data, version)| ZkRequest::SetData { path, data, version }),
        (arb_string(), any::<bool>()).prop_map(|(path, watch)| ZkRequest::GetData { path, watch }),
        (arb_string(), any::<bool>()).prop_map(|(path, watch)| ZkRequest::Exists { path, watch }),
        (arb_string(), any::<bool>())
            .prop_map(|(path, watch)| ZkRequest::GetChildren { path, watch }),
        arb_string().prop_map(|path| ZkRequest::GetChildrenData { path }),
        arb_string().prop_map(|path| ZkRequest::WarmChildren { path }),
        collection::vec(arb_multi_op(), 0..4).prop_map(|ops| ZkRequest::Multi { ops }),
        any::<bool>().prop_map(|coalesce| ZkRequest::Sync { coalesce }),
        Just(ZkRequest::Ping),
    ]
    .boxed()
}

fn arb_zk_response() -> BoxedStrategy<ZkResponse> {
    prop_oneof![
        any::<u64>().prop_map(|session| ZkResponse::Connected { session }),
        Just(ZkResponse::Closed),
        arb_string().prop_map(|path| ZkResponse::Created { path }),
        Just(ZkResponse::Deleted),
        arb_stat().prop_map(ZkResponse::Stat),
        (arb_bytes(), arb_stat()).prop_map(|(data, stat)| ZkResponse::Data { data, stat }),
        option::of(arb_stat()).prop_map(ZkResponse::ExistsResult),
        (collection::vec(arb_string(), 0..4), arb_stat())
            .prop_map(|(names, stat)| ZkResponse::Children { names, stat }),
        collection::vec((arb_string(), arb_bytes(), arb_stat()), 0..4)
            .prop_map(|entries| ZkResponse::ChildrenData { entries }),
        (collection::vec((arb_string(), arb_bytes(), arb_stat()), 0..4), arb_stat())
            .prop_map(|(entries, stat)| ZkResponse::WarmedChildren { entries, stat }),
        collection::vec(arb_multi_result(), 0..4).prop_map(ZkResponse::MultiResults),
        (any::<u64>(), any::<bool>())
            .prop_map(|(zxid, coalesced)| ZkResponse::Synced { zxid, coalesced }),
        (any::<u64>(), option::of(arb_lease_grant()))
            .prop_map(|(zxid, lease)| ZkResponse::Pong { zxid, lease }),
        arb_zk_error().prop_map(ZkResponse::Error),
    ]
    .boxed()
}

fn arb_watch() -> BoxedStrategy<WatchNotification> {
    (
        arb_string(),
        prop_oneof![
            Just(WatchEventKind::Created),
            Just(WatchEventKind::Deleted),
            Just(WatchEventKind::DataChanged),
            Just(WatchEventKind::ChildrenChanged),
        ],
    )
        .prop_map(|(path, event)| WatchNotification { path, event })
        .boxed()
}

fn arb_server_status() -> BoxedStrategy<ServerStatus> {
    (any::<bool>(), any::<u64>(), any::<u64>(), 0usize..100_000, any::<u64>(), any::<bool>())
        .prop_map(|(is_leader, last_applied, committed, node_count, digest, alive)| ServerStatus {
            is_leader,
            last_applied,
            committed,
            node_count,
            digest,
            alive,
        })
        .boxed()
}

fn arb_client_frame() -> BoxedStrategy<ClientFrame> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), arb_zk_request())
            .prop_map(|(req_id, session, req)| ClientFrame::Request { req_id, session, req }),
        any::<u64>().prop_map(|req_id| ClientFrame::Status { req_id }),
    ]
    .boxed()
}

fn arb_server_frame() -> BoxedStrategy<ServerFrame> {
    prop_oneof![
        (any::<u64>(), arb_zk_response())
            .prop_map(|(req_id, resp)| ServerFrame::Resp { req_id, resp }),
        arb_watch().prop_map(ServerFrame::Watch),
        (any::<u64>(), arb_server_status())
            .prop_map(|(req_id, status)| ServerFrame::Status { req_id, status }),
        arb_lease_grant().prop_map(ServerFrame::Lease),
    ]
    .boxed()
}

// ---------------------------------------------------------------- properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn zab_messages_round_trip(msg in arb_zab_msg()) {
        let mut buf = Vec::new();
        put_zab_msg(&msg, &mut buf);
        let mut c = WireCursor::new(&buf);
        let back = get_zab_msg(&mut c).expect("decode what we encoded");
        prop_assert!(c.expect_end().is_ok());
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn coord_messages_round_trip(msg in arb_coord_msg()) {
        prop_assert_eq!(CoordMsg::from_wire(&msg.to_wire()).expect("round trip"), msg);
    }

    #[test]
    fn client_frames_round_trip(f in arb_client_frame()) {
        prop_assert_eq!(ClientFrame::from_wire(&f.to_wire()).expect("round trip"), f);
    }

    #[test]
    fn server_frames_round_trip(f in arb_server_frame()) {
        prop_assert_eq!(ServerFrame::from_wire(&f.to_wire()).expect("round trip"), f);
    }

    #[test]
    fn truncated_coord_messages_error_never_panic(
        msg in arb_coord_msg(),
        cut_ppm in 0u64..1_000_000,
    ) {
        let full = msg.to_wire();
        let cut = (full.len() as u64 * cut_ppm / 1_000_000) as usize;
        // A strict prefix must never decode: cut == len is excluded by
        // ppm < 1M except for zero-length encodings, which cannot exist —
        // every message starts with a tag byte.
        prop_assert!(
            CoordMsg::from_wire(&full[..cut]).is_err(),
            "a strict prefix decoded successfully"
        );
    }

    #[test]
    fn bit_flipped_frames_never_panic(
        f in arb_server_frame(),
        at_ppm in 0u64..1_000_000,
        flip in 1u64..256,
    ) {
        let mut raw = f.to_wire();
        let at = ((raw.len() as u64 - 1) * at_ppm / 1_000_000) as usize;
        raw[at] ^= flip as u8;
        // Without the framing layer's CRC a flip may decode into a
        // *different valid* message — that is the frame codec's job to
        // prevent. Here the law is only: no panic, no allocation blow-up.
        let _ = ServerFrame::from_wire(&raw);
    }

    #[test]
    fn garbage_never_panics_any_codec(
        data in collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = CoordMsg::from_wire(&data);
        let _ = ClientFrame::from_wire(&data);
        let _ = ServerFrame::from_wire(&data);
        let _ = ZkRequest::from_wire(&data);
        let _ = ZkResponse::from_wire(&data);
        let mut c = WireCursor::new(&data);
        let _ = get_zab_msg(&mut c);
    }
}
