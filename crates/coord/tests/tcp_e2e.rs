//! Runtime parity: the TCP runtime must be a drop-in behavioural sibling of
//! the channel runtime. The same deterministic metadata workload is driven
//! through a [`ThreadCluster`] and a [`TcpCluster`]; every replica of both
//! ensembles must converge to the *same* namespace digest (the tree digest
//! deliberately excludes zxids and timestamps, so cross-runtime equality is
//! meaningful). The TCP run must additionally show real socket traffic in
//! its [`NetStats`] counters — the satellite assertion that the bytes
//! actually went over the wire.

use std::time::{Duration, Instant};

use bytes::Bytes;

use dufs_coord::runtime::ServerStatus;

use dufs_coord::{
    ClientOptions, ClientTransport, ClusterBuilder, ReadConsistency, Watch, ZkClient, ZkRequest,
    ZkResponse,
};
use dufs_zkstore::{CreateMode, MultiOp, ZkError};

const DIRS: usize = 3;
const FILES: usize = 6;

/// A deterministic, idempotent namespace churn: mkdir tree, create files,
/// overwrite half, delete a quarter, one atomic rename. Safe to re-run
/// (NodeExists / NoNode are successes), so at-least-once retries through
/// connection loss cannot diverge the final tree.
fn workload<T: ClientTransport>(c: &mut ZkClient<T>) {
    for d in 0..DIRS {
        match c.create(&format!("/d{d}"), Bytes::new(), CreateMode::Persistent) {
            Ok(_) | Err(ZkError::NodeExists) => {}
            Err(e) => panic!("mkdir /d{d}: {e:?}"),
        }
        for f in 0..FILES {
            let path = format!("/d{d}/f{f}");
            match c.create(
                &path,
                Bytes::from(format!("content-{d}-{f}").into_bytes()),
                CreateMode::Persistent,
            ) {
                Ok(_) | Err(ZkError::NodeExists) => {}
                Err(e) => panic!("create {path}: {e:?}"),
            }
        }
    }
    for d in 0..DIRS {
        for f in (0..FILES).step_by(2) {
            let path = format!("/d{d}/f{f}");
            c.set_data(&path, Bytes::from(format!("v2-{d}-{f}").into_bytes()), None)
                .unwrap_or_else(|e| panic!("set {path}: {e:?}"));
        }
    }
    for d in 0..DIRS {
        let path = format!("/d{d}/f1");
        match c.delete(&path, None) {
            Ok(()) | Err(ZkError::NoNode) => {}
            Err(e) => panic!("delete {path}: {e:?}"),
        }
    }
    // Atomic rename (the paper's §III hazard): if it already ran, the
    // delete leg fails with NoNode and the whole multi is a no-op.
    match c.multi(vec![
        MultiOp::Delete { path: "/d0/f3".into(), version: None },
        MultiOp::Create {
            path: "/d0/f3-renamed".into(),
            data: Bytes::from_static(b"moved"),
            mode: CreateMode::Persistent,
        },
    ]) {
        Ok(_) | Err(_) => {} // idempotent either way
    }
    c.sync().expect("sync");
}

/// Wait until every member reports the same digest, and return it.
fn converged_digest(status: impl Fn(usize) -> ServerStatus, n: usize) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s: Vec<ServerStatus> = (0..n).map(&status).collect();
        if s.iter().all(|x| x.digest == s[0].digest && x.last_applied == s[0].last_applied) {
            return s[0].digest;
        }
        assert!(Instant::now() < deadline, "replicas never converged: {s:?}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn thread_and_tcp_runtimes_agree_on_the_namespace_digest() {
    // Channel runtime.
    let tc = ClusterBuilder::new().voters(3).threads();
    let leader = tc.await_leader(Duration::from_secs(20)).expect("thread leader");
    let mut c = tc.client(ClientOptions::at(leader)).unwrap();
    workload(&mut c);
    let d_thread = converged_digest(|i| tc.status(i), 3);
    tc.shutdown();

    // TCP runtime, same workload.
    let cluster = ClusterBuilder::new().voters(3).tcp();
    let leader = cluster.await_leader(Duration::from_secs(20)).expect("tcp leader");
    let mut c = cluster.client(ClientOptions::at(leader)).unwrap();
    workload(&mut c);
    let d_tcp = converged_digest(|i| cluster.status(i), 3);

    assert_eq!(d_thread, d_tcp, "TCP runtime diverged from the channel runtime");

    // The bytes really crossed sockets: every member moved frames, and the
    // client session dialed at least once.
    for i in 0..3 {
        let s = cluster.net_stats(i);
        assert!(s.frames_sent > 0 && s.frames_recv > 0, "server {i} moved no frames: {s:?}");
        assert!(s.bytes_sent > 0 && s.bytes_recv > 0, "server {i} moved no bytes: {s:?}");
        // ... and they moved through the readiness event loop: readiness
        // wakeups were attributed, every send went out via a writev flush,
        // and read buffers came from the reactor pool.
        assert!(s.wakeups > 0, "server {i} saw no event-loop wakeups: {s:?}");
        assert!(s.writev_batches > 0, "server {i} never flushed via writev: {s:?}");
        // All post-handshake traffic leaves through flushes (only the
        // dial-out hellos use the blocking path, one frame per peer link).
        assert!(
            s.frames_flushed + 2 >= s.frames_sent,
            "server {i} frames must leave through flushes: {s:?}"
        );
        assert!(s.frames_per_flush() >= 1.0, "server {i} flushed empty batches: {s:?}");
        assert!(s.pool_hits + s.pool_misses > 0, "server {i} never borrowed a read buffer: {s:?}");
        // Inbound peer links plus whatever sessions are still parked on
        // this member are live registrations; the gauge must not have
        // leaked below zero (u64 underflow would make it enormous).
        assert!(s.conns_registered < 10_000, "server {i} leaked the registration gauge: {s:?}");
    }
    let cs = c.transport().stats();
    assert!(cs.conns_opened >= 1 && cs.frames_sent > 0, "client session unused: {cs:?}");
    assert!(cs.wakeups > 0 && cs.writev_batches > 0, "client bypassed the event loop: {cs:?}");
    assert_eq!(cs.conns_registered, 1, "one live session must be registered: {cs:?}");
    cluster.shutdown();
}

/// The same churn driven through the client-side metadata cache
/// ([`dufs_cache::CachedClient`]) must leave an identical namespace — the
/// cache may only change *who answers* a read, never what the tree holds —
/// and the wrapper's cache/lease counters must show the machinery actually
/// engaged over real sockets: warm hits, eviction by own mutations, lease
/// renewals, and lease-licensed barrier skips.
#[test]
fn cached_tcp_sessions_keep_digest_parity_and_report_counters() {
    use dufs_cache::{CacheOptions, CachedClient};

    // Uncached reference run.
    let cluster = ClusterBuilder::new().voters(3).tcp();
    let leader = cluster.await_leader(Duration::from_secs(20)).expect("tcp leader");
    let mut c = cluster.client(ClientOptions::at(leader)).unwrap();
    workload(&mut c);
    let d_plain = converged_digest(|i| cluster.status(i), 3);
    cluster.shutdown();

    // Cached run: same mutations through the invalidating wrappers, plus
    // a read phase that exercises the cache (cold pass populates, second
    // pass must hit).
    let cluster = ClusterBuilder::new().voters(3).tcp();
    let leader = cluster.await_leader(Duration::from_secs(20)).expect("tcp leader");
    let mut r = CachedClient::new(
        cluster
            .client(ClientOptions::at(leader).with_consistency(ReadConsistency::SyncThenLocal))
            .unwrap(),
        CacheOptions::default(),
    );
    for d in 0..DIRS {
        match r.create(&format!("/d{d}"), Bytes::new(), CreateMode::Persistent) {
            Ok(_) | Err(ZkError::NodeExists) => {}
            Err(e) => panic!("mkdir /d{d}: {e:?}"),
        }
        for f in 0..FILES {
            let path = format!("/d{d}/f{f}");
            match r.create(
                &path,
                Bytes::from(format!("content-{d}-{f}").into_bytes()),
                CreateMode::Persistent,
            ) {
                Ok(_) | Err(ZkError::NodeExists) => {}
                Err(e) => panic!("create {path}: {e:?}"),
            }
        }
    }
    // Dirty-session reads: every one must be licensed by a lease instead
    // of a barrier once the first grant is adopted.
    for pass in 0..2 {
        for d in 0..DIRS {
            for f in 0..FILES {
                let path = format!("/d{d}/f{f}");
                let (data, _) = r.get_data(&path).unwrap();
                assert_eq!(
                    &data[..],
                    format!("content-{d}-{f}").as_bytes(),
                    "wrong bytes on pass {pass}"
                );
            }
        }
    }
    for d in 0..DIRS {
        for f in (0..FILES).step_by(2) {
            let path = format!("/d{d}/f{f}");
            r.set_data(&path, Bytes::from(format!("v2-{d}-{f}").into_bytes()), None)
                .unwrap_or_else(|e| panic!("set {path}: {e:?}"));
            // The overwrite must have evicted the warm entry: the read-back
            // may not serve the stale pass-one bytes.
            let (data, _) = r.get_data(&path).unwrap();
            assert_eq!(&data[..], format!("v2-{d}-{f}").as_bytes(), "cache hid own write");
        }
    }
    for d in 0..DIRS {
        let path = format!("/d{d}/f1");
        match r.delete(&path, None) {
            Ok(()) | Err(ZkError::NoNode) => {}
            Err(e) => panic!("delete {path}: {e:?}"),
        }
    }
    match r.multi(vec![
        MultiOp::Delete { path: "/d0/f3".into(), version: None },
        MultiOp::Create {
            path: "/d0/f3-renamed".into(),
            data: Bytes::from_static(b"moved"),
            mode: CreateMode::Persistent,
        },
    ]) {
        Ok(_) | Err(_) => {}
    }
    r.sync().expect("sync");
    let d_cached = converged_digest(|i| cluster.status(i), 3);
    assert_eq!(d_plain, d_cached, "cached session diverged the namespace");

    let s = r.stats();
    assert!(s.hits >= (DIRS * FILES) as u64, "second read pass must be warm: {s:?}");
    assert!(s.misses >= (DIRS * FILES) as u64, "cold pass must have missed: {s:?}");
    assert!(
        s.local_invalidations >= (DIRS * FILES / 2) as u64,
        "overwrites must evict warm entries: {s:?}"
    );
    assert!(s.lease_renewals >= 1, "no lease was ever adopted: {s:?}");
    assert!(s.barriers_skipped >= 1, "dirty reads never rode a lease: {s:?}");
    assert_eq!(s.reconnect_invalidations, 0, "healthy run must not reconnect: {s:?}");
    // And the session still moved real bytes underneath the cache.
    let cs = r.inner().transport().stats();
    assert!(cs.conns_opened >= 1 && cs.frames_sent > 0, "cached session unused: {cs:?}");
    cluster.shutdown();
}

#[test]
fn tcp_sessions_preserve_depth_k_pipelining() {
    let cluster = ClusterBuilder::new().voters(3).tcp();
    let leader = cluster.await_leader(Duration::from_secs(20)).expect("leader");
    let mut c = cluster.client(ClientOptions::at(leader)).unwrap();
    // Submit a window of K creates without waiting, then drain completions:
    // responses must come back in submission order with matching ids.
    const K: usize = 32;
    let ids: Vec<u64> = (0..K)
        .map(|i| {
            c.submit(ZkRequest::Create {
                path: format!("/p{i:02}"),
                data: Bytes::new(),
                mode: CreateMode::Persistent,
            })
        })
        .collect();
    for (i, want) in ids.iter().enumerate() {
        let (got, resp) = c.next_completion().expect("completion");
        assert_eq!(got, *want, "completion out of order at {i}");
        assert!(
            matches!(resp, ZkResponse::Created { .. }),
            "pipelined create {i} failed: {resp:?}"
        );
    }
    cluster.shutdown();
}

#[test]
fn tcp_durable_cluster_recovers_after_clean_restart() {
    let dir = std::env::temp_dir().join(format!("dufs-tcp-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let first = ClusterBuilder::new().voters(3).durable(&dir).tcp();
    let leader = first.await_leader(Duration::from_secs(20)).expect("leader");
    let mut c = first.client(ClientOptions::at(leader)).unwrap();
    workload(&mut c);
    let before = converged_digest(|i| first.status(i), 3);
    first.shutdown();

    // Same WAL directories, brand-new ports: the durable identity is the
    // directory, not the address.
    let second = ClusterBuilder::new().voters(3).durable(&dir).tcp();
    second.await_leader(Duration::from_secs(20)).expect("leader after restart");
    let mut c = second.client(ClientOptions::at(0)).unwrap();
    c.sync().expect("sync");
    let after = converged_digest(|i| second.status(i), 3);
    assert_eq!(before, after, "restart over the same WAL dirs lost state");
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole's parity claim: every member — leader, followers, and an
/// observer — serves byte-identical data over TCP once a `SyncThenLocal`
/// session has barriered, so spreading reads across the ensemble cannot
/// change what a client observes.
#[test]
fn every_member_serves_identical_data_to_follower_readers() {
    let cluster = ClusterBuilder::new().voters(3).observers(1).tcp();
    let leader = cluster.await_leader(Duration::from_secs(20)).expect("leader");
    let mut w = cluster.client(ClientOptions::at(leader)).unwrap();
    let paths: Vec<String> = (0..16).map(|i| format!("/fan{i:02}")).collect();
    for (i, p) in paths.iter().enumerate() {
        w.create(p, Bytes::from(format!("payload-{i}").into_bytes()), CreateMode::Persistent)
            .unwrap();
    }

    // One session per member, reads pinned there. The sync barrier inside
    // the first read (SyncThenLocal re-barriers on a fresh session's
    // reconnect bookkeeping being clean, so force one with sync()) makes
    // the member current before it answers.
    let mut views: Vec<Vec<(String, Vec<u8>)>> = Vec::new();
    for m in 0..cluster.len() {
        let mut r = cluster
            .client(ClientOptions::at(m).with_consistency(ReadConsistency::SyncThenLocal))
            .unwrap();
        r.sync().expect("barrier");
        let mut view = Vec::new();
        for p in &paths {
            let (data, _) = r
                .get_data(p, Watch::None)
                .unwrap_or_else(|e| panic!("member {m} missing {p} after a sync barrier: {e:?}"));
            view.push((p.clone(), data.to_vec()));
        }
        views.push(view);
    }
    for (m, v) in views.iter().enumerate() {
        assert_eq!(v, &views[0], "member {m} served different data than member 0");
    }
    cluster.shutdown();
}
