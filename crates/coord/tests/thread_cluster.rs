//! Integration tests for the threaded coordination ensemble: the live
//! system a DUFS deployment would actually run against.

use std::time::Duration;

use bytes::Bytes;
use dufs_coord::{ClientOptions, ClusterBuilder, ThreadCluster, Watch};
use dufs_zkstore::{CreateMode, MultiOp, ZkError};

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// Cluster tests use real-time election timers; running many 3-server
/// ensembles concurrently on a loaded machine makes watchdogs flap. Tests
/// that start a cluster serialize on this gate (same idiom as the root
/// consistency suite).
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
fn serial() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Poll until the listed replicas hold identical digests (replication has
/// drained). A fixed sleep is not enough on a loaded CI machine where many
/// ensembles' threads compete for cores.
fn await_converged(cluster: &ThreadCluster, replicas: &[usize], timeout: Duration) {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let digests: Vec<u64> = replicas.iter().map(|&i| cluster.status(i).digest).collect();
        if digests.windows(2).all(|w| w[0] == w[1]) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replicas failed to converge: digests {digests:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn three_server_ensemble_serves_clients() {
    let _g = serial();
    let cluster = ClusterBuilder::new().voters(3).threads();
    cluster.await_leader(Duration::from_secs(10)).expect("leader");

    let mut c = cluster.client(ClientOptions::at(0)).unwrap();
    assert!(c.session() > 0);
    c.create("/app", b("root"), CreateMode::Persistent).unwrap();
    c.create("/app/cfg", b("v1"), CreateMode::Persistent).unwrap();
    let (data, stat) = c.get_data("/app/cfg", Watch::None).unwrap();
    assert_eq!(&data[..], b"v1");
    assert_eq!(stat.version, 0);

    // A client on a different server sees the same namespace (after sync to
    // defeat replication lag).
    let mut c2 = cluster.client(ClientOptions::at(2 % cluster.len())).unwrap();
    c2.sync().unwrap();
    let (data, _) = c2.get_data("/app/cfg", Watch::None).unwrap();
    assert_eq!(&data[..], b"v1");

    cluster.shutdown();
}

#[test]
fn replicas_converge_to_identical_digests() {
    let _g = serial();
    let cluster = ClusterBuilder::new().voters(3).threads();
    cluster.await_leader(Duration::from_secs(10)).expect("leader");
    let mut c = cluster.client(ClientOptions::at(1)).unwrap();
    for i in 0..50 {
        c.create(&format!("/n{i}"), b("x"), CreateMode::Persistent).unwrap();
    }
    // Let replication drain, then compare replica digests.
    await_converged(&cluster, &[0, 1, 2], Duration::from_secs(10));
    assert_eq!(cluster.status(0).node_count, 50);
    cluster.shutdown();
}

#[test]
fn conditional_ops_and_errors() {
    let _g = serial();
    let cluster = ClusterBuilder::new().voters(1).threads();
    cluster.await_leader(Duration::from_secs(5)).expect("leader");
    let mut c = cluster.client(ClientOptions::at(0)).unwrap();

    c.create("/v", b("a"), CreateMode::Persistent).unwrap();
    let stat = c.set_data("/v", b("b"), Some(0)).unwrap();
    assert_eq!(stat.version, 1);
    assert_eq!(c.set_data("/v", b("c"), Some(0)).unwrap_err(), ZkError::BadVersion);
    assert_eq!(c.delete("/v", Some(0)).unwrap_err(), ZkError::BadVersion);
    c.delete("/v", Some(1)).unwrap();
    assert_eq!(c.get_data("/v", Watch::None).unwrap_err(), ZkError::NoNode);
    assert_eq!(c.create("/x/y", b(""), CreateMode::Persistent).unwrap_err(), ZkError::NoNode);
    cluster.shutdown();
}

#[test]
fn multi_rename_is_atomic_across_ensemble() {
    let _g = serial();
    let cluster = ClusterBuilder::new().voters(3).threads();
    cluster.await_leader(Duration::from_secs(10)).expect("leader");
    let mut c = cluster.client(ClientOptions::at(0)).unwrap();
    c.create("/f", b("FID:1234"), CreateMode::Persistent).unwrap();
    // DUFS rename: new name + delete old, atomically.
    c.multi(vec![
        MultiOp::Create { path: "/g".into(), data: b("FID:1234"), mode: CreateMode::Persistent },
        MultiOp::Delete { path: "/f".into(), version: None },
    ])
    .unwrap();
    let mut c2 = cluster.client(ClientOptions::at(1)).unwrap();
    c2.sync().unwrap();
    assert!(c2.exists("/f", Watch::None).unwrap().is_none());
    let (data, _) = c2.get_data("/g", Watch::None).unwrap();
    assert_eq!(&data[..], b"FID:1234");
    cluster.shutdown();
}

#[test]
fn sequential_znodes_order_across_clients() {
    let _g = serial();
    let cluster = ClusterBuilder::new().voters(3).threads();
    cluster.await_leader(Duration::from_secs(10)).expect("leader");
    let mut a = cluster.client(ClientOptions::at(0)).unwrap();
    let mut bb = cluster.client(ClientOptions::at(1)).unwrap();
    a.create("/q", b(""), CreateMode::Persistent).unwrap();
    let p1 = a.create("/q/n-", b(""), CreateMode::PersistentSequential).unwrap();
    let p2 = bb.create("/q/n-", b(""), CreateMode::PersistentSequential).unwrap();
    let p3 = a.create("/q/n-", b(""), CreateMode::PersistentSequential).unwrap();
    assert!(p1 < p2 && p2 < p3, "{p1} {p2} {p3}");
    cluster.shutdown();
}

#[test]
fn watches_fire_across_clients() {
    let _g = serial();
    let cluster = ClusterBuilder::new().voters(3).threads();
    cluster.await_leader(Duration::from_secs(10)).expect("leader");
    let mut watcher = cluster.client(ClientOptions::at(0)).unwrap();
    let mut mutator = cluster.client(ClientOptions::at(0)).unwrap(); // same server: watch + change visible there

    watcher.create("/watched", b("v0"), CreateMode::Persistent).unwrap();
    watcher.get_data("/watched", Watch::Set).unwrap();
    mutator.set_data("/watched", b("v1"), None).unwrap();

    let note = watcher.await_watch(Duration::from_secs(5)).expect("watch fired");
    assert_eq!(note.path, "/watched");
    cluster.shutdown();
}

#[test]
fn ephemerals_vanish_when_session_closes() {
    let _g = serial();
    let cluster = ClusterBuilder::new().voters(3).threads();
    cluster.await_leader(Duration::from_secs(10)).expect("leader");
    let ephemeral_owner = cluster.client(ClientOptions::at(1)).unwrap();
    let mut observer = cluster.client(ClientOptions::at(0)).unwrap();

    let mut owner = ephemeral_owner;
    owner.create("/locks", b(""), CreateMode::Persistent).unwrap();
    owner.create("/locks/holder", b(""), CreateMode::Ephemeral).unwrap();
    observer.sync().unwrap();
    assert!(observer.exists("/locks/holder", Watch::None).unwrap().is_some());

    owner.close().unwrap();
    observer.sync().unwrap();
    assert!(observer.exists("/locks/holder", Watch::None).unwrap().is_none());
    cluster.shutdown();
}

#[test]
fn follower_crash_does_not_lose_service_and_restarts_catch_up() {
    let _g = serial();
    let cluster = ClusterBuilder::new().voters(3).threads();
    let leader = cluster.await_leader(Duration::from_secs(10)).expect("leader");
    let follower = (0..3).find(|&i| i != leader).unwrap();
    let surviving = (0..3).find(|&i| i != leader && i != follower).unwrap();

    let mut c = cluster.client(ClientOptions::at(surviving)).unwrap();
    c.create("/pre", b(""), CreateMode::Persistent).unwrap();
    cluster.crash(follower);
    for i in 0..10 {
        c.create(&format!("/during{i}"), b(""), CreateMode::Persistent).unwrap();
    }
    cluster.restart(follower);
    // Allow resync, then the restarted replica must converge.
    await_converged(&cluster, &[follower, surviving], Duration::from_secs(45));
    assert!(cluster.status(follower).alive);
    cluster.shutdown();
}

#[test]
fn observers_serve_reads_in_the_live_runtime() {
    let _g = serial();
    // 3 voters + 1 observer (server index 3).
    let cluster = ClusterBuilder::new().voters(3).observers(1).threads();
    cluster.await_leader(Duration::from_secs(10)).expect("leader");
    let leader = cluster.leader_index().unwrap();
    assert!(leader < 3, "observers never lead");

    let mut writer = cluster.client(ClientOptions::at(0)).unwrap();
    writer.create("/from-voter", b("v"), CreateMode::Persistent).unwrap();

    // A client connected to the OBSERVER: reads locally, writes forwarded.
    let mut via_obs = cluster.client(ClientOptions::at(3)).unwrap();
    via_obs.sync().unwrap();
    let (data, _) = via_obs.get_data("/from-voter", Watch::None).unwrap();
    assert_eq!(&data[..], b"v");
    via_obs.create("/from-observer", b("o"), CreateMode::Persistent).unwrap();
    writer.sync().unwrap();
    assert!(writer.exists("/from-observer", Watch::None).unwrap().is_some());

    // The observer replica converges with the voters.
    await_converged(&cluster, &[0, 3], Duration::from_secs(10));

    // Killing the observer must not affect writes at all.
    cluster.crash(3);
    writer.create("/while-obs-down", b(""), CreateMode::Persistent).unwrap();
    assert!(writer.exists("/while-obs-down", Watch::None).unwrap().is_some());
    cluster.shutdown();
}

#[test]
fn leader_crash_fails_over_and_preserves_data() {
    let _g = serial();
    let cluster = ClusterBuilder::new().voters(3).threads();
    let leader = cluster.await_leader(Duration::from_secs(10)).expect("leader");
    let other = (0..3).find(|&i| i != leader).unwrap();

    let mut c = cluster.client(ClientOptions::at(other)).unwrap();
    c.set_timeout(Duration::from_secs(2));
    for i in 0..10 {
        c.create(&format!("/pre{i}"), b(""), CreateMode::Persistent).unwrap();
    }
    cluster.crash(leader);
    // A new leader must emerge among the survivors…
    let new_leader = {
        let deadline = std::time::Instant::now() + Duration::from_secs(45);
        loop {
            if let Some(l) = (0..3).filter(|&i| i != leader).find(|&i| cluster.status(i).is_leader)
            {
                break l;
            }
            assert!(std::time::Instant::now() < deadline, "no failover leader");
            std::thread::sleep(Duration::from_millis(100));
        }
    };
    assert_ne!(new_leader, leader);
    // …and the pre-crash data plus new writes must survive.
    for i in 0..10 {
        assert!(
            c.exists(&format!("/pre{i}"), Watch::None).unwrap().is_some(),
            "/pre{i} lost in failover"
        );
    }
    c.create("/post", b(""), CreateMode::Persistent).unwrap();
    assert!(c.exists("/post", Watch::None).unwrap().is_some());
    cluster.shutdown();
}

#[test]
fn durable_ensemble_survives_whole_cluster_crash_and_cold_start() {
    let _g = serial();
    let dir = std::env::temp_dir().join(format!("dufs-durable-tc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Act 1: a durable ensemble takes writes (each fsynced before its ack).
    let cluster = ClusterBuilder::new().voters(3).durable(&dir).threads();
    cluster.await_leader(Duration::from_secs(10)).expect("leader");
    let mut c = cluster.client(ClientOptions::at(0)).unwrap();
    for i in 0..40 {
        c.create(&format!("/d{i}"), b("payload"), CreateMode::Persistent).unwrap();
    }
    await_converged(&cluster, &[0, 1, 2], Duration::from_secs(10));
    let digest = cluster.status(0).digest;
    assert_eq!(cluster.status(0).node_count, 40);

    // Act 2: every server crashes at once — no survivor holds the state in
    // memory — then all three restart and recover from their logs.
    for i in 0..3 {
        cluster.crash(i);
    }
    for i in 0..3 {
        cluster.restart(i);
    }
    cluster.await_leader(Duration::from_secs(20)).expect("re-elected after total outage");
    await_converged(&cluster, &[0, 1, 2], Duration::from_secs(45));
    assert_eq!(cluster.status(0).digest, digest, "whole-cluster restart must restore the tree");

    // Still a working ensemble.
    let mut c = cluster.client(ClientOptions::at(1)).unwrap();
    c.create("/after-outage", b("new"), CreateMode::Persistent).unwrap();
    cluster.shutdown();

    // Act 3: a brand-new process generation (fresh ThreadCluster) over the
    // same directory — cold start purely from disk.
    let cluster = ClusterBuilder::new().voters(3).durable(&dir).threads();
    cluster.await_leader(Duration::from_secs(10)).expect("leader from cold start");
    let mut c = cluster.client(ClientOptions::at(2)).unwrap();
    c.sync().unwrap();
    assert_eq!(&c.get_data("/after-outage", Watch::None).unwrap().0[..], b"new");
    assert_eq!(&c.get_data("/d7", Watch::None).unwrap().0[..], b"payload");
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
