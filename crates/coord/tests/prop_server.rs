//! Property test: a single-server coordination service must behave exactly
//! like the bare znode store for any request sequence — the replication
//! and session machinery in between must be semantically transparent.

use bytes::Bytes;
use proptest::prelude::*;

use dufs_coord::server::{CoordServer, ServerIn, ServerOut};
use dufs_coord::{ZkRequest, ZkResponse};
use dufs_zab::{EnsembleConfig, PeerId};
use dufs_zkstore::{CreateMode, DataTree};

#[derive(Debug, Clone)]
enum Req {
    Create(usize, Vec<u8>, bool),
    Delete(usize, Option<u32>),
    Set(usize, Vec<u8>, Option<u32>),
    Get(usize),
    Exists(usize),
    Children(usize),
    ChildrenData(usize),
}

fn paths() -> Vec<String> {
    vec!["/a".into(), "/b".into(), "/a/x".into(), "/a/y".into(), "/b/z".into()]
}

fn req_strategy() -> impl Strategy<Value = Req> {
    let idx = 0..paths().len();
    let data = proptest::collection::vec(any::<u8>(), 0..8);
    let ver = proptest::option::of(0u32..3);
    prop_oneof![
        (idx.clone(), data.clone(), any::<bool>()).prop_map(|(i, d, s)| Req::Create(i, d, s)),
        (idx.clone(), ver.clone()).prop_map(|(i, v)| Req::Delete(i, v)),
        (idx.clone(), data, ver).prop_map(|(i, d, v)| Req::Set(i, d, v)),
        idx.clone().prop_map(Req::Get),
        idx.clone().prop_map(Req::Exists),
        idx.clone().prop_map(Req::Children),
        idx.prop_map(Req::ChildrenData),
    ]
}

fn drive(server: &mut CoordServer, clock: &mut u64, req: ZkRequest) -> ZkResponse {
    *clock += 1_000_000;
    let outs = server.handle(*clock, ServerIn::Client { client: 1, req_id: 0, session: 0, req });
    outs.into_iter()
        .find_map(|o| match o {
            ServerOut::Client { resp, .. } => Some(resp),
            _ => None,
        })
        .expect("single-server requests answer synchronously")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solo_server_is_transparent_over_the_store(
        reqs in proptest::collection::vec(req_strategy(), 1..60)
    ) {
        let pool = paths();
        let (mut server, _) = CoordServer::new(PeerId(0), EnsembleConfig::of_size(1));
        let mut oracle = DataTree::new();
        let mut clock = 0u64;
        let mut oracle_zxid = 0u64;
        let seq = CreateMode::PersistentSequential;
        let _ = seq;
        for r in &reqs {
            match r {
                Req::Create(i, d, sequential) => {
                    let mode = if *sequential {
                        CreateMode::PersistentSequential
                    } else {
                        CreateMode::Persistent
                    };
                    let got = drive(&mut server, &mut clock, ZkRequest::Create {
                        path: pool[*i].clone(),
                        data: Bytes::copy_from_slice(d),
                        mode,
                    });
                    oracle_zxid += 1;
                    let want = oracle.create(&pool[*i], Bytes::copy_from_slice(d), mode, 0, oracle_zxid, clock);
                    match (got, want) {
                        (ZkResponse::Created { path }, Ok((want_path, _))) => {
                            prop_assert_eq!(path, want_path)
                        }
                        (ZkResponse::Error(e), Err(we)) => prop_assert_eq!(e, we),
                        (g, w) => prop_assert!(false, "create mismatch: {:?} vs {:?}", g, w),
                    }
                }
                Req::Delete(i, v) => {
                    let got = drive(&mut server, &mut clock, ZkRequest::Delete {
                        path: pool[*i].clone(),
                        version: *v,
                    });
                    oracle_zxid += 1;
                    let want = oracle.delete(&pool[*i], *v, oracle_zxid, clock);
                    prop_assert_eq!(matches!(got, ZkResponse::Deleted), want.is_ok());
                    if let (ZkResponse::Error(e), Err(we)) = (&got, &want) {
                        prop_assert_eq!(e, we);
                    }
                }
                Req::Set(i, d, v) => {
                    let got = drive(&mut server, &mut clock, ZkRequest::SetData {
                        path: pool[*i].clone(),
                        data: Bytes::copy_from_slice(d),
                        version: *v,
                    });
                    oracle_zxid += 1;
                    let want = oracle.set_data(&pool[*i], Bytes::copy_from_slice(d), *v, oracle_zxid, clock);
                    match (got, want) {
                        (ZkResponse::Stat(s), Ok((ws, _))) => prop_assert_eq!(s.version, ws.version),
                        (ZkResponse::Error(e), Err(we)) => prop_assert_eq!(e, we),
                        (g, w) => prop_assert!(false, "set mismatch: {:?} vs {:?}", g, w),
                    }
                }
                Req::Get(i) => {
                    let got = drive(&mut server, &mut clock, ZkRequest::GetData {
                        path: pool[*i].clone(),
                        watch: false,
                    });
                    match (got, oracle.get_data(&pool[*i])) {
                        (ZkResponse::Data { data, stat }, Ok((wd, ws))) => {
                            prop_assert_eq!(data, wd);
                            prop_assert_eq!(stat.version, ws.version);
                            prop_assert_eq!(stat.num_children, ws.num_children);
                        }
                        (ZkResponse::Error(e), Err(we)) => prop_assert_eq!(e, we),
                        (g, w) => prop_assert!(false, "get mismatch: {:?} vs {:?}", g, w),
                    }
                }
                Req::Exists(i) => {
                    let got = drive(&mut server, &mut clock, ZkRequest::Exists {
                        path: pool[*i].clone(),
                        watch: false,
                    });
                    let want = oracle.exists(&pool[*i]).expect("valid path");
                    prop_assert_eq!(
                        matches!(got, ZkResponse::ExistsResult(Some(_))),
                        want.is_some()
                    );
                }
                Req::Children(i) => {
                    let got = drive(&mut server, &mut clock, ZkRequest::GetChildren {
                        path: pool[*i].clone(),
                        watch: false,
                    });
                    match (got, oracle.get_children(&pool[*i])) {
                        (ZkResponse::Children { names, .. }, Ok((wn, _))) => {
                            prop_assert_eq!(names, wn)
                        }
                        (ZkResponse::Error(e), Err(we)) => prop_assert_eq!(e, we),
                        (g, w) => prop_assert!(false, "children mismatch: {:?} vs {:?}", g, w),
                    }
                }
                Req::ChildrenData(i) => {
                    let got = drive(&mut server, &mut clock, ZkRequest::GetChildrenData {
                        path: pool[*i].clone(),
                    });
                    match (got, oracle.get_children(&pool[*i])) {
                        (ZkResponse::ChildrenData { entries }, Ok((wn, _))) => {
                            let names: Vec<String> = entries.iter().map(|e| e.0.clone()).collect();
                            prop_assert_eq!(names, wn);
                            // Each payload matches a direct get.
                            for (name, data, _) in &entries {
                                let child = format!("{}/{}", pool[*i], name);
                                let (wd, _) = oracle.get_data(&child).expect("listed child");
                                prop_assert_eq!(data, &wd);
                            }
                        }
                        (ZkResponse::Error(e), Err(we)) => prop_assert_eq!(e, we),
                        (g, w) => prop_assert!(false, "childrendata mismatch: {:?} vs {:?}", g, w),
                    }
                }
            }
        }
        // Final state identical to the oracle.
        prop_assert_eq!(server.tree().digest(), oracle.digest());
    }
}
