//! Crash consistency of cross-shard two-phase commit on the thread
//! runtime: a shard that is `kill -9`'d (crash + WAL recovery) **between
//! prepare and decision** must come back with the prepared slice still
//! parked and fenced, and a *fresh* session's `recover_txns` sweep — which
//! was never party to the prepare — must drive the transaction to the same
//! outcome on both shards. The commit case plants the coordinator's durable
//! decision record first (the coordinator died just after recording `C`);
//! the abort case leaves no record, so recovery must presume abort. The
//! recovered namespace is checked against an uncrashed control running the
//! same workload, via the shard-count-independent logical digest.
//!
//! The TCP sibling (real processes, real `SIGKILL`) lives in
//! `kill9_recovery.rs`; this file exercises the same protocol states with
//! in-process crash injection, which also lets it cover the abort path
//! cheaply.

use std::time::Duration;

use bytes::Bytes;

use dufs_coord::runtime::ThreadCluster;
use dufs_coord::sharded::{txn_decision_path, ShardedClient, ShardedCluster};
use dufs_coord::{ClientOptions, ClientTransport, ClusterBuilder};
use dufs_zkstore::{CreateMode, MultiOp};

const SHARDS: usize = 2;

fn start(durable: Option<&std::path::Path>) -> ShardedCluster<ThreadCluster> {
    let mut b = ClusterBuilder::new().voters(1).shards(SHARDS);
    if let Some(d) = durable {
        b = b.durable(d);
    }
    b.sharded_threads()
}

/// A `(src, dst)` leaf pair guaranteed to live on different shards. Pure
/// ring arithmetic, so the control and crash runs pick the same pair.
fn cross_shard_pair<T: ClientTransport>(c: &ShardedClient<T>) -> (String, String) {
    let src = "/src-dir/victim".to_string();
    for i in 0..10_000 {
        let dst = format!("/dst-dir{i}/moved");
        if c.route(&dst) != c.route(&src) {
            return (src, dst);
        }
    }
    panic!("no cross-shard pair");
}

/// Seed a little namespace plus the rename source.
fn seed<T: ClientTransport>(c: &mut ShardedClient<T>, src: &str) {
    for d in 0..3 {
        for f in 0..2 {
            let p = format!("/seed{d}/f{f}");
            c.create(&p, Bytes::from(p.clone().into_bytes())).unwrap();
        }
    }
    c.create(src, Bytes::from_static(b"victim-payload")).unwrap();
}

/// The per-shard slices of the cross-shard rename `src` → `dst`.
fn rename_slices<T: ClientTransport>(
    c: &mut ShardedClient<T>,
    src: &str,
    dst: &str,
) -> Vec<(usize, Vec<MultiOp>)> {
    let (data, stat) = c.get_data(src).unwrap();
    let src_slice = vec![
        MultiOp::Check { path: src.into(), version: Some(stat.version) },
        MultiOp::Delete { path: src.into(), version: Some(stat.version) },
    ];
    let dst_slice = vec![MultiOp::Create { path: dst.into(), data, mode: CreateMode::Persistent }];
    vec![(c.route(src), src_slice), (c.route(dst), dst_slice)]
}

#[derive(Clone, Copy, PartialEq)]
enum Decision {
    Commit,
    Abort,
}

/// Post-decision probe, run **identically** by the control and the crash
/// run so their op sequences (and thus any `mkdir -p` ancestor residue)
/// match exactly. It doubles as the fence-release check: every write here
/// touches a path the prepared transaction had fenced, so a leaked fence
/// surfaces as `TxnBusy` and a panic.
fn probe<T: ClientTransport>(c: &mut ShardedClient<T>, src: &str, dst: &str, d: Decision) {
    match d {
        Decision::Commit => {
            // dst exists now; src's slot is free again.
            c.set_data(dst, Bytes::from_static(b"victim-payload"), None).unwrap();
            c.create(src, Bytes::new()).unwrap();
            c.delete(src, None).unwrap();
        }
        Decision::Abort => {
            // src is untouched; dst was only ever fenced, never created.
            c.set_data(src, Bytes::from_static(b"victim-payload"), None).unwrap();
            c.create(dst, Bytes::new()).unwrap();
            c.delete(dst, None).unwrap();
        }
    }
}

/// Uncrashed control: same seed, rename either fully applied (`Commit`) or
/// never attempted (an abort must be indistinguishable from "never
/// happened"), then the same probe. Returns the logical-namespace digest.
fn control_digest(decision: Decision) -> u64 {
    let cluster = start(None);
    let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
    let (src, dst) = cross_shard_pair(&c);
    seed(&mut c, &src);
    if decision == Decision::Commit {
        c.rename(&src, &dst).unwrap();
    }
    probe(&mut c, &src, &dst, decision);
    let d = c.user_digest().unwrap();
    cluster.shutdown();
    d
}

/// Prepare on both shards — planting the durable `C` record first when the
/// decision is `Commit` — then crash the shard holding the *destination*
/// slice (its single voter is its leader), restart it over the same WAL,
/// and let a brand-new session's recovery sweep finish the transaction.
fn crash_mid_2pc(name: &str, decision: Decision) -> u64 {
    let wal = std::env::temp_dir().join(format!("dufs-2pc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal);
    let cluster = start(Some(&wal));

    let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
    let (src, dst) = cross_shard_pair(&c);
    seed(&mut c, &src);
    let slices = rename_slices(&mut c, &src, &dst);
    let mut participants: Vec<u32> = slices.iter().map(|&(s, _)| s as u32).collect();
    participants.sort_unstable();
    let txn_id = c.mint_txn_id();
    for (s, ops) in &slices {
        c.txn_prepare_on(*s, txn_id, ops.clone(), participants.clone()).unwrap();
    }
    if decision == Decision::Commit {
        // The coordinator got exactly as far as recording its verdict; the
        // record rides the decision shard's WAL through the crash. For
        // Abort there is nothing to write — no record *is* the abort.
        c.shard_client(participants[0] as usize)
            .create_path(
                &txn_decision_path(txn_id),
                Bytes::from_static(b"C"),
                CreateMode::Persistent,
            )
            .unwrap();
    }

    // kill -9 the destination shard's leader between prepare and decision
    // delivery.
    let dst_shard = c.route(&dst);
    cluster.shard(dst_shard).crash(0);
    cluster.shard(dst_shard).restart(0);
    assert!(
        cluster.shard(dst_shard).await_leader(Duration::from_secs(30)).is_some(),
        "crashed shard never recovered"
    );
    drop(c); // the coordinator session is dead weight from here on

    // A fresh session — never party to the prepare — sweeps the parked
    // markers and drives the recorded (or presumed) decision everywhere.
    let mut c2 = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
    assert_eq!(c2.recover_txns().unwrap(), 1, "sweep did not resolve the orphaned txn");
    probe(&mut c2, &src, &dst, decision);

    let d = c2.user_digest().unwrap();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&wal);
    d
}

#[test]
fn commit_survives_kill9_of_a_participant_mid_2pc() {
    let recovered = crash_mid_2pc("commit", Decision::Commit);
    assert_eq!(
        recovered,
        control_digest(Decision::Commit),
        "commit after crash+recovery diverged from the uncrashed control"
    );
}

#[test]
fn abort_survives_kill9_of_a_participant_mid_2pc() {
    let recovered = crash_mid_2pc("abort", Decision::Abort);
    assert_eq!(
        recovered,
        control_digest(Decision::Abort),
        "abort after crash+recovery left traces the uncrashed control lacks"
    );
}
