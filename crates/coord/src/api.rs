//! The client-visible request/response API — the synchronous ZooKeeper API
//! surface the DUFS prototype is built on (`zoo_create`, `zoo_get`,
//! `zoo_set`, `zoo_delete`, `zoo_get_children`, `zoo_exists`, multi, sync).

use bytes::Bytes;

use dufs_zkstore::{CreateMode, MultiOp, MultiResult, Stat, ZkError};

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkRequest {
    /// Open a session (replicated, so every server can clean up the
    /// session's ephemerals if it dies).
    Connect,
    /// Close the session, deleting its ephemeral znodes.
    CloseSession,
    /// `zoo_create`.
    Create {
        /// Znode path.
        path: String,
        /// Payload (DUFS: node type byte + FID for files).
        data: Bytes,
        /// Create mode.
        mode: CreateMode,
    },
    /// `zoo_delete`.
    Delete {
        /// Znode path.
        path: String,
        /// Conditional version.
        version: Option<u32>,
    },
    /// `zoo_set`.
    SetData {
        /// Znode path.
        path: String,
        /// New payload.
        data: Bytes,
        /// Conditional version.
        version: Option<u32>,
    },
    /// `zoo_get`, optionally leaving a data watch.
    GetData {
        /// Znode path.
        path: String,
        /// Register a one-shot data watch.
        watch: bool,
    },
    /// `zoo_exists`, optionally leaving an existence watch.
    Exists {
        /// Znode path.
        path: String,
        /// Register a one-shot existence watch.
        watch: bool,
    },
    /// `zoo_get_children`, optionally leaving a child watch.
    GetChildren {
        /// Znode path.
        path: String,
        /// Register a one-shot child watch.
        watch: bool,
    },
    /// Batched listing: the children of a znode together with each child's
    /// data and stat, in one round trip. ZooKeeper itself lacks this (one
    /// `zoo_get` per child is a classic `ls -l` pain point); DUFS's
    /// `readdir_plus` is built on it.
    GetChildrenData {
        /// Znode path.
        path: String,
    },
    /// Atomic multi-op transaction.
    Multi {
        /// Operations, applied all-or-nothing.
        ops: Vec<MultiOp>,
    },
    /// Flush this server up to the leader's current commit point, so a
    /// subsequent local read observes everything committed before the sync.
    Sync,
    /// Session liveness ping (also returns the server's applied zxid, which
    /// doubles as a cheap progress probe in tests).
    Ping,
}

impl ZkRequest {
    /// Read-only requests are served locally without touching the leader —
    /// the property behind ZooKeeper's read scaling (paper Fig 7d).
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            ZkRequest::GetData { .. }
                | ZkRequest::Exists { .. }
                | ZkRequest::GetChildren { .. }
                | ZkRequest::GetChildrenData { .. }
                | ZkRequest::Ping
        )
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkResponse {
    /// Session established.
    Connected {
        /// The new session id.
        session: u64,
    },
    /// Session closed.
    Closed,
    /// Create succeeded; the actual path (sequential suffix included).
    Created {
        /// Actual znode path.
        path: String,
    },
    /// Delete succeeded.
    Deleted,
    /// SetData succeeded; the new stat.
    Stat(Stat),
    /// GetData result.
    Data {
        /// Payload.
        data: Bytes,
        /// Current stat.
        stat: Stat,
    },
    /// Exists result (`None` = no node; *not* an error, per ZooKeeper).
    ExistsResult(Option<Stat>),
    /// GetChildren result.
    Children {
        /// Sorted child names.
        names: Vec<String>,
        /// Parent stat.
        stat: Stat,
    },
    /// GetChildrenData result: each child with its payload and stat.
    ChildrenData {
        /// Sorted `(name, data, stat)` triples.
        entries: Vec<(String, Bytes, Stat)>,
    },
    /// Multi succeeded.
    MultiResults(Vec<MultiResult>),
    /// Sync complete; the zxid this server has applied up to.
    Synced {
        /// Applied zxid (raw form).
        zxid: u64,
    },
    /// Ping reply with the server's applied zxid.
    Pong {
        /// Applied zxid (raw form).
        zxid: u64,
    },
    /// The request failed.
    Error(ZkError),
}

impl ZkResponse {
    /// Extract the error, if this is one.
    pub fn err(&self) -> Option<ZkError> {
        match self {
            ZkResponse::Error(e) => Some(*e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_classification() {
        assert!(ZkRequest::GetData { path: "/a".into(), watch: false }.is_read());
        assert!(ZkRequest::Exists { path: "/a".into(), watch: true }.is_read());
        assert!(ZkRequest::GetChildren { path: "/a".into(), watch: false }.is_read());
        assert!(ZkRequest::Ping.is_read());
        assert!(!ZkRequest::Sync.is_read(), "sync consults the leader");
        assert!(!ZkRequest::Create {
            path: "/a".into(),
            data: Bytes::new(),
            mode: CreateMode::Persistent
        }
        .is_read());
        assert!(!ZkRequest::Multi { ops: vec![] }.is_read());
    }

    #[test]
    fn response_err_extraction() {
        assert_eq!(ZkResponse::Error(ZkError::NoNode).err(), Some(ZkError::NoNode));
        assert_eq!(ZkResponse::Deleted.err(), None);
    }
}
