//! The client-visible request/response API — the synchronous ZooKeeper API
//! surface the DUFS prototype is built on (`zoo_create`, `zoo_get`,
//! `zoo_set`, `zoo_delete`, `zoo_get_children`, `zoo_exists`, multi, sync).

use bytes::Bytes;

use dufs_zkstore::{CreateMode, MultiOp, MultiResult, Stat, ZkError};

/// Whether a read should leave a one-shot watch behind — the typed form of
/// ZooKeeper's `watch` flag, taken by [`crate::ZkClient::get_data`],
/// [`crate::ZkClient::exists`] and [`crate::ZkClient::get_children`] so
/// read options compose with [`ReadConsistency`] instead of accumulating
/// bare booleans. (On the wire it still travels as the classic one byte.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Watch {
    /// Plain read; no watch registered.
    #[default]
    None,
    /// Register a one-shot watch at the serving replica.
    Set,
}

impl Watch {
    /// The wire/bool form.
    pub fn is_set(self) -> bool {
        matches!(self, Watch::Set)
    }
}

impl From<bool> for Watch {
    fn from(set: bool) -> Self {
        if set {
            Watch::Set
        } else {
            Watch::None
        }
    }
}

/// How strongly a [`crate::ZkClient`]'s reads are ordered against writes.
///
/// Every replica serves reads from its own committed tree (the paper's read
/// scale-out property, Fig 7d), which is *sequentially consistent*: a
/// replica may lag the leader, so a freshly-acked write by *another* client
/// — or by this client before a failover to a lagging replica — may not be
/// visible yet. The levels trade read latency for recency:
///
/// | Level | Barrier | Guarantee |
/// |-------|---------|-----------|
/// | `Local` | never | sequential consistency only |
/// | `SyncThenLocal` | after own writes / reconnects | read-your-writes |
/// | `Linearizable` | before every read | real-time ordering |
///
/// The barrier is [`crate::ZkClient::sync`]: a no-op proposal through ZAB
/// whose response proves this replica has applied everything committed
/// before the barrier was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadConsistency {
    /// Serve reads straight from the connected replica — fastest, may be
    /// stale. ZooKeeper's default behaviour.
    #[default]
    Local,
    /// `sync` before a read whenever this client has written (or switched
    /// replica) since its last barrier: local reads, upgraded to
    /// read-your-writes exactly when staleness could be observed.
    SyncThenLocal,
    /// `sync` before *every* read: each read reflects all writes committed
    /// before it was issued, at one ZAB round of extra latency.
    Linearizable,
}

/// Options for opening a client session against a cluster —
/// `ThreadCluster::client` and `TcpCluster::client` take the same struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientOptions {
    /// Index of the member the session first connects to.
    pub server: usize,
    /// Fail over to the other members when that server dies; `false` pins
    /// the session (a dead server then surfaces as `ConnectionLoss`).
    pub failover: bool,
    /// Read-recency level for this session's read methods.
    pub consistency: ReadConsistency,
}

impl ClientOptions {
    /// A session pinned to member `server` with [`ReadConsistency::Local`]
    /// reads — the common test shape.
    pub fn at(server: usize) -> Self {
        ClientOptions { server, ..Default::default() }
    }

    /// Enable failover across the whole ensemble (starting at `server`).
    pub fn with_failover(mut self) -> Self {
        self.failover = true;
        self
    }

    /// Select the read-recency level.
    pub fn with_consistency(mut self, consistency: ReadConsistency) -> Self {
        self.consistency = consistency;
        self
    }
}

/// A staleness lease granted by a replica to a client session.
///
/// While a lease holds (and the session's connection is unchanged since the
/// grant), the replica promises it is at most `LEASE_MS` behind the
/// cluster's committed state: the grant is only issued while the replica
/// holds evidence, younger than the lease window, that its leader still
/// commanded a quorum — which bounds how much committed-but-unseen history
/// can exist. A cached `SyncThenLocal` read may therefore skip its `sync`
/// barrier for the lease's remaining `ttl_ms` and still never observe data
/// staler than the lease bound. `epoch` pins the grant to one leader reign;
/// clients discard grants across reconnects, and servers stop granting the
/// instant their quorum evidence goes stale, so correctness never depends
/// on clocks beyond the bound itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseGrant {
    /// Remaining validity, in real (undilated) milliseconds, measured from
    /// receipt. Conservatively decayed at every hop.
    pub ttl_ms: u32,
    /// ZAB epoch of the leader whose authority backs this grant.
    pub epoch: u32,
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkRequest {
    /// Open a session (replicated, so every server can clean up the
    /// session's ephemerals if it dies).
    Connect,
    /// Close the session, deleting its ephemeral znodes.
    CloseSession,
    /// `zoo_create`.
    Create {
        /// Znode path.
        path: String,
        /// Payload (DUFS: node type byte + FID for files).
        data: Bytes,
        /// Create mode.
        mode: CreateMode,
    },
    /// `zoo_delete`.
    Delete {
        /// Znode path.
        path: String,
        /// Conditional version.
        version: Option<u32>,
    },
    /// `zoo_set`.
    SetData {
        /// Znode path.
        path: String,
        /// New payload.
        data: Bytes,
        /// Conditional version.
        version: Option<u32>,
    },
    /// `zoo_get`, optionally leaving a data watch.
    GetData {
        /// Znode path.
        path: String,
        /// Register a one-shot data watch.
        watch: bool,
    },
    /// `zoo_exists`, optionally leaving an existence watch.
    Exists {
        /// Znode path.
        path: String,
        /// Register a one-shot existence watch.
        watch: bool,
    },
    /// `zoo_get_children`, optionally leaving a child watch.
    GetChildren {
        /// Znode path.
        path: String,
        /// Register a one-shot child watch.
        watch: bool,
    },
    /// Batched listing: the children of a znode together with each child's
    /// data and stat, in one round trip. ZooKeeper itself lacks this (one
    /// `zoo_get` per child is a classic `ls -l` pain point); DUFS's
    /// `readdir_plus` is built on it.
    GetChildrenData {
        /// Znode path.
        path: String,
    },
    /// READDIRPLUS-style bulk warm: like [`ZkRequest::GetChildrenData`] it
    /// returns the children of a znode with each child's data and stat in
    /// one round trip, but it *additionally* installs one-shot watches —
    /// a child watch on the parent and a data watch on every child — so a
    /// client cache can trust the whole listing without the N+1
    /// `get_children`-then-`get_data` loop it would otherwise need to leave
    /// watches behind.
    WarmChildren {
        /// Znode path of the directory to warm.
        path: String,
    },
    /// Atomic multi-op transaction.
    Multi {
        /// Operations, applied all-or-nothing.
        ops: Vec<MultiOp>,
    },
    /// Barrier: a no-op transaction proposed through ZAB. By total order,
    /// when it applies at the serving replica, that replica has applied
    /// everything committed before the barrier — so a subsequent local
    /// read observes all of it.
    Sync {
        /// Allow the server to satisfy this barrier by attaching it to a
        /// barrier proposal that is already in flight on the same replica
        /// (one no-op through ZAB answers every rider). Sound only while
        /// the session's connection has not changed since its last write
        /// ack: ack-implies-applied then guarantees the rider's own writes
        /// predate any open barrier. After a reconnect the client must
        /// send `coalesce: false` to force a fresh proposal.
        coalesce: bool,
    },
    /// Session liveness ping (also returns the server's applied zxid, which
    /// doubles as a cheap progress probe in tests, and — when the serving
    /// replica holds fresh lease authority — a staleness lease grant).
    Ping,
    /// Create with missing-ancestor materialization (`mkdir -p` semantics
    /// for the parent chain). The sharded client uses this for every
    /// create, since a shard owns a path without necessarily owning its
    /// ancestors.
    CreatePath {
        /// Znode path.
        path: String,
        /// Payload.
        data: Bytes,
        /// Create mode.
        mode: CreateMode,
    },
    /// Phase one of cross-shard 2PC: validate and fence this shard's slice
    /// of the transaction, durably parking the ops until a decision.
    TxnPrepare {
        /// Coordinator-chosen globally unique transaction id.
        txn_id: u64,
        /// This shard's slice of the transaction.
        ops: Vec<MultiOp>,
        /// Every shard participating in the transaction (ascending). Parked
        /// with the slice so a recovery agent that finds the marker knows
        /// which shards to drive the decision to.
        participants: Vec<u32>,
    },
    /// Commit decision for a prepared transaction (idempotent).
    TxnCommit {
        /// Transaction id.
        txn_id: u64,
    },
    /// Abort decision for a prepared transaction (idempotent).
    TxnAbort {
        /// Transaction id.
        txn_id: u64,
    },
}

impl ZkRequest {
    /// Read-only requests are served locally without touching the leader —
    /// the property behind ZooKeeper's read scaling (paper Fig 7d).
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            ZkRequest::GetData { .. }
                | ZkRequest::Exists { .. }
                | ZkRequest::GetChildren { .. }
                | ZkRequest::GetChildrenData { .. }
                | ZkRequest::WarmChildren { .. }
                | ZkRequest::Ping
        )
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkResponse {
    /// Session established.
    Connected {
        /// The new session id.
        session: u64,
    },
    /// Session closed.
    Closed,
    /// Create succeeded; the actual path (sequential suffix included).
    Created {
        /// Actual znode path.
        path: String,
    },
    /// Delete succeeded.
    Deleted,
    /// SetData succeeded; the new stat.
    Stat(Stat),
    /// GetData result.
    Data {
        /// Payload.
        data: Bytes,
        /// Current stat.
        stat: Stat,
    },
    /// Exists result (`None` = no node; *not* an error, per ZooKeeper).
    ExistsResult(Option<Stat>),
    /// GetChildren result.
    Children {
        /// Sorted child names.
        names: Vec<String>,
        /// Parent stat.
        stat: Stat,
    },
    /// GetChildrenData result: each child with its payload and stat.
    ChildrenData {
        /// Sorted `(name, data, stat)` triples.
        entries: Vec<(String, Bytes, Stat)>,
    },
    /// WarmChildren result: the listing plus the parent's own stat (so a
    /// cache can install the children entry alongside the child data).
    /// Watches were installed server-side before this reply was sent.
    /// Client-side, [`crate::WarmedDir`] names this payload shape.
    WarmedChildren {
        /// Sorted `(name, data, stat)` triples.
        entries: Vec<(String, Bytes, Stat)>,
        /// Parent stat.
        stat: Stat,
    },
    /// Multi succeeded.
    MultiResults(Vec<MultiResult>),
    /// Sync complete; the zxid this server has applied up to.
    Synced {
        /// Applied zxid (raw form).
        zxid: u64,
        /// Whether this barrier rode an already-open proposal instead of
        /// paying for its own ZAB round (see [`ZkRequest::Sync`]).
        coalesced: bool,
    },
    /// Ping reply with the server's applied zxid.
    Pong {
        /// Applied zxid (raw form).
        zxid: u64,
        /// A staleness lease, when the serving replica holds fresh enough
        /// evidence of the leader's authority to grant one.
        lease: Option<LeaseGrant>,
    },
    /// TxnPrepare succeeded: the ops validated and their paths are fenced.
    Prepared,
    /// TxnCommit applied the prepared slice.
    Committed,
    /// TxnAbort discarded the prepared slice.
    Aborted,
    /// A decision arrived for a txn id this shard holds no prepared slice
    /// for: it was already decided here (or never prepared). Distinguishable
    /// from a real apply so recovery can tell "done" from "no-op".
    TxnUnknown,
    /// The request failed.
    Error(ZkError),
}

impl ZkResponse {
    /// Extract the error, if this is one.
    pub fn err(&self) -> Option<ZkError> {
        match self {
            ZkResponse::Error(e) => Some(*e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_classification() {
        assert!(ZkRequest::GetData { path: "/a".into(), watch: false }.is_read());
        assert!(ZkRequest::Exists { path: "/a".into(), watch: true }.is_read());
        assert!(ZkRequest::GetChildren { path: "/a".into(), watch: false }.is_read());
        assert!(ZkRequest::WarmChildren { path: "/a".into() }.is_read());
        assert!(ZkRequest::Ping.is_read());
        assert!(!ZkRequest::Sync { coalesce: false }.is_read(), "sync consults the leader");
        assert!(!ZkRequest::Sync { coalesce: true }.is_read(), "coalesced sync too");
        assert!(!ZkRequest::Create {
            path: "/a".into(),
            data: Bytes::new(),
            mode: CreateMode::Persistent
        }
        .is_read());
        assert!(!ZkRequest::Multi { ops: vec![] }.is_read());
    }

    #[test]
    fn watch_and_options_compose() {
        assert!(Watch::Set.is_set());
        assert!(!Watch::None.is_set());
        assert_eq!(Watch::from(true), Watch::Set);
        assert_eq!(Watch::default(), Watch::None);
        let opts =
            ClientOptions::at(2).with_failover().with_consistency(ReadConsistency::SyncThenLocal);
        assert_eq!(opts.server, 2);
        assert!(opts.failover);
        assert_eq!(opts.consistency, ReadConsistency::SyncThenLocal);
        assert_eq!(ClientOptions::default().consistency, ReadConsistency::Local);
    }

    #[test]
    fn response_err_extraction() {
        assert_eq!(ZkResponse::Error(ZkError::NoNode).err(), Some(ZkError::NoNode));
        assert_eq!(ZkResponse::Deleted.err(), None);
    }
}
