//! One builder for every ensemble shape — the single entry point that
//! replaced the six `start*` constructors that had accreted on
//! [`ThreadCluster`] and [`crate::tcp::TcpCluster`].
//!
//! ```
//! use dufs_coord::cluster::ClusterBuilder;
//!
//! let cluster = ClusterBuilder::new().voters(3).threads();
//! # cluster.shutdown();
//! ```

use std::path::{Path, PathBuf};

use dufs_net::NetConfig;
use dufs_zab::ZabConfig;

use crate::runtime::ThreadCluster;
use crate::sharded::ShardedCluster;
use crate::tcp::TcpCluster;

/// Builder for a coordination ensemble. Configure the membership and
/// tuning, then pick a runtime with [`ClusterBuilder::threads`]
/// (in-process, crossbeam channels) or [`ClusterBuilder::tcp`] (real
/// sockets on localhost).
#[derive(Debug, Clone, Default)]
pub struct ClusterBuilder {
    voters: Option<usize>,
    observers: usize,
    zab: ZabConfig,
    net: NetConfig,
    wal_dir: Option<PathBuf>,
    shards: usize,
}

impl ClusterBuilder {
    /// A builder for the default shape: 3 voters, no observers, default
    /// group-commit tuning, volatile state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of voting servers (default 3).
    pub fn voters(mut self, n: usize) -> Self {
        self.voters = Some(n);
        self
    }

    /// Number of non-voting read replicas, with ids
    /// `voters..voters+observers` (default 0).
    pub fn observers(mut self, n: usize) -> Self {
        self.observers = n;
        self
    }

    /// Group-commit tuning for the write path (default
    /// [`ZabConfig::default`], i.e. no batching).
    pub fn zab(mut self, zab: ZabConfig) -> Self {
        self.zab = zab;
        self
    }

    /// Socket tuning for the TCP runtime. Ignored by
    /// [`ClusterBuilder::threads`], which has no sockets.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Make the ensemble durable: each server runs a file-backed
    /// write-ahead log under `dir/server-<id>` and fsyncs every replicated
    /// batch before acknowledging it. An ensemble started over an existing
    /// directory recovers its state from disk (newest valid checkpoint +
    /// log-tail replay).
    pub fn durable(mut self, dir: impl AsRef<Path>) -> Self {
        self.wal_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Start the ensemble on OS threads with in-process channel networking
    /// — the runtime used by examples and functional tests.
    pub fn threads(self) -> ThreadCluster {
        ThreadCluster::start_inner(self.voters.unwrap_or(3), self.observers, self.zab, self.wal_dir)
    }

    /// Start the ensemble as TCP servers on ephemeral localhost ports —
    /// real sockets, real framing, the runtime the network benchmarks use.
    pub fn tcp(self) -> TcpCluster {
        TcpCluster::start_inner(
            self.voters.unwrap_or(3),
            self.observers,
            self.zab,
            self.net,
            self.wal_dir,
        )
    }

    /// Number of independent shard ensembles for the sharded starters
    /// (default 1). Each shard is a full ensemble of the configured shape;
    /// a durable sharded cluster puts shard `k` under `dir/shard-<k>`.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n > 0, "a sharded cluster needs at least one shard");
        self.shards = n;
        self
    }

    /// Start `shards` thread-runtime ensembles behind one sharded
    /// namespace (see [`crate::sharded`]).
    pub fn sharded_threads(self) -> ShardedCluster<ThreadCluster> {
        let shards = (0..self.shards.max(1))
            .map(|k| {
                ThreadCluster::start_inner(
                    self.voters.unwrap_or(3),
                    self.observers,
                    self.zab,
                    self.shard_wal_dir(k),
                )
            })
            .collect();
        ShardedCluster::from_shards(shards).expect("bootstrap shard config")
    }

    /// Start `shards` TCP ensembles behind one sharded namespace.
    pub fn sharded_tcp(self) -> ShardedCluster<TcpCluster> {
        let shards = (0..self.shards.max(1))
            .map(|k| {
                TcpCluster::start_inner(
                    self.voters.unwrap_or(3),
                    self.observers,
                    self.zab,
                    self.net,
                    self.shard_wal_dir(k),
                )
            })
            .collect();
        ShardedCluster::from_shards(shards).expect("bootstrap shard config")
    }

    fn shard_wal_dir(&self, shard: usize) -> Option<PathBuf> {
        self.wal_dir.as_ref().map(|d| d.join(format!("shard-{shard}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_three_volatile_voters() {
        let b = ClusterBuilder::new();
        assert_eq!(b.voters, None);
        assert_eq!(b.observers, 0);
        assert!(b.wal_dir.is_none());
    }

    #[test]
    fn builder_composes() {
        let b = ClusterBuilder::new()
            .voters(5)
            .observers(2)
            .zab(ZabConfig::batched(8, 2))
            .durable("/tmp/never-started");
        assert_eq!(b.voters, Some(5));
        assert_eq!(b.observers, 2);
        assert_eq!(b.wal_dir.as_deref(), Some(Path::new("/tmp/never-started")));
    }
}
