//! The coordination server: ZAB replication + znode tree + sessions +
//! watches, as one pure state machine.
//!
//! Runtimes (the discrete-event simulator in `dufs-mdtest`, the threaded
//! cluster in [`crate::runtime`]) feed [`ServerIn`] events in and execute
//! the returned [`ServerOut`] actions. All clocking comes in through the
//! `now_ns` argument, so replicas stay deterministic and the same code runs
//! in virtual or real time.

use std::collections::HashMap;

use bytes::Bytes;
use dufs_wal::{LogStorage, Recovered, Wal, WalConfig, WalError, WalResult};
use dufs_zab::{
    DurableState, EnsembleConfig, PeerId, PersistEvent, Role, ZabAction, ZabConfig, ZabMsg,
    ZabPeer, ZabTimer, Zxid,
};
use dufs_zkstore::{path as zkpath, snapshot, ChangeEvent, DataTree, MultiOp, ZkError};

use crate::api::{LeaseGrant, ZkRequest, ZkResponse};
use crate::txn::{Txn, TxnOp};
use crate::watch::{WatchKind, WatchManager, WatchNotification};

/// Opaque client handle assigned by the hosting runtime.
pub type ClientId = u64;

/// Session liveness window: a session silent for this long is expired and
/// its ephemerals deleted.
pub const SESSION_TIMEOUT_MS: u64 = 30_000;
/// How often each server sweeps its sessions for expiry.
pub const SESSION_SWEEP_MS: u64 = 5_000;
/// Checkpoint the znode tree and compact the replication log every this
/// many applied transactions (ZooKeeper's periodic fuzzy snapshot; keeps
/// log memory bounded — the §VII memory concern).
pub const CHECKPOINT_EVERY: u64 = 1_000;
/// Staleness-lease window: a replica grants leases only while its quorum
/// authority evidence is younger than this, so a leased client's cached
/// read is never staler than `LEASE_MS` (plus the margin below). Sized to
/// cover several leader ping rounds on both runtimes (100 virtual-ms sim
/// pings, 300 real-ms dilated live pings) so healthy clusters renew
/// continuously, while any partition stops grants within one window.
pub const LEASE_MS: u64 = 2_000;
/// Conservative haircut applied to every grant: covers message transit and
/// clock-reading skew between the evidence instant and the client's receipt
/// timestamp (each hop already decays the ttl by its own elapsed time).
pub const LEASE_MARGIN_MS: u64 = 200;

/// Messages between coordination servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordMsg {
    /// Replication-protocol traffic.
    Zab(ZabMsg<Txn>),
    /// Follower → leader: propose this mutation on my behalf.
    Forward {
        /// Session issuing the mutation.
        session: u64,
        /// The mutation.
        op: TxnOp,
        /// The server that owns the client connection.
        origin: PeerId,
        /// Origin-local pending-request tag.
        tag: u64,
    },
    /// Forward bounced: the receiver is not the leader and knows no better
    /// target. The origin fails the pending request so its client retries.
    ForwardReject {
        /// The origin's pending-request tag.
        tag: u64,
    },
    /// Leader → followers, alongside each heartbeat ping: lease authority.
    /// "`age_ms` milliseconds ago I held evidence that a quorum still
    /// followed me, and my committed watermark was `commit_to`." A follower
    /// that has applied up to `commit_to` may anchor staleness leases at
    /// (receipt time − `age_ms`): no rival leader can have committed
    /// anything before that instant that this follower hasn't applied.
    LeaseAuth {
        /// The leader's committed zxid (raw) when the evidence was taken.
        commit_to: u64,
        /// Age of the leader's quorum evidence when this message was sent.
        age_ms: u32,
    },
}

/// Timers the server arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoordTimer {
    /// Replication-layer timer.
    Zab(ZabTimer),
    /// Periodic session-expiry sweep.
    SessionSweep,
}

/// Input events.
#[derive(Debug, Clone)]
pub enum ServerIn {
    /// A request from a locally connected client.
    Client {
        /// Runtime-assigned client handle.
        client: ClientId,
        /// Client-chosen request id, echoed in the response.
        req_id: u64,
        /// The client's session (0 until `Connect` completes).
        session: u64,
        /// The request.
        req: ZkRequest,
    },
    /// A message from a peer server.
    Peer {
        /// Sending peer.
        from: PeerId,
        /// The message.
        msg: CoordMsg,
    },
    /// A timer armed earlier has fired.
    Timer(CoordTimer),
}

/// Output actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerOut {
    /// Respond to a client request.
    Client {
        /// Target client.
        client: ClientId,
        /// Echo of the request id.
        req_id: u64,
        /// The response.
        resp: ZkResponse,
    },
    /// Send to a peer server.
    Peer {
        /// Destination.
        to: PeerId,
        /// The message.
        msg: CoordMsg,
    },
    /// Arm a timer.
    Timer {
        /// Which timer.
        timer: CoordTimer,
        /// Delay in milliseconds.
        after_ms: u64,
    },
    /// Deliver a watch notification to a client.
    Watch {
        /// Target client.
        client: ClientId,
        /// The notification.
        note: WatchNotification,
    },
}

struct Pending {
    client: ClientId,
    req_id: u64,
}

/// A [`CoordMsg::LeaseAuth`] observation parked until the local replica
/// has applied up to its commit watermark.
#[derive(Debug, Clone, Copy)]
struct LeaseAuthObs {
    receipt_ms: u64,
    commit_to: u64,
    age_ms: u32,
}

/// The staleness-lease clock: tracks how fresh this server's evidence of
/// the current leader's authority is, on both sides of the protocol.
///
/// *Leader side* — every inbound `Pong`/`Ack`/`AckSync` from a voter proves
/// that voter still followed this leader when it sent the message (it had
/// not promised a higher epoch, so no rival leader was established before
/// that instant). The (quorum−1)-th most recent distinct-voter proof,
/// together with the leader itself, pins the last moment a full quorum
/// provably followed — before which no other leader can have committed
/// anything.
///
/// *Follower side* — the leader ships that evidence age with each ping
/// ([`CoordMsg::LeaseAuth`]). An observation only becomes usable once the
/// local replica has applied up to the watermark the leader had committed
/// at evidence time: from then on, "nothing committed cluster-wide before
/// (receipt − age) is missing from this replica" holds, and that instant
/// anchors grants. A deposed leader keeps pinging its minority for a few
/// windows before abdicating, which is exactly why naive ping receipt
/// cannot anchor a lease — the quorum-evidence age is what expires.
#[derive(Debug, Default)]
struct LeaseClock {
    /// Leader side: newest proof-of-followership per voter peer (ms).
    evidence: HashMap<PeerId, u64>,
    /// Follower side: observations awaiting the apply watermark.
    pending_auth: Vec<LeaseAuthObs>,
    /// Follower side: newest matured authority anchor (ms).
    anchor_ms: Option<u64>,
}

impl LeaseClock {
    /// Leader side: record proof that `from` still followed us at `now_ms`.
    fn record_evidence(&mut self, from: PeerId, now_ms: u64) {
        let e = self.evidence.entry(from).or_insert(now_ms);
        *e = (*e).max(now_ms);
    }

    /// Leader side: age of the newest instant at which a full quorum
    /// provably followed this leader. `None` until enough distinct voters
    /// have reported since the last reset. A single-voter ensemble is its
    /// own quorum: age 0.
    fn evidence_age(
        &self,
        now_ms: u64,
        me: PeerId,
        voters: &[PeerId],
        quorum: usize,
    ) -> Option<u64> {
        let needed = quorum.saturating_sub(1); // the leader vouches for itself
        if needed == 0 {
            return Some(0);
        }
        let mut times: Vec<u64> = voters
            .iter()
            .filter(|&&p| p != me)
            .filter_map(|p| self.evidence.get(p).copied())
            .collect();
        if times.len() < needed {
            return None;
        }
        times.sort_unstable_by(|a, b| b.cmp(a));
        Some(now_ms.saturating_sub(times[needed - 1]))
    }

    /// Follower side: park a [`CoordMsg::LeaseAuth`] observation.
    fn record_auth(&mut self, receipt_ms: u64, commit_to: u64, age_ms: u32) {
        self.pending_auth.push(LeaseAuthObs { receipt_ms, commit_to, age_ms });
        // Bounded: only the newest few matter (one per leader ping).
        if self.pending_auth.len() > 16 {
            self.pending_auth.remove(0);
        }
    }

    /// Follower side: promote every observation whose commit watermark the
    /// local replica has now applied into the grant anchor.
    fn mature(&mut self, last_applied: u64) {
        let mut anchor = self.anchor_ms;
        self.pending_auth.retain(|o| {
            if o.commit_to <= last_applied {
                let a = o.receipt_ms.saturating_sub(o.age_ms as u64);
                anchor = Some(anchor.map_or(a, |b| b.max(a)));
                false
            } else {
                true
            }
        });
        self.anchor_ms = anchor;
    }

    /// Remaining grantable ttl for an authority anchored at `anchor_ms`,
    /// after the safety margin. `None` when the window is exhausted.
    fn ttl_from_anchor(anchor_ms: u64, now_ms: u64) -> Option<u32> {
        let age = now_ms.saturating_sub(anchor_ms);
        let ttl = LEASE_MS.saturating_sub(age).saturating_sub(LEASE_MARGIN_MS);
        (ttl > 0).then_some(ttl as u32)
    }

    /// Forget everything — leader change in progress, or crash.
    fn reset(&mut self) {
        self.evidence.clear();
        self.pending_auth.clear();
        self.anchor_ms = None;
    }
}

/// Turn raw WAL recovery output into typed ZAB durable state: pick the
/// newest snapshot that still zkstore-decodes (older checkpoints are kept
/// as fallbacks exactly for this), then decode every log payload above its
/// watermark. A CRC-valid record that fails the [`Txn`] codec is real
/// corruption — recovery refuses rather than replaying a guessed history.
fn decode_recovered(rec: &Recovered) -> WalResult<DurableState<Txn>> {
    let mut snapshot = None;
    for (zxid, blob) in &rec.snapshots {
        if snapshot::decode(blob).is_ok() {
            snapshot = Some((Zxid::from_u64(*zxid), blob.clone()));
            break; // newest-first: take the first that decodes
        }
    }
    let snap_zxid = snapshot.as_ref().map(|(z, _)| z.as_u64()).unwrap_or(0);
    let mut log = Vec::with_capacity(rec.entries.len());
    for (zxid, payload) in &rec.entries {
        if *zxid <= snap_zxid {
            continue;
        }
        let txn = Txn::decode(payload)
            .map_err(|_| WalError::Corrupt(format!("undecodable txn at zxid {zxid:#x}")))?;
        log.push((Zxid::from_u64(*zxid), txn));
    }
    Ok(DurableState { epoch: rec.epoch, snapshot, log })
}

/// Rebuild the origin-local tag and session counters from the recovered
/// log, so a restarted server never re-mints an id visible in the surviving
/// history. (Ids minted below the last checkpoint are no longer visible;
/// their reuse is harmless for tags — the pending map is empty after a
/// restart — and bounded for sessions by the checkpoint interval.)
fn watermarks(me: PeerId, log: &[(Zxid, Txn)]) -> (u64, u64) {
    let mut next_tag = 1u64;
    let mut next_session = 1u64;
    for (_, txn) in log {
        if txn.origin == me {
            next_tag = next_tag.max(txn.tag + 1);
        }
        if let TxnOp::CreateSession { session } = txn.op {
            if session >> 40 == u64::from(me.0) {
                next_session = next_session.max((session & ((1 << 40) - 1)) + 1);
            }
        }
    }
    (next_tag, next_session)
}

struct SessionInfo {
    client: ClientId,
    last_heard_ms: u64,
}

/// A cross-shard transaction slice parked between prepare and decision.
///
/// This is the *in-memory index* only: the authoritative copy lives in the
/// tree itself as a `/__txn/<id>` marker znode, so it rides through WAL
/// replay, checkpoints and ZAB snapshot installs for free and is rebuilt
/// from the tree by [`CoordServer::rebuild_txn_state`].
struct PreparedTxn {
    session: u64,
    ops: Vec<MultiOp>,
    participants: Vec<u32>,
}

/// Namespace prefix under which prepared-transaction markers live. Paths
/// under it are infrastructure, not user namespace — the sharded content
/// digest and mdtest walks exclude them.
pub const TXN_PREFIX: &str = "/__txn";

fn txn_marker_path(txn_id: u64) -> String {
    format!("{TXN_PREFIX}/{txn_id:016x}")
}

fn op_path(op: &MultiOp) -> &str {
    match op {
        MultiOp::Create { path, .. }
        | MultiOp::Delete { path, .. }
        | MultiOp::SetData { path, .. }
        | MultiOp::Check { path, .. } => path,
    }
}

/// Whether `path` or any of its ancestors carries a fence owned by a
/// transaction other than `exempt`. Creates must check the whole ancestor
/// chain: materializing a node *under* a directory fenced for deletion
/// would make the prepared delete fail at commit time.
fn fenced_for_create(fences: &HashMap<String, u64>, path: &str, exempt: Option<u64>) -> bool {
    let clashes = |p: &str| fences.get(p).is_some_and(|&o| Some(o) != exempt);
    if clashes(path) {
        return true;
    }
    let mut cur = path;
    while let Some(par) = zkpath::parent(cur) {
        if clashes(par) {
            return true;
        }
        cur = par;
    }
    false
}

/// One coordination server (one member of the ensemble).
pub struct CoordServer {
    me: PeerId,
    config: EnsembleConfig,
    zcfg: ZabConfig,
    peer: ZabPeer<Txn>,
    tree: DataTree,
    watches: WatchManager<ClientId>,
    /// Write requests originated here, awaiting commit.
    pending: HashMap<u64, Pending>,
    next_tag: u64,
    /// Tag of the newest sync barrier proposed here and not yet applied;
    /// coalescible `Sync { coalesce: true }` requests ride it instead of
    /// paying for their own ZAB round.
    open_barrier: Option<u64>,
    /// Barrier tag → clients riding that barrier (answered in `apply`).
    barrier_riders: HashMap<u64, Vec<Pending>>,
    /// Staleness-lease authority tracking (see [`LeaseClock`]).
    lease: LeaseClock,
    /// Wall-ish clock of the event being handled (ms), for lease ages.
    now_ms: u64,
    /// Barriers answered by riding another session's no-op proposal.
    barriers_coalesced: u64,
    /// Lease grants issued to clients (Pong piggyback and idle push).
    leases_granted: u64,
    /// Sessions whose clients are connected to this server.
    sessions: HashMap<u64, SessionInfo>,
    next_session: u64,
    last_applied: u64,
    /// Count of transactions applied (for perf accounting).
    applied_count: u64,
    /// Prepared (undecided) cross-shard transactions, indexed by txn id —
    /// an in-memory mirror of the `/__txn/*` marker znodes.
    prepared_txns: HashMap<u64, PreparedTxn>,
    /// Path → owning txn id for every path touched by a prepared
    /// transaction. Normal writes against a fenced path are rejected with
    /// [`ZkError::TxnBusy`] until the decision clears the fence.
    txn_fences: HashMap<String, u64>,
    /// Durable write-ahead log; `None` runs the server purely in memory
    /// (the pre-WAL behaviour, used by the simulator's baseline figures).
    wal: Option<Wal>,
    /// Set when a WAL write or fsync failed: the durable suffix is unknown,
    /// so the server self-fences — it drops every input (and every output
    /// of the failing event) until [`CoordServer::on_restart`] re-derives
    /// its state from disk. Acting on an un-durable promise could ack a
    /// transaction a crash then forgets.
    fenced: bool,
}

impl CoordServer {
    /// Build a server; returns startup actions (election traffic and the
    /// session sweep timer). Uses the default [`ZabConfig`]: one broadcast
    /// round per transaction.
    pub fn new(me: PeerId, config: EnsembleConfig) -> (Self, Vec<ServerOut>) {
        Self::new_with_config(me, config, ZabConfig::default())
    }

    /// Build a server with explicit group-commit tuning. With
    /// `zab.max_batch > 1` the leader accumulates client writes submitted
    /// while a broadcast round is in flight and replicates them as one
    /// batch; responses still fan back out per pending tag in `apply`.
    pub fn new_with_config(
        me: PeerId,
        config: EnsembleConfig,
        zab: ZabConfig,
    ) -> (Self, Vec<ServerOut>) {
        let (peer, zab_acts) = ZabPeer::new_with_config(me, config.clone(), zab);
        let mut s = CoordServer {
            me,
            config,
            zcfg: zab,
            peer,
            tree: DataTree::new(),
            watches: WatchManager::new(),
            pending: HashMap::new(),
            next_tag: 1,
            open_barrier: None,
            barrier_riders: HashMap::new(),
            lease: LeaseClock::default(),
            now_ms: 0,
            barriers_coalesced: 0,
            leases_granted: 0,
            sessions: HashMap::new(),
            next_session: 1,
            last_applied: 0,
            applied_count: 0,
            prepared_txns: HashMap::new(),
            txn_fences: HashMap::new(),
            wal: None,
            fenced: false,
        };
        let mut out = Vec::new();
        s.absorb_zab(zab_acts, &mut out);
        out.push(ServerOut::Timer { timer: CoordTimer::SessionSweep, after_ms: SESSION_SWEEP_MS });
        (s, out)
    }

    /// Build a server backed by a write-ahead log: ZAB appends are fsynced
    /// (one group fsync per batch) *before* the dependent protocol messages
    /// go out, checkpoints mirror into the log directory, and a cold start
    /// recovers from the newest decodable snapshot plus the log tail.
    ///
    /// If `storage` already holds a log (a previous incarnation's), the
    /// server resumes from it.
    pub fn new_durable(
        me: PeerId,
        config: EnsembleConfig,
        zab: ZabConfig,
        storage: Box<dyn LogStorage>,
    ) -> WalResult<(Self, Vec<ServerOut>)> {
        let (mut wal, rec) = Wal::open(storage, WalConfig::default())?;
        let durable = decode_recovered(&rec)?;
        let (next_tag, next_session) = watermarks(me, &durable.log);
        let (peer, zab_acts) = ZabPeer::recover(me, config.clone(), zab, durable);
        wal.sync()?; // recovery truncation + fresh tail segment are durable
        let mut s = CoordServer {
            me,
            config,
            zcfg: zab,
            peer,
            tree: DataTree::new(),
            watches: WatchManager::new(),
            pending: HashMap::new(),
            next_tag,
            open_barrier: None,
            barrier_riders: HashMap::new(),
            lease: LeaseClock::default(),
            now_ms: 0,
            barriers_coalesced: 0,
            leases_granted: 0,
            sessions: HashMap::new(),
            next_session,
            last_applied: 0,
            applied_count: 0,
            prepared_txns: HashMap::new(),
            txn_fences: HashMap::new(),
            wal: Some(wal),
            fenced: false,
        };
        let mut out = Vec::new();
        s.absorb_zab(zab_acts, &mut out);
        out.push(ServerOut::Timer { timer: CoordTimer::SessionSweep, after_ms: SESSION_SWEEP_MS });
        Ok((s, out))
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// This server's peer id.
    pub fn id(&self) -> PeerId {
        self.me
    }
    /// The replicated tree (local replica) — read-only.
    pub fn tree(&self) -> &DataTree {
        &self.tree
    }
    /// Whether this server is the established leader.
    pub fn is_leader(&self) -> bool {
        self.peer.is_established_leader()
    }
    /// Replication role.
    pub fn role(&self) -> Role {
        self.peer.role()
    }
    /// Best guess at the current leader.
    pub fn leader_hint(&self) -> Option<PeerId> {
        self.peer.leader_hint()
    }
    /// Raw zxid applied up to.
    pub fn last_applied(&self) -> u64 {
        self.last_applied
    }
    /// Raw zxid the replication layer has committed up to (may run ahead
    /// of [`CoordServer::last_applied`] while deliveries drain).
    pub fn committed(&self) -> u64 {
        self.peer.committed().as_u64()
    }
    /// Number of transactions applied.
    pub fn applied_count(&self) -> u64 {
        self.applied_count
    }
    /// Replication-log length after compaction (diagnostics).
    pub fn log_len(&self) -> usize {
        self.peer.log_len()
    }
    /// The zxid covered by the last checkpoint.
    pub fn snapshot_zxid(&self) -> u64 {
        self.peer.snapshot_zxid().as_u64()
    }
    /// Number of sessions connected here.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }
    /// Whether this server runs with a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }
    /// Number of prepared (undecided) cross-shard transactions parked here.
    pub fn prepared_txn_count(&self) -> usize {
        self.prepared_txns.len()
    }
    /// Whether the server has self-fenced after a WAL failure.
    pub fn is_fenced(&self) -> bool {
        self.fenced
    }
    /// Barriers answered by riding another session's no-op proposal.
    pub fn barriers_coalesced(&self) -> u64 {
        self.barriers_coalesced
    }
    /// Lease grants issued to clients so far.
    pub fn leases_granted(&self) -> u64 {
        self.leases_granted
    }

    /// The staleness lease this server can currently grant, if any: a
    /// leader grants from its own quorum evidence, a follower from the
    /// newest matured [`CoordMsg::LeaseAuth`] anchor. `None` whenever the
    /// authority window (minus margin) is exhausted — callers must then
    /// fall back to the sync-barrier path. Hosting runtimes may call this
    /// between events (e.g. to piggyback grants on idle heartbeat slots).
    pub fn lease_grant(&mut self, now_ns: u64) -> Option<LeaseGrant> {
        self.now_ms = self.now_ms.max(now_ns / 1_000_000);
        let now_ms = self.now_ms;
        let anchor = if self.peer.is_established_leader() {
            let age = self.lease.evidence_age(
                now_ms,
                self.me,
                self.config.peers(),
                self.config.quorum(),
            )?;
            now_ms.saturating_sub(age)
        } else if matches!(self.peer.role(), Role::Following { .. }) {
            self.lease.anchor_ms?
        } else {
            return None;
        };
        let ttl_ms = LeaseClock::ttl_from_anchor(anchor, now_ms)?;
        self.leases_granted += 1;
        Some(LeaseGrant { ttl_ms, epoch: self.peer.epoch() })
    }
    /// Total fsyncs the WAL has issued (0 without one). The simulator
    /// charges `FSYNC` service time per increment of this counter.
    pub fn wal_sync_count(&self) -> u64 {
        self.wal.as_ref().map(|w| w.sync_count()).unwrap_or(0)
    }
    /// Total records the WAL has appended (0 without one).
    pub fn wal_append_count(&self) -> u64 {
        self.wal.as_ref().map(|w| w.append_count()).unwrap_or(0)
    }
    /// Live WAL segment count (0 without one; diagnostics — checkpointing
    /// must keep this bounded).
    pub fn wal_segment_count(&self) -> usize {
        self.wal.as_ref().map(|w| w.segment_count()).unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Event entry point
    // ------------------------------------------------------------------

    /// Feed one input event; returns the actions to execute. `now_ns` is
    /// the host's clock (virtual or real).
    pub fn handle(&mut self, now_ns: u64, input: ServerIn) -> Vec<ServerOut> {
        if self.fenced {
            // A WAL write failed earlier: the durable suffix is unknown, so
            // the server behaves as crashed until restarted from disk.
            return Vec::new();
        }
        // Lease ages are measured on the host clock; `absorb_zab` (which
        // has no clock argument) reads the event's timestamp from here.
        self.now_ms = self.now_ms.max(now_ns / 1_000_000);
        let mut out = Vec::new();
        match input {
            ServerIn::Client { client, req_id, session, req } => {
                self.handle_client(now_ns, client, req_id, session, req, &mut out)
            }
            ServerIn::Peer { from, msg } => self.handle_peer(now_ns, from, msg, &mut out),
            ServerIn::Timer(t) => self.handle_timer(now_ns, t, &mut out),
        }
        if self.fenced {
            // The event that fenced us may have queued sends that promise
            // un-durable state: drop everything it produced.
            return Vec::new();
        }
        out
    }

    /// Crash: volatile state (tree replica, watches, sessions, pending) is
    /// lost. In-memory mode the ZAB peer's log fields survive (ZooKeeper's
    /// disk, abstracted); in durable mode the storage backend drops every
    /// unsynced byte and recovery at restart comes from the log itself.
    pub fn on_crash(&mut self) {
        self.peer.on_crash();
        if let Some(wal) = self.wal.as_mut() {
            wal.crash();
        }
        self.tree = DataTree::new();
        self.watches = WatchManager::new();
        self.pending.clear();
        self.open_barrier = None;
        self.barrier_riders.clear();
        self.lease.reset();
        self.sessions.clear();
        self.prepared_txns.clear();
        self.txn_fences.clear();
        self.last_applied = 0;
    }

    /// Restart after a crash: replay the durable history into a fresh tree
    /// and rejoin the ensemble. Durable servers re-derive *everything* from
    /// their write-ahead log (cold start); in-memory servers replay the ZAB
    /// peer's surviving fields.
    pub fn on_restart(&mut self, now_ns: u64) -> Vec<ServerOut> {
        let _ = now_ns;
        self.fenced = false;
        let mut out = Vec::new();
        if self.wal.is_some() {
            let mut wal = self.wal.take().expect("checked");
            match wal.reopen().and_then(|rec| {
                wal.sync()?;
                decode_recovered(&rec)
            }) {
                Ok(durable) => {
                    let (next_tag, next_session) = watermarks(self.me, &durable.log);
                    self.next_tag = next_tag;
                    self.next_session = next_session;
                    let (peer, acts) =
                        ZabPeer::recover(self.me, self.config.clone(), self.zcfg, durable);
                    self.peer = peer;
                    self.wal = Some(wal);
                    self.absorb_zab(acts, &mut out);
                }
                Err(_) => {
                    // Storage is unreadable (or the recovery fsync failed):
                    // stay fenced until the next restart attempt; serving
                    // would risk a forked history. Crash the half-reopened
                    // WAL so its buffered tail-segment header cannot leak
                    // into a sealed segment later.
                    wal.crash();
                    self.wal = Some(wal);
                    self.fenced = true;
                    return Vec::new();
                }
            }
        } else {
            let acts = self.peer.on_restart();
            self.absorb_zab(acts, &mut out);
        }
        out.push(ServerOut::Timer { timer: CoordTimer::SessionSweep, after_ms: SESSION_SWEEP_MS });
        if self.fenced {
            return Vec::new();
        }
        out
    }

    // ------------------------------------------------------------------
    // Client requests
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn handle_client(
        &mut self,
        now_ns: u64,
        client: ClientId,
        req_id: u64,
        session: u64,
        req: ZkRequest,
        out: &mut Vec<ServerOut>,
    ) {
        if let Some(info) = self.sessions.get_mut(&session) {
            info.last_heard_ms = now_ns / 1_000_000;
            info.client = client;
        }
        match req {
            // ---- reads: served from the local replica ----
            ZkRequest::GetData { path, watch } => {
                let resp = match self.tree.get_data(&path) {
                    Ok((data, stat)) => {
                        if watch {
                            self.watches.register(&path, WatchKind::Data, client);
                        }
                        ZkResponse::Data { data, stat }
                    }
                    Err(e) => ZkResponse::Error(e),
                };
                out.push(ServerOut::Client { client, req_id, resp });
            }
            ZkRequest::Exists { path, watch } => {
                let resp = match self.tree.exists(&path) {
                    Ok(stat) => {
                        if watch {
                            self.watches.register(&path, WatchKind::Exists, client);
                        }
                        ZkResponse::ExistsResult(stat)
                    }
                    Err(e) => ZkResponse::Error(e),
                };
                out.push(ServerOut::Client { client, req_id, resp });
            }
            ZkRequest::GetChildren { path, watch } => {
                let resp = match self.tree.get_children(&path) {
                    Ok((names, stat)) => {
                        if watch {
                            self.watches.register(&path, WatchKind::Children, client);
                        }
                        ZkResponse::Children { names, stat }
                    }
                    Err(e) => ZkResponse::Error(e),
                };
                out.push(ServerOut::Client { client, req_id, resp });
            }
            ZkRequest::GetChildrenData { path } => {
                let resp = match self.tree.get_children(&path) {
                    Ok((names, _)) => {
                        let entries = names
                            .into_iter()
                            .filter_map(|n| {
                                let child = if path == "/" {
                                    format!("/{n}")
                                } else {
                                    format!("{path}/{n}")
                                };
                                self.tree.get_data(&child).ok().map(|(d, s)| (n, d, s))
                            })
                            .collect();
                        ZkResponse::ChildrenData { entries }
                    }
                    Err(e) => ZkResponse::Error(e),
                };
                out.push(ServerOut::Client { client, req_id, resp });
            }
            ZkRequest::WarmChildren { path } => {
                // READDIRPLUS bulk warm: the GetChildrenData listing, plus the
                // watches a caching client would otherwise need N+1 round
                // trips to leave behind — a child watch on the parent and a
                // data watch on every child that made it into the reply.
                let resp = match self.tree.get_children(&path) {
                    Ok((names, stat)) => {
                        self.watches.register(&path, WatchKind::Children, client);
                        let entries = names
                            .into_iter()
                            .filter_map(|n| {
                                let child = if path == "/" {
                                    format!("/{n}")
                                } else {
                                    format!("{path}/{n}")
                                };
                                self.tree.get_data(&child).ok().map(|(d, s)| {
                                    self.watches.register(&child, WatchKind::Data, client);
                                    (n, d, s)
                                })
                            })
                            .collect();
                        ZkResponse::WarmedChildren { entries, stat }
                    }
                    Err(e) => ZkResponse::Error(e),
                };
                out.push(ServerOut::Client { client, req_id, resp });
            }
            ZkRequest::Ping => {
                let lease = self.lease_grant(now_ns);
                out.push(ServerOut::Client {
                    client,
                    req_id,
                    resp: ZkResponse::Pong { zxid: self.last_applied, lease },
                });
            }
            // ---- sync: a no-op barrier proposed through ZAB ----
            // The barrier rides the write path (forwarded to the leader
            // like any mutation) and its response fires in `apply`, once
            // *this* replica has applied it — and, by total order,
            // everything committed before it.
            ZkRequest::Sync { coalesce } => {
                if coalesce {
                    // Ride a barrier already in flight on this replica: its
                    // no-op was proposed after every write this session has
                    // had acked on an unchanged connection (ack implies the
                    // origin replica applied the write — and it could only
                    // ack after proposing, hence before the open barrier).
                    // The client guarantees the connection is unchanged by
                    // sending `coalesce: false` after any reconnect.
                    if let Some(tag) = self.open_barrier {
                        if self.pending.contains_key(&tag) {
                            self.barrier_riders
                                .entry(tag)
                                .or_default()
                                .push(Pending { client, req_id });
                            self.barriers_coalesced += 1;
                            return;
                        }
                        self.open_barrier = None;
                    }
                }
                let tag = self.submit_write(now_ns, client, req_id, session, TxnOp::Noop, out);
                if tag.is_some() {
                    self.open_barrier = tag;
                }
            }
            // ---- session management (replicated mutations) ----
            ZkRequest::Connect => {
                let session = (u64::from(self.me.0) << 40) | self.next_session;
                self.next_session += 1;
                self.sessions
                    .insert(session, SessionInfo { client, last_heard_ms: now_ns / 1_000_000 });
                self.submit_write(
                    now_ns,
                    client,
                    req_id,
                    session,
                    TxnOp::CreateSession { session },
                    out,
                );
            }
            ZkRequest::CloseSession => {
                self.submit_write(
                    now_ns,
                    client,
                    req_id,
                    session,
                    TxnOp::CloseSession { session },
                    out,
                );
            }
            // ---- mutations: replicate through the leader ----
            ZkRequest::Create { path, data, mode } => {
                self.submit_write(
                    now_ns,
                    client,
                    req_id,
                    session,
                    TxnOp::Create { path, data, mode },
                    out,
                );
            }
            ZkRequest::Delete { path, version } => {
                self.submit_write(
                    now_ns,
                    client,
                    req_id,
                    session,
                    TxnOp::Delete { path, version },
                    out,
                );
            }
            ZkRequest::SetData { path, data, version } => {
                self.submit_write(
                    now_ns,
                    client,
                    req_id,
                    session,
                    TxnOp::SetData { path, data, version },
                    out,
                );
            }
            ZkRequest::Multi { ops } => {
                self.submit_write(now_ns, client, req_id, session, TxnOp::Multi { ops }, out);
            }
            ZkRequest::CreatePath { path, data, mode } => {
                self.submit_write(
                    now_ns,
                    client,
                    req_id,
                    session,
                    TxnOp::CreatePath { path, data, mode },
                    out,
                );
            }
            // ---- cross-shard 2PC (coordinator lives client-side) ----
            ZkRequest::TxnPrepare { txn_id, ops, participants } => {
                self.submit_write(
                    now_ns,
                    client,
                    req_id,
                    session,
                    TxnOp::Prepare2pc { txn_id, ops, participants },
                    out,
                );
            }
            ZkRequest::TxnCommit { txn_id } => {
                self.submit_write(
                    now_ns,
                    client,
                    req_id,
                    session,
                    TxnOp::Commit2pc { txn_id },
                    out,
                );
            }
            ZkRequest::TxnAbort { txn_id } => {
                self.submit_write(now_ns, client, req_id, session, TxnOp::Abort2pc { txn_id }, out);
            }
        }
    }

    fn alloc_tag(&mut self, client: ClientId, req_id: u64) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, Pending { client, req_id });
        tag
    }

    /// Propose a mutation (locally or via leader forward). Returns the
    /// pending tag while the write is in flight, `None` if it failed on the
    /// spot — sync coalescing tracks the returned tag as the open barrier.
    #[allow(clippy::too_many_arguments)]
    fn submit_write(
        &mut self,
        now_ns: u64,
        client: ClientId,
        req_id: u64,
        session: u64,
        op: TxnOp,
        out: &mut Vec<ServerOut>,
    ) -> Option<u64> {
        let tag = self.alloc_tag(client, req_id);
        let txn = Txn { session, op, origin: self.me, tag, time_ns: now_ns };
        // Sync barriers skip group-commit batching: a lone no-op waiting
        // out the Nagle timer would add flush_ms to every barrier read.
        let proposed = if matches!(txn.op, TxnOp::Noop) {
            self.peer.propose_urgent(txn.clone())
        } else {
            self.peer.propose(txn.clone())
        };
        match proposed {
            Ok(acts) => {
                self.absorb_zab(acts, out);
                // The proposal may have applied synchronously (single-node
                // ensembles): only report a tag that is still pending.
                self.pending.contains_key(&tag).then_some(tag)
            }
            Err(e) => {
                if let Some(leader) = e.leader_hint {
                    out.push(ServerOut::Peer {
                        to: leader,
                        msg: CoordMsg::Forward { session, op: txn.op, origin: self.me, tag },
                    });
                    Some(tag)
                } else {
                    self.pending.remove(&tag);
                    out.push(ServerOut::Client {
                        client,
                        req_id,
                        resp: ZkResponse::Error(ZkError::ConnectionLoss),
                    });
                    None
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Peer messages
    // ------------------------------------------------------------------

    fn handle_peer(&mut self, now_ns: u64, from: PeerId, msg: CoordMsg, out: &mut Vec<ServerOut>) {
        match msg {
            CoordMsg::Zab(m) => {
                // Lease authority evidence: a Pong/Ack/AckSync from a voter
                // proves that voter still followed this leader when it sent
                // the message — it had not promised a higher epoch, so no
                // rival leader can have been established before now.
                if self.peer.is_established_leader()
                    && self.config.peers().contains(&from)
                    && matches!(m, ZabMsg::Pong | ZabMsg::Ack { .. } | ZabMsg::AckSync { .. })
                {
                    self.lease.record_evidence(from, now_ns / 1_000_000);
                }
                let acts = self.peer.on_message(from, m);
                self.absorb_zab(acts, out);
            }
            CoordMsg::Forward { session, op, origin, tag } => {
                let txn = Txn { session, op: op.clone(), origin, tag, time_ns: now_ns };
                // Forwarded sync barriers flush immediately, same as local
                // ones in `submit_write`.
                let proposed = if matches!(txn.op, TxnOp::Noop) {
                    self.peer.propose_urgent(txn)
                } else {
                    self.peer.propose(txn)
                };
                match proposed {
                    Ok(acts) => self.absorb_zab(acts, out),
                    Err(e) => {
                        // Not the leader (anymore): pass it along if we know
                        // better, otherwise bounce so the origin can fail
                        // the request and let its client retry.
                        match e.leader_hint {
                            Some(leader) if leader != self.me => {
                                out.push(ServerOut::Peer {
                                    to: leader,
                                    msg: CoordMsg::Forward { session, op, origin, tag },
                                });
                            }
                            _ => {
                                out.push(ServerOut::Peer {
                                    to: origin,
                                    msg: CoordMsg::ForwardReject { tag },
                                });
                            }
                        }
                    }
                }
            }
            CoordMsg::ForwardReject { tag } => {
                if let Some(p) = self.pending.remove(&tag) {
                    if p.client != 0 {
                        out.push(ServerOut::Client {
                            client: p.client,
                            req_id: p.req_id,
                            resp: ZkResponse::Error(ZkError::ConnectionLoss),
                        });
                    }
                }
                // A bounced barrier takes its riders down with it; their
                // clients retry (with a fresh, uncoalesced sync if they
                // reconnected meanwhile).
                if self.open_barrier == Some(tag) {
                    self.open_barrier = None;
                }
                for p in self.barrier_riders.remove(&tag).unwrap_or_default() {
                    out.push(ServerOut::Client {
                        client: p.client,
                        req_id: p.req_id,
                        resp: ZkResponse::Error(ZkError::ConnectionLoss),
                    });
                }
            }
            CoordMsg::LeaseAuth { commit_to, age_ms } => {
                // Only trust authority claims from the leader we currently
                // follow; a deposed leader pinging its minority partition
                // fails this check as soon as we learn of the new regime
                // (and its claims expire on their own age regardless).
                if !self.peer.is_established_leader() && self.peer.leader_hint() == Some(from) {
                    self.lease.record_auth(now_ns / 1_000_000, commit_to, age_ms);
                    self.lease.mature(self.last_applied);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn handle_timer(&mut self, now_ns: u64, timer: CoordTimer, out: &mut Vec<ServerOut>) {
        match timer {
            CoordTimer::Zab(t) => {
                let acts = self.peer.on_timer(t);
                self.absorb_zab(acts, out);
            }
            CoordTimer::SessionSweep => {
                let now_ms = now_ns / 1_000_000;
                let expired: Vec<u64> = self
                    .sessions
                    .iter()
                    .filter(|(_, info)| {
                        now_ms.saturating_sub(info.last_heard_ms) > SESSION_TIMEOUT_MS
                    })
                    .map(|(&s, _)| s)
                    .collect();
                for session in expired {
                    if let Some(info) = self.sessions.remove(&session) {
                        self.watches.drop_client(info.client);
                    }
                    // Fire-and-forget close; no client awaits it.
                    let tag = self.alloc_tag(0, 0);
                    self.pending.remove(&tag);
                    let txn = Txn {
                        session,
                        op: TxnOp::CloseSession { session },
                        origin: self.me,
                        tag,
                        time_ns: now_ns,
                    };
                    match self.peer.propose(txn) {
                        Ok(acts) => self.absorb_zab(acts, out),
                        Err(e) => {
                            if let Some(leader) = e.leader_hint {
                                out.push(ServerOut::Peer {
                                    to: leader,
                                    msg: CoordMsg::Forward {
                                        session,
                                        op: TxnOp::CloseSession { session },
                                        origin: self.me,
                                        tag,
                                    },
                                });
                            }
                        }
                    }
                }
                out.push(ServerOut::Timer {
                    timer: CoordTimer::SessionSweep,
                    after_ms: SESSION_SWEEP_MS,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // ZAB action absorption and transaction application
    // ------------------------------------------------------------------

    /// Fence after a WAL failure: the durable suffix is unknown, so the
    /// server treats itself as crashed on the spot — including the WAL,
    /// whose buffered (never-synced) bytes must be discarded now. Leaving
    /// them in flight would let a *later* crash smear them into a segment
    /// that has since been sealed, turning a recoverable torn tail into
    /// permanent corruption.
    fn fence(&mut self) {
        self.fenced = true;
        if let Some(wal) = self.wal.as_mut() {
            wal.crash();
        }
    }

    fn absorb_zab(&mut self, acts: Vec<ZabAction<Txn>>, out: &mut Vec<ServerOut>) {
        let mut unsynced = false;
        for a in acts {
            if self.fenced {
                return;
            }
            match a {
                ZabAction::Persist(ev) => unsynced |= self.persist(ev),
                ZabAction::Send { to, msg } => {
                    // Ship lease authority alongside every heartbeat ping:
                    // the follower can anchor staleness leases at (receipt −
                    // age) once it has applied up to the ping's watermark.
                    let auth = match &msg {
                        ZabMsg::Ping { commit_to, .. } => self
                            .lease
                            .evidence_age(
                                self.now_ms,
                                self.me,
                                self.config.peers(),
                                self.config.quorum(),
                            )
                            .filter(|&age| age < LEASE_MS)
                            .map(|age| CoordMsg::LeaseAuth {
                                commit_to: commit_to.as_u64(),
                                age_ms: age as u32,
                            }),
                        _ => None,
                    };
                    out.push(ServerOut::Peer { to, msg: CoordMsg::Zab(msg) });
                    if let Some(auth) = auth {
                        out.push(ServerOut::Peer { to, msg: auth });
                    }
                }
                ZabAction::SetTimer { timer, after_ms } => {
                    out.push(ServerOut::Timer { timer: CoordTimer::Zab(timer), after_ms })
                }
                ZabAction::Deliver { zxid, txn } => self.apply(zxid, txn, out),
                ZabAction::ResetState => {
                    self.tree = DataTree::new();
                    self.prepared_txns.clear();
                    self.txn_fences.clear();
                    self.last_applied = 0;
                }
                ZabAction::RestoreSnapshot { zxid, blob } => {
                    self.tree = snapshot::decode(&blob)
                        .expect("a replica only ships snapshots it produced");
                    self.last_applied = zxid.as_u64();
                    // The snapshot may carry `/__txn/*` markers for
                    // transactions prepared before it was cut.
                    self.rebuild_txn_state();
                }
                ZabAction::BecameLeader { .. } | ZabAction::BecameFollower { .. } => {
                    // Authority derived under the previous regime is void:
                    // a new leader must re-earn quorum evidence, a new
                    // follower must hear fresh LeaseAuth from its leader.
                    self.lease.reset();
                }
                ZabAction::StartedElection => {
                    self.lease.reset();
                    self.open_barrier = None;
                    // In-flight writes can no longer be tracked to a commit;
                    // fail them so clients retry against the new regime.
                    for (_, p) in self.pending.drain() {
                        if p.client != 0 {
                            out.push(ServerOut::Client {
                                client: p.client,
                                req_id: p.req_id,
                                resp: ZkResponse::Error(ZkError::ConnectionLoss),
                            });
                        }
                    }
                    for (_, riders) in self.barrier_riders.drain() {
                        for p in riders {
                            out.push(ServerOut::Client {
                                client: p.client,
                                req_id: p.req_id,
                                resp: ZkResponse::Error(ZkError::ConnectionLoss),
                            });
                        }
                    }
                }
            }
        }
        // Group fsync: ONE durability point per absorbed action batch. ZAB
        // emits one `Persist` per proposal batch, so fsync frequency scales
        // with batches, not transactions — this is where group commit
        // recovers the throughput a per-transaction fsync would cost.
        if unsynced && !self.fenced {
            if let Some(wal) = self.wal.as_mut() {
                if wal.sync().is_err() {
                    self.fence();
                }
            }
        }
    }

    /// Mirror one ZAB durability event into the WAL. Returns whether a
    /// sync is still owed (resets sync internally). WAL failure ⇒ fence.
    fn persist(&mut self, ev: PersistEvent<Txn>) -> bool {
        let Some(wal) = self.wal.as_mut() else { return false };
        let result: WalResult<bool> = (|| match ev {
            PersistEvent::Append { entries } => {
                for (zxid, txn) in &entries {
                    wal.append_txn(zxid.as_u64(), &txn.encode())?;
                }
                Ok(!entries.is_empty())
            }
            PersistEvent::Epoch(epoch) => {
                wal.append_epoch(epoch)?;
                Ok(true)
            }
            PersistEvent::Reset { epoch, snapshot, entries } => {
                let encoded: Vec<(u64, Bytes)> =
                    entries.iter().map(|(z, t)| (z.as_u64(), t.encode())).collect();
                let snap = snapshot.as_ref().map(|(z, b)| (z.as_u64(), &b[..]));
                wal.reset(snap, &encoded, epoch)?;
                Ok(false) // reset is durable on return
            }
        })();
        match result {
            Ok(owed) => owed,
            Err(_) => {
                self.fence();
                false
            }
        }
    }

    // ------------------------------------------------------------------
    // Cross-shard 2PC participant
    // ------------------------------------------------------------------

    /// Whether a *normal* write conflicts with a prepared transaction's
    /// fences. Returns the error to answer with, or `None` to proceed.
    /// 2PC control ops are exempt (prepare does its own conflict check).
    fn txn_fence_conflict(&self, op: &TxnOp) -> Option<ZkError> {
        if self.txn_fences.is_empty() {
            return None;
        }
        let busy = |p: &str| self.txn_fences.contains_key(p);
        let hit = match op {
            // Creates check the whole ancestor chain (see
            // `fenced_for_create`): CreatePath materializes ancestors, and
            // even a plain create must not add a child under a directory
            // fenced for deletion.
            TxnOp::Create { path, .. } | TxnOp::CreatePath { path, .. } => {
                fenced_for_create(&self.txn_fences, path, None)
            }
            TxnOp::Delete { path, .. } | TxnOp::SetData { path, .. } => busy(path),
            TxnOp::Multi { ops } => ops.iter().any(|op| match op {
                MultiOp::Create { path, .. } => fenced_for_create(&self.txn_fences, path, None),
                MultiOp::Delete { path, .. }
                | MultiOp::SetData { path, .. }
                | MultiOp::Check { path, .. } => busy(path),
            }),
            _ => false,
        };
        hit.then_some(ZkError::TxnBusy)
    }

    /// Phase one: validate this shard's slice against the current tree,
    /// fence its paths, and park the ops in a `/__txn/<id>` marker znode.
    /// The marker makes the prepared state part of the replicated tree, so
    /// WAL replay, checkpoints and snapshot installs carry it implicitly.
    fn apply_prepare(
        &mut self,
        txn_id: u64,
        ops: &[MultiOp],
        participants: &[u32],
        session: u64,
        z: u64,
        t: u64,
    ) -> (ZkResponse, Vec<ChangeEvent>) {
        if let Some(p) = self.prepared_txns.get(&txn_id) {
            // Coordinator retry of an already-prepared slice — but only if
            // it really is the same transaction. Answering `Prepared` for a
            // different payload under a colliding id would commit another
            // transaction's parked ops.
            if p.ops == ops && p.participants == participants {
                return (ZkResponse::Prepared, Vec::new());
            }
            return (ZkResponse::Error(ZkError::TxnBusy), Vec::new());
        }
        // Conflict with another undecided transaction?
        for op in ops {
            let clashed = match op {
                MultiOp::Create { path, .. } => {
                    fenced_for_create(&self.txn_fences, path, Some(txn_id))
                }
                _ => self.txn_fences.get(op_path(op)).is_some_and(|&o| o != txn_id),
            };
            if clashed {
                return (ZkResponse::Error(ZkError::TxnBusy), Vec::new());
            }
        }
        // Dry-run validation, mirroring what commit will do (creates get
        // ancestor materialization there, so a missing parent is fine).
        for op in ops {
            let check = match op {
                MultiOp::Create { path, .. } => match self.tree.exists(path) {
                    Ok(Some(_)) => Err(ZkError::NodeExists),
                    Ok(None) => Ok(()),
                    Err(e) => Err(e),
                },
                MultiOp::Delete { path, version } => match self.tree.get_children(path) {
                    Ok((names, _)) if !names.is_empty() => Err(ZkError::NotEmpty),
                    Ok((_, stat)) => match version {
                        Some(v) if *v != stat.version => Err(ZkError::BadVersion),
                        _ => Ok(()),
                    },
                    Err(e) => Err(e),
                },
                MultiOp::SetData { path, version, .. } | MultiOp::Check { path, version } => {
                    match self.tree.exists(path) {
                        Ok(Some(stat)) => match version {
                            Some(v) if *v != stat.version => Err(ZkError::BadVersion),
                            _ => Ok(()),
                        },
                        Ok(None) => Err(ZkError::NoNode),
                        Err(e) => Err(e),
                    }
                }
            };
            if let Err(e) = check {
                return (ZkResponse::Error(e), Vec::new());
            }
        }
        // Park the slice in the tree and index it.
        let marker = Txn {
            session,
            op: TxnOp::Prepare2pc {
                txn_id,
                ops: ops.to_vec(),
                participants: participants.to_vec(),
            },
            origin: PeerId(0),
            tag: 0,
            time_ns: 0,
        };
        let events = match self.tree.create_path(
            &txn_marker_path(txn_id),
            marker.encode(),
            dufs_zkstore::CreateMode::Persistent,
            0,
            z,
            t,
        ) {
            Ok((_, ev)) => ev,
            Err(e) => return (ZkResponse::Error(e), Vec::new()),
        };
        for op in ops {
            self.txn_fences.insert(op_path(op).to_string(), txn_id);
        }
        self.prepared_txns.insert(
            txn_id,
            PreparedTxn { session, ops: ops.to_vec(), participants: participants.to_vec() },
        );
        (ZkResponse::Prepared, events)
    }

    /// Decision: apply the prepared slice. A txn id with no prepared slice
    /// answers [`ZkResponse::TxnUnknown`] — the slice was already decided
    /// here (or never prepared). Surfacing that instead of a blanket
    /// success lets a recovery agent tell "this shard applied the commit
    /// now" from "this shard had nothing left to apply".
    fn apply_commit(&mut self, txn_id: u64, z: u64, t: u64) -> (ZkResponse, Vec<ChangeEvent>) {
        let Some(p) = self.prepared_txns.remove(&txn_id) else {
            return (ZkResponse::TxnUnknown, Vec::new());
        };
        self.drop_txn_fences(txn_id);
        let mut events = Vec::new();
        for op in &p.ops {
            // Validated at prepare and fenced since, so these cannot fail;
            // results are discarded (the coordinator already has them). A
            // failure here means the fence invariant broke — make that
            // loud in debug builds instead of silently diverging.
            let failed = match op {
                MultiOp::Create { path, data, mode } => {
                    match self.tree.create_path(path, data.clone(), *mode, p.session, z, t) {
                        Ok((_, ev)) => {
                            events.extend(ev);
                            None
                        }
                        Err(e) => Some(e),
                    }
                }
                MultiOp::Delete { path, version } => match self.tree.delete(path, *version, z, t) {
                    Ok(ev) => {
                        events.extend(ev);
                        None
                    }
                    Err(e) => Some(e),
                },
                MultiOp::SetData { path, data, version } => {
                    match self.tree.set_data(path, data.clone(), *version, z, t) {
                        Ok((_, ev)) => {
                            events.extend(ev);
                            None
                        }
                        Err(e) => Some(e),
                    }
                }
                MultiOp::Check { .. } => None,
            };
            debug_assert!(
                failed.is_none(),
                "2PC commit op failed post-prepare (txn {txn_id:#x}, op {op:?}): {failed:?}"
            );
        }
        if let Ok(ev) = self.tree.delete(&txn_marker_path(txn_id), None, z, t) {
            events.extend(ev);
        }
        (ZkResponse::Committed, events)
    }

    /// Decision: discard the prepared slice. Answers
    /// [`ZkResponse::TxnUnknown`] when nothing is prepared under the id.
    fn apply_abort(&mut self, txn_id: u64, z: u64, t: u64) -> (ZkResponse, Vec<ChangeEvent>) {
        let Some(_) = self.prepared_txns.remove(&txn_id) else {
            return (ZkResponse::TxnUnknown, Vec::new());
        };
        self.drop_txn_fences(txn_id);
        let mut events = Vec::new();
        if let Ok(ev) = self.tree.delete(&txn_marker_path(txn_id), None, z, t) {
            events.extend(ev);
        }
        (ZkResponse::Aborted, events)
    }

    fn drop_txn_fences(&mut self, txn_id: u64) {
        self.txn_fences.retain(|_, &mut owner| owner != txn_id);
    }

    /// Re-derive the prepared-transaction index from the `/__txn/*` marker
    /// znodes after the tree was replaced wholesale (snapshot install).
    fn rebuild_txn_state(&mut self) {
        self.prepared_txns.clear();
        self.txn_fences.clear();
        let Ok((names, _)) = self.tree.get_children(TXN_PREFIX) else { return };
        for n in names {
            let Ok((data, _)) = self.tree.get_data(&format!("{TXN_PREFIX}/{n}")) else { continue };
            let Ok(marker) = Txn::decode(&data) else { continue };
            if let TxnOp::Prepare2pc { txn_id, ops, participants } = marker.op {
                for op in &ops {
                    self.txn_fences.insert(op_path(op).to_string(), txn_id);
                }
                self.prepared_txns
                    .insert(txn_id, PreparedTxn { session: marker.session, ops, participants });
            }
        }
    }

    fn apply(&mut self, zxid: Zxid, txn: Txn, out: &mut Vec<ServerOut>) {
        let z = zxid.as_u64();
        let t = txn.time_ns;
        let (resp, events) = if let Some(e) = self.txn_fence_conflict(&txn.op) {
            // The op touches a path parked under a prepared (undecided)
            // cross-shard transaction. Rejecting *at apply time* keeps the
            // outcome identical on every replica; the client retries once
            // the decision clears the fence.
            (ZkResponse::Error(e), Vec::new())
        } else {
            match &txn.op {
                TxnOp::Create { path, data, mode } => {
                    match self.tree.create(path, data.clone(), *mode, txn.session, z, t) {
                        Ok((actual, ev)) => (ZkResponse::Created { path: actual }, ev),
                        Err(e) => (ZkResponse::Error(e), Vec::new()),
                    }
                }
                TxnOp::CreatePath { path, data, mode } => {
                    match self.tree.create_path(path, data.clone(), *mode, txn.session, z, t) {
                        Ok((actual, ev)) => (ZkResponse::Created { path: actual }, ev),
                        Err(e) => (ZkResponse::Error(e), Vec::new()),
                    }
                }
                TxnOp::Delete { path, version } => match self.tree.delete(path, *version, z, t) {
                    Ok(ev) => (ZkResponse::Deleted, ev),
                    Err(e) => (ZkResponse::Error(e), Vec::new()),
                },
                TxnOp::SetData { path, data, version } => {
                    match self.tree.set_data(path, data.clone(), *version, z, t) {
                        Ok((stat, ev)) => (ZkResponse::Stat(stat), ev),
                        Err(e) => (ZkResponse::Error(e), Vec::new()),
                    }
                }
                TxnOp::Multi { ops } => match self.tree.apply_multi(ops, txn.session, z, t) {
                    Ok((results, ev)) => (ZkResponse::MultiResults(results), ev),
                    Err((_, e)) => (ZkResponse::Error(e), Vec::new()),
                },
                TxnOp::CreateSession { session } => {
                    (ZkResponse::Connected { session: *session }, Vec::new())
                }
                TxnOp::CloseSession { session } => {
                    let (_, ev) = self.tree.close_session(*session, z, t);
                    // Transactions the session prepared but never decided
                    // stay parked and fenced: this shard cannot know whether
                    // the coordinator's commit already applied on another
                    // participant, so a unilateral abort here could tear a
                    // cross-shard transaction in half. The sharded client's
                    // recovery sweep (`ShardedClient::recover_txns`) owns
                    // resolving orphans via the durable decision record.
                    if let Some(info) = self.sessions.remove(session) {
                        self.watches.drop_client(info.client);
                    }
                    (ZkResponse::Closed, ev)
                }
                // A sync barrier: nothing to mutate. The response below (at
                // the origin) proves this replica has applied everything
                // committed before the barrier.
                TxnOp::Noop => (ZkResponse::Synced { zxid: z, coalesced: false }, Vec::new()),
                TxnOp::Prepare2pc { txn_id, ops, participants } => {
                    self.apply_prepare(*txn_id, ops, participants, txn.session, z, t)
                }
                TxnOp::Commit2pc { txn_id } => self.apply_commit(*txn_id, z, t),
                TxnOp::Abort2pc { txn_id } => self.apply_abort(*txn_id, z, t),
            }
        };
        self.last_applied = z;
        self.applied_count += 1;
        // The apply watermark moved: lease-authority observations waiting
        // on it may now anchor grants.
        self.lease.mature(z);
        if self.applied_count.is_multiple_of(CHECKPOINT_EVERY) {
            // Fuzzy snapshot: checkpoint the applied state and let the
            // replication layer drop the covered log prefix. In durable
            // mode the checkpoint also lands on disk first, truncating the
            // on-disk log it covers.
            let blob = snapshot::encode(&self.tree);
            if let Some(wal) = self.wal.as_mut() {
                if wal.checkpoint(zxid.as_u64(), &blob).is_err() {
                    self.fence();
                    return;
                }
            }
            self.peer.install_snapshot(zxid, blob);
        }

        for ev in &events {
            for (client, note) in self.watches.fire(ev) {
                out.push(ServerOut::Watch { client, note });
            }
        }
        if txn.origin == self.me {
            if let Some(p) = self.pending.remove(&txn.tag) {
                out.push(ServerOut::Client { client: p.client, req_id: p.req_id, resp });
            }
            // One applied no-op proves the barrier for every rider too —
            // the whole point of coalescing: N sessions, one ZAB round.
            for p in self.barrier_riders.remove(&txn.tag).unwrap_or_default() {
                out.push(ServerOut::Client {
                    client: p.client,
                    req_id: p.req_id,
                    resp: ZkResponse::Synced { zxid: z, coalesced: true },
                });
            }
            if self.open_barrier == Some(txn.tag) {
                self.open_barrier = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dufs_zkstore::CreateMode;

    /// Single-server ensemble: every request completes synchronously, which
    /// lets us unit-test the full request → replicate → apply → respond
    /// path without a runtime.
    fn single() -> CoordServer {
        let (s, _) = CoordServer::new(PeerId(0), EnsembleConfig::of_size(1));
        assert!(s.is_leader());
        s
    }

    fn client_resp(out: &[ServerOut]) -> &ZkResponse {
        out.iter()
            .find_map(|o| match o {
                ServerOut::Client { resp, .. } => Some(resp),
                _ => None,
            })
            .expect("a client response")
    }

    fn req(s: &mut CoordServer, session: u64, r: ZkRequest) -> ZkResponse {
        let out = s.handle(1_000_000, ServerIn::Client { client: 1, req_id: 0, session, req: r });
        client_resp(&out).clone()
    }

    #[test]
    fn connect_create_get_roundtrip() {
        let mut s = single();
        let ZkResponse::Connected { session } = req(&mut s, 0, ZkRequest::Connect) else {
            panic!("expected Connected");
        };
        assert!(session > 0);
        let resp = req(
            &mut s,
            session,
            ZkRequest::Create {
                path: "/a".into(),
                data: Bytes::from_static(b"fid"),
                mode: CreateMode::Persistent,
            },
        );
        assert_eq!(resp, ZkResponse::Created { path: "/a".into() });
        let resp = req(&mut s, session, ZkRequest::GetData { path: "/a".into(), watch: false });
        match resp {
            ZkResponse::Data { data, stat } => {
                assert_eq!(&data[..], b"fid");
                assert_eq!(stat.version, 0);
                assert_eq!(stat.ctime_ns, 1_000_000, "stat carries the leader-stamped time");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_surface_to_the_client() {
        let mut s = single();
        let resp = req(&mut s, 0, ZkRequest::GetData { path: "/missing".into(), watch: false });
        assert_eq!(resp, ZkResponse::Error(ZkError::NoNode));
        let resp = req(&mut s, 0, ZkRequest::Delete { path: "/missing".into(), version: None });
        assert_eq!(resp, ZkResponse::Error(ZkError::NoNode));
    }

    #[test]
    fn watch_fires_on_mutation() {
        let mut s = single();
        req(
            &mut s,
            0,
            ZkRequest::Create {
                path: "/w".into(),
                data: Bytes::new(),
                mode: CreateMode::Persistent,
            },
        );
        req(&mut s, 0, ZkRequest::GetData { path: "/w".into(), watch: true });
        let out = s.handle(
            2_000_000,
            ServerIn::Client {
                client: 2,
                req_id: 1,
                session: 0,
                req: ZkRequest::SetData {
                    path: "/w".into(),
                    data: Bytes::from_static(b"x"),
                    version: None,
                },
            },
        );
        let watch = out.iter().find_map(|o| match o {
            ServerOut::Watch { client, note } => Some((client, note)),
            _ => None,
        });
        let (client, note) = watch.expect("watch fired");
        assert_eq!(*client, 1);
        assert_eq!(note.path, "/w");
    }

    #[test]
    fn get_children_data_batches_a_listing() {
        let mut s = single();
        req(
            &mut s,
            0,
            ZkRequest::Create {
                path: "/d".into(),
                data: Bytes::new(),
                mode: CreateMode::Persistent,
            },
        );
        for (name, payload) in [("a", &b"pa"[..]), ("b", b"pb"), ("c", b"pc")] {
            req(
                &mut s,
                0,
                ZkRequest::Create {
                    path: format!("/d/{name}"),
                    data: Bytes::copy_from_slice(payload),
                    mode: CreateMode::Persistent,
                },
            );
        }
        match req(&mut s, 0, ZkRequest::GetChildrenData { path: "/d".into() }) {
            ZkResponse::ChildrenData { entries } => {
                assert_eq!(entries.len(), 3);
                assert_eq!(entries[0].0, "a");
                assert_eq!(&entries[0].1[..], b"pa");
                assert_eq!(entries[2].0, "c");
                assert!(entries.iter().all(|(_, _, stat)| stat.czxid > 0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Root listing works too (special-cased path join).
        match req(&mut s, 0, ZkRequest::GetChildrenData { path: "/".into() }) {
            ZkResponse::ChildrenData { entries } => assert_eq!(entries.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            req(&mut s, 0, ZkRequest::GetChildrenData { path: "/missing".into() }),
            ZkResponse::Error(ZkError::NoNode)
        ));
    }

    #[test]
    fn warm_children_lists_and_installs_watches() {
        let mut s = single();
        for path in ["/d", "/d/a", "/d/b"] {
            req(
                &mut s,
                0,
                ZkRequest::Create {
                    path: path.into(),
                    data: Bytes::from_static(b"p"),
                    mode: CreateMode::Persistent,
                },
            );
        }
        match req(&mut s, 0, ZkRequest::WarmChildren { path: "/d".into() }) {
            ZkResponse::WarmedChildren { entries, stat } => {
                assert_eq!(
                    entries.iter().map(|(n, _, _)| n.as_str()).collect::<Vec<_>>(),
                    ["a", "b"]
                );
                assert!(entries.iter().all(|(_, d, _)| &d[..] == b"p"));
                assert_eq!(stat.num_children, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // One round trip left a data watch on each child...
        let out = s.handle(
            2_000_000,
            ServerIn::Client {
                client: 2,
                req_id: 1,
                session: 0,
                req: ZkRequest::SetData {
                    path: "/d/a".into(),
                    data: Bytes::from_static(b"x"),
                    version: None,
                },
            },
        );
        assert!(
            out.iter()
                .any(|o| matches!(o, ServerOut::Watch { client: 1, note } if note.path == "/d/a")),
            "data watch on a warmed child fires"
        );
        // ...and a child watch on the parent.
        let out = s.handle(
            3_000_000,
            ServerIn::Client {
                client: 2,
                req_id: 2,
                session: 0,
                req: ZkRequest::Create {
                    path: "/d/c".into(),
                    data: Bytes::new(),
                    mode: CreateMode::Persistent,
                },
            },
        );
        assert!(
            out.iter()
                .any(|o| matches!(o, ServerOut::Watch { client: 1, note } if note.path == "/d")),
            "child watch on the warmed parent fires"
        );
        assert!(matches!(
            req(&mut s, 0, ZkRequest::WarmChildren { path: "/missing".into() }),
            ZkResponse::Error(ZkError::NoNode)
        ));
    }

    #[test]
    fn sync_on_leader_returns_watermark() {
        let mut s = single();
        req(
            &mut s,
            0,
            ZkRequest::Create {
                path: "/a".into(),
                data: Bytes::new(),
                mode: CreateMode::Persistent,
            },
        );
        let resp = req(&mut s, 0, ZkRequest::Sync { coalesce: false });
        match resp {
            ZkResponse::Synced { zxid, coalesced } => {
                assert_eq!(zxid, s.last_applied());
                assert!(!coalesced, "a lone barrier pays for its own proposal");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sync_barrier_flushes_group_commit_buffer() {
        let (mut s, _) = CoordServer::new_with_config(
            PeerId(0),
            EnsembleConfig::of_size(1),
            ZabConfig::batched(8, 50),
        );
        assert!(s.is_leader());
        // A create buffered behind the Nagle timer has no response yet...
        let out = s.handle(
            1_000_000,
            ServerIn::Client {
                client: 1,
                req_id: 1,
                session: 0,
                req: ZkRequest::Create {
                    path: "/b".into(),
                    data: Bytes::new(),
                    mode: CreateMode::Persistent,
                },
            },
        );
        assert!(
            !out.iter().any(|o| matches!(o, ServerOut::Client { .. })),
            "create still buffered"
        );
        // ...until a sync barrier urgently flushes the batch: the create
        // commits first (total order), then the barrier answers.
        let out = s.handle(
            2_000_000,
            ServerIn::Client {
                client: 1,
                req_id: 2,
                session: 0,
                req: ZkRequest::Sync { coalesce: false },
            },
        );
        let resps: Vec<(u64, ZkResponse)> = out
            .iter()
            .filter_map(|o| match o {
                ServerOut::Client { req_id, resp, .. } => Some((*req_id, resp.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(resps.len(), 2);
        assert_eq!(resps[0], (1, ZkResponse::Created { path: "/b".into() }));
        let (rid, ZkResponse::Synced { zxid, .. }) = resps[1].clone() else {
            panic!("expected Synced, got {:?}", resps[1]);
        };
        assert_eq!(rid, 2);
        assert_eq!(zxid, s.last_applied(), "the barrier is the newest applied txn");
        assert_eq!(s.committed(), s.last_applied());
    }

    #[test]
    fn ping_reports_progress() {
        let mut s = single();
        let ZkResponse::Pong { zxid: z0, .. } = req(&mut s, 0, ZkRequest::Ping) else { panic!() };
        req(
            &mut s,
            0,
            ZkRequest::Create {
                path: "/p".into(),
                data: Bytes::new(),
                mode: CreateMode::Persistent,
            },
        );
        let ZkResponse::Pong { zxid: z1, .. } = req(&mut s, 0, ZkRequest::Ping) else { panic!() };
        assert!(z1 > z0);
    }

    #[test]
    fn close_session_reaps_ephemerals() {
        let mut s = single();
        let ZkResponse::Connected { session } = req(&mut s, 0, ZkRequest::Connect) else {
            panic!()
        };
        req(
            &mut s,
            session,
            ZkRequest::Create {
                path: "/e".into(),
                data: Bytes::new(),
                mode: CreateMode::Ephemeral,
            },
        );
        assert!(matches!(
            req(&mut s, session, ZkRequest::Exists { path: "/e".into(), watch: false }),
            ZkResponse::ExistsResult(Some(_))
        ));
        assert_eq!(req(&mut s, session, ZkRequest::CloseSession), ZkResponse::Closed);
        assert_eq!(
            req(&mut s, 0, ZkRequest::Exists { path: "/e".into(), watch: false }),
            ZkResponse::ExistsResult(None)
        );
        assert_eq!(s.session_count(), 0);
    }

    #[test]
    fn session_expiry_sweep_closes_silent_sessions() {
        let mut s = single();
        let ZkResponse::Connected { session } = req(&mut s, 0, ZkRequest::Connect) else {
            panic!()
        };
        req(
            &mut s,
            session,
            ZkRequest::Create {
                path: "/e".into(),
                data: Bytes::new(),
                mode: CreateMode::Ephemeral,
            },
        );
        // Sweep long after the session timeout with no traffic.
        let later_ns = (SESSION_TIMEOUT_MS + 10_000) * 1_000_000 + 1_000_000;
        let _ = s.handle(later_ns, ServerIn::Timer(CoordTimer::SessionSweep));
        assert_eq!(s.session_count(), 0);
        assert_eq!(
            req(&mut s, 0, ZkRequest::Exists { path: "/e".into(), watch: false }),
            ZkResponse::ExistsResult(None),
            "expired session's ephemeral was deleted"
        );
    }

    #[test]
    fn checkpoint_compacts_log_and_restart_restores_from_snapshot() {
        let mut s = single();
        // Drive well past the checkpoint interval.
        let n = super::CHECKPOINT_EVERY + 500;
        for i in 0..n {
            req(
                &mut s,
                0,
                ZkRequest::Create {
                    path: format!("/n{i}"),
                    data: Bytes::new(),
                    mode: CreateMode::Persistent,
                },
            );
        }
        assert!(s.snapshot_zxid() > 0, "a checkpoint was taken");
        assert!((s.log_len() as u64) < n, "log compacted: {} entries for {} txns", s.log_len(), n);
        let digest = s.tree().digest();
        let count = s.tree().node_count();
        s.on_crash();
        let _ = s.on_restart(1_000_000);
        assert_eq!(s.tree().digest(), digest, "snapshot + tail replay restores the tree");
        assert_eq!(s.tree().node_count(), count);
        // And the server still works.
        let resp = req(
            &mut s,
            0,
            ZkRequest::Create {
                path: "/after".into(),
                data: Bytes::new(),
                mode: CreateMode::Persistent,
            },
        );
        assert_eq!(resp, ZkResponse::Created { path: "/after".into() });
    }

    #[test]
    fn crash_restart_replays_log() {
        let mut s = single();
        for i in 0..5 {
            req(
                &mut s,
                0,
                ZkRequest::Create {
                    path: format!("/n{i}"),
                    data: Bytes::new(),
                    mode: CreateMode::Persistent,
                },
            );
        }
        let digest = s.tree().digest();
        s.on_crash();
        assert_eq!(s.tree().node_count(), 0);
        let _ = s.on_restart(9_000_000);
        assert_eq!(s.tree().digest(), digest, "restart replays the committed log");
        assert!(s.is_leader());
    }

    #[test]
    fn prepare_commit_applies_and_clears_fences() {
        use dufs_zkstore::MultiOp;
        let mut s = single();
        req(
            &mut s,
            0,
            ZkRequest::Create {
                path: "/src".into(),
                data: Bytes::from_static(b"fid"),
                mode: CreateMode::Persistent,
            },
        );
        let slice = vec![
            MultiOp::Delete { path: "/src".into(), version: None },
            MultiOp::Create {
                path: "/dst/deep/leaf".into(),
                data: Bytes::from_static(b"fid"),
                mode: CreateMode::Persistent,
            },
        ];
        let resp = req(
            &mut s,
            0,
            ZkRequest::TxnPrepare { txn_id: 7, ops: slice.clone(), participants: vec![0, 1] },
        );
        assert_eq!(resp, ZkResponse::Prepared);
        assert_eq!(s.prepared_txn_count(), 1);
        // Fenced paths reject normal writes deterministically...
        assert_eq!(
            req(&mut s, 0, ZkRequest::Delete { path: "/src".into(), version: None }),
            ZkResponse::Error(ZkError::TxnBusy)
        );
        // ...including creates *under* a path fenced for deletion.
        assert_eq!(
            req(
                &mut s,
                0,
                ZkRequest::CreatePath {
                    path: "/src/child".into(),
                    data: Bytes::new(),
                    mode: CreateMode::Persistent,
                },
            ),
            ZkResponse::Error(ZkError::TxnBusy)
        );
        // A second transaction touching a fenced path cannot prepare.
        assert_eq!(
            req(
                &mut s,
                0,
                ZkRequest::TxnPrepare {
                    txn_id: 8,
                    ops: vec![MultiOp::SetData {
                        path: "/src".into(),
                        data: Bytes::new(),
                        version: None,
                    }],
                    participants: vec![0],
                },
            ),
            ZkResponse::Error(ZkError::TxnBusy)
        );
        // Prepare retry with the identical payload is idempotent...
        assert_eq!(
            req(
                &mut s,
                0,
                ZkRequest::TxnPrepare { txn_id: 7, ops: slice.clone(), participants: vec![0, 1] }
            ),
            ZkResponse::Prepared
        );
        // ...but a *different* payload under the same id (a txn-id
        // collision) is rejected, not blindly acknowledged.
        assert_eq!(
            req(&mut s, 0, ZkRequest::TxnPrepare { txn_id: 7, ops: vec![], participants: vec![] }),
            ZkResponse::Error(ZkError::TxnBusy)
        );
        // Commit applies the slice, materializing ancestors for the create.
        assert_eq!(req(&mut s, 0, ZkRequest::TxnCommit { txn_id: 7 }), ZkResponse::Committed);
        assert_eq!(s.prepared_txn_count(), 0);
        assert_eq!(
            req(&mut s, 0, ZkRequest::Exists { path: "/src".into(), watch: false }),
            ZkResponse::ExistsResult(None)
        );
        assert!(matches!(
            req(&mut s, 0, ZkRequest::Exists { path: "/dst/deep/leaf".into(), watch: false }),
            ZkResponse::ExistsResult(Some(_))
        ));
        // Marker gone; fences cleared.
        assert_eq!(
            req(&mut s, 0, ZkRequest::GetChildren { path: TXN_PREFIX.into(), watch: false }),
            ZkResponse::Children {
                names: vec![],
                stat: match req(
                    &mut s,
                    0,
                    ZkRequest::Exists { path: TXN_PREFIX.into(), watch: false }
                ) {
                    ZkResponse::ExistsResult(Some(stat)) => stat,
                    other => panic!("unexpected {other:?}"),
                }
            }
        );
        assert!(matches!(
            req(&mut s, 0, ZkRequest::Delete { path: "/dst/deep/leaf".into(), version: None }),
            ZkResponse::Deleted
        ));
        // A decision retry after the slice is gone is distinguishable from
        // a real apply: the shard reports it holds nothing under the id.
        assert_eq!(req(&mut s, 0, ZkRequest::TxnCommit { txn_id: 7 }), ZkResponse::TxnUnknown);
        assert_eq!(req(&mut s, 0, ZkRequest::TxnAbort { txn_id: 999 }), ZkResponse::TxnUnknown);
    }

    #[test]
    fn prepare_validates_against_the_current_tree() {
        use dufs_zkstore::MultiOp;
        let mut s = single();
        // Delete of a missing node fails at prepare, leaving nothing fenced.
        assert_eq!(
            req(
                &mut s,
                0,
                ZkRequest::TxnPrepare {
                    txn_id: 1,
                    ops: vec![MultiOp::Delete { path: "/missing".into(), version: None }],
                    participants: vec![0],
                },
            ),
            ZkResponse::Error(ZkError::NoNode)
        );
        assert_eq!(s.prepared_txn_count(), 0);
        // Create of an existing node fails at prepare.
        req(
            &mut s,
            0,
            ZkRequest::Create {
                path: "/x".into(),
                data: Bytes::new(),
                mode: CreateMode::Persistent,
            },
        );
        assert_eq!(
            req(
                &mut s,
                0,
                ZkRequest::TxnPrepare {
                    txn_id: 2,
                    ops: vec![MultiOp::Create {
                        path: "/x".into(),
                        data: Bytes::new(),
                        mode: CreateMode::Persistent,
                    }],
                    participants: vec![0],
                },
            ),
            ZkResponse::Error(ZkError::NodeExists)
        );
        // Stale version check fails at prepare.
        assert_eq!(
            req(
                &mut s,
                0,
                ZkRequest::TxnPrepare {
                    txn_id: 3,
                    ops: vec![MultiOp::Check { path: "/x".into(), version: Some(5) }],
                    participants: vec![0],
                },
            ),
            ZkResponse::Error(ZkError::BadVersion)
        );
    }

    #[test]
    fn abort_discards_the_slice_and_unfences() {
        use dufs_zkstore::MultiOp;
        let mut s = single();
        req(
            &mut s,
            0,
            ZkRequest::Create {
                path: "/keep".into(),
                data: Bytes::from_static(b"v"),
                mode: CreateMode::Persistent,
            },
        );
        assert_eq!(
            req(
                &mut s,
                0,
                ZkRequest::TxnPrepare {
                    txn_id: 4,
                    ops: vec![MultiOp::Delete { path: "/keep".into(), version: None }],
                    participants: vec![0],
                },
            ),
            ZkResponse::Prepared
        );
        assert_eq!(req(&mut s, 0, ZkRequest::TxnAbort { txn_id: 4 }), ZkResponse::Aborted);
        assert!(matches!(
            req(&mut s, 0, ZkRequest::Exists { path: "/keep".into(), watch: false }),
            ZkResponse::ExistsResult(Some(_))
        ));
        // Fence is gone: the path is writable again.
        assert_eq!(
            req(&mut s, 0, ZkRequest::Delete { path: "/keep".into(), version: None }),
            ZkResponse::Deleted
        );
    }

    #[test]
    fn close_session_leaves_prepared_txns_parked() {
        use dufs_zkstore::MultiOp;
        let mut s = single();
        let ZkResponse::Connected { session } = req(&mut s, 0, ZkRequest::Connect) else {
            panic!()
        };
        req(
            &mut s,
            session,
            ZkRequest::Create {
                path: "/f".into(),
                data: Bytes::new(),
                mode: CreateMode::Persistent,
            },
        );
        assert_eq!(
            req(
                &mut s,
                session,
                ZkRequest::TxnPrepare {
                    txn_id: 11,
                    ops: vec![MultiOp::Delete { path: "/f".into(), version: None }],
                    participants: vec![0],
                },
            ),
            ZkResponse::Prepared
        );
        // The coordinator's session dies with the transaction undecided.
        // The shard must NOT abort unilaterally: the coordinator's commit
        // may already have applied on another participant, and an abort
        // here would tear the transaction in half. The slice stays parked
        // and fenced until a recovery agent delivers the real decision.
        assert_eq!(req(&mut s, session, ZkRequest::CloseSession), ZkResponse::Closed);
        assert_eq!(s.prepared_txn_count(), 1, "prepared slice must survive session close");
        assert_eq!(
            req(&mut s, 0, ZkRequest::Delete { path: "/f".into(), version: None }),
            ZkResponse::Error(ZkError::TxnBusy)
        );
        // A decision from a *different* session resolves it and lifts the
        // fence.
        assert_eq!(req(&mut s, 0, ZkRequest::TxnCommit { txn_id: 11 }), ZkResponse::Committed);
        assert_eq!(
            req(&mut s, 0, ZkRequest::Exists { path: "/f".into(), watch: false }),
            ZkResponse::ExistsResult(None)
        );
    }

    #[test]
    fn prepared_txn_survives_crash_and_restart() {
        use dufs_zkstore::MultiOp;
        let mut s = single();
        req(
            &mut s,
            0,
            ZkRequest::Create {
                path: "/src".into(),
                data: Bytes::from_static(b"fid"),
                mode: CreateMode::Persistent,
            },
        );
        assert_eq!(
            req(
                &mut s,
                0,
                ZkRequest::TxnPrepare {
                    txn_id: 21,
                    ops: vec![MultiOp::Delete { path: "/src".into(), version: None }],
                    participants: vec![0, 1],
                },
            ),
            ZkResponse::Prepared
        );
        s.on_crash();
        let _ = s.on_restart(5_000_000);
        assert_eq!(s.prepared_txn_count(), 1, "log replay reinstates the prepared slice");
        // Fences replayed too: the path is still parked...
        assert_eq!(
            req(&mut s, 0, ZkRequest::Delete { path: "/src".into(), version: None }),
            ZkResponse::Error(ZkError::TxnBusy)
        );
        // ...until the (retried) decision lands.
        assert_eq!(req(&mut s, 0, ZkRequest::TxnCommit { txn_id: 21 }), ZkResponse::Committed);
        assert_eq!(
            req(&mut s, 0, ZkRequest::Exists { path: "/src".into(), watch: false }),
            ZkResponse::ExistsResult(None)
        );
    }

    #[test]
    fn prepared_txn_survives_checkpoint_compaction() {
        use dufs_zkstore::MultiOp;
        let mut s = single();
        req(
            &mut s,
            0,
            ZkRequest::Create {
                path: "/src".into(),
                data: Bytes::from_static(b"fid"),
                mode: CreateMode::Persistent,
            },
        );
        assert_eq!(
            req(
                &mut s,
                0,
                ZkRequest::TxnPrepare {
                    txn_id: 31,
                    ops: vec![MultiOp::Delete { path: "/src".into(), version: None }],
                    participants: vec![0, 1],
                },
            ),
            ZkResponse::Prepared
        );
        // Push the prepare below a checkpoint, so restart recovers it from
        // the snapshot (marker znode), not from log replay.
        for i in 0..super::CHECKPOINT_EVERY + 10 {
            req(
                &mut s,
                0,
                ZkRequest::Create {
                    path: format!("/n{i}"),
                    data: Bytes::new(),
                    mode: CreateMode::Persistent,
                },
            );
        }
        assert!(s.snapshot_zxid() > 0);
        s.on_crash();
        let _ = s.on_restart(9_000_000);
        assert_eq!(s.prepared_txn_count(), 1, "marker came back via the snapshot");
        assert_eq!(
            req(
                &mut s,
                0,
                ZkRequest::SetData { path: "/src".into(), data: Bytes::new(), version: None }
            ),
            ZkResponse::Error(ZkError::TxnBusy)
        );
        assert_eq!(req(&mut s, 0, ZkRequest::TxnAbort { txn_id: 31 }), ZkResponse::Aborted);
        assert!(matches!(
            req(&mut s, 0, ZkRequest::Exists { path: "/src".into(), watch: false }),
            ZkResponse::ExistsResult(Some(_))
        ));
    }

    #[test]
    fn create_path_materializes_ancestors_through_the_full_path() {
        let mut s = single();
        let resp = req(
            &mut s,
            0,
            ZkRequest::CreatePath {
                path: "/a/b/c".into(),
                data: Bytes::from_static(b"v"),
                mode: CreateMode::Persistent,
            },
        );
        assert_eq!(resp, ZkResponse::Created { path: "/a/b/c".into() });
        assert!(matches!(
            req(&mut s, 0, ZkRequest::Exists { path: "/a/b".into(), watch: false }),
            ZkResponse::ExistsResult(Some(_))
        ));
    }

    #[test]
    fn multi_is_atomic_through_the_full_path() {
        use dufs_zkstore::MultiOp;
        let mut s = single();
        req(
            &mut s,
            0,
            ZkRequest::Create {
                path: "/old".into(),
                data: Bytes::from_static(b"fid1"),
                mode: CreateMode::Persistent,
            },
        );
        // DUFS-style rename.
        let resp = req(
            &mut s,
            0,
            ZkRequest::Multi {
                ops: vec![
                    MultiOp::Create {
                        path: "/new".into(),
                        data: Bytes::from_static(b"fid1"),
                        mode: CreateMode::Persistent,
                    },
                    MultiOp::Delete { path: "/old".into(), version: None },
                ],
            },
        );
        assert!(matches!(resp, ZkResponse::MultiResults(_)));
        assert_eq!(
            req(&mut s, 0, ZkRequest::Exists { path: "/old".into(), watch: false }),
            ZkResponse::ExistsResult(None)
        );
    }

    // ------------------------------------------------------------------
    // Leases and barrier coalescing
    // ------------------------------------------------------------------

    #[test]
    fn lease_clock_math() {
        let voters = [PeerId(0), PeerId(1), PeerId(2)];
        let mut lc = LeaseClock::default();
        // Leader side: no evidence yet → no quorum instant.
        assert_eq!(lc.evidence_age(1_000, PeerId(0), &voters, 2), None);
        lc.record_evidence(PeerId(1), 900);
        assert_eq!(lc.evidence_age(1_000, PeerId(0), &voters, 2), Some(100));
        // Newer evidence from another voter tightens the age (quorum 2 needs
        // only the newest other voter).
        lc.record_evidence(PeerId(2), 950);
        assert_eq!(lc.evidence_age(1_000, PeerId(0), &voters, 2), Some(50));
        // Evidence is max-monotone: a reordered older proof can't widen it.
        lc.record_evidence(PeerId(2), 800);
        assert_eq!(lc.evidence_age(1_000, PeerId(0), &voters, 2), Some(50));
        // A 5-voter quorum of 3 needs the 2nd-newest other voter.
        let five = [PeerId(0), PeerId(1), PeerId(2), PeerId(3), PeerId(4)];
        assert_eq!(lc.evidence_age(1_000, PeerId(0), &five, 3), Some(100));
        // A sole voter is its own quorum.
        assert_eq!(LeaseClock::default().evidence_age(5, PeerId(0), &[PeerId(0)], 1), Some(0));

        // Follower side: an observation matures only once the local replica
        // has applied the leader's commit watermark at evidence time.
        let mut f = LeaseClock::default();
        f.record_auth(1_000, 7, 40);
        assert_eq!(f.anchor_ms, None);
        f.mature(6);
        assert_eq!(f.anchor_ms, None, "watermark not reached yet");
        f.mature(7);
        assert_eq!(f.anchor_ms, Some(960), "anchored at receipt − age");
        // ttl decays from the anchor and keeps the safety margin.
        assert_eq!(
            LeaseClock::ttl_from_anchor(960, 1_000),
            Some((LEASE_MS - 40 - LEASE_MARGIN_MS) as u32)
        );
        assert_eq!(LeaseClock::ttl_from_anchor(0, LEASE_MS), None, "exhausted authority");
        f.reset();
        assert_eq!(f.anchor_ms, None);
        assert!(f.pending_auth.is_empty());
    }

    #[test]
    fn single_node_leader_grants_lease_via_ping() {
        let mut s = single();
        let ZkResponse::Pong { lease, .. } = req(&mut s, 0, ZkRequest::Ping) else {
            panic!("expected Pong");
        };
        let g = lease.expect("a sole voter is its own quorum");
        assert_eq!(g.ttl_ms as u64, LEASE_MS - LEASE_MARGIN_MS);
        assert_eq!(s.leases_granted(), 1);
    }

    /// Deterministic in-process message pump for a multi-server ensemble:
    /// virtual clock, FIFO peer links, timers fired in due order. Messages
    /// are always delivered before time advances, so elections converge and
    /// leader pings keep follower watchdogs quiet — exactly the quiescent
    /// steady state the lease protocol assumes.
    struct Pump {
        servers: Vec<CoordServer>,
        inbox: std::collections::VecDeque<(usize, PeerId, CoordMsg)>,
        timers: Vec<(u64, usize, CoordTimer)>,
        resps: Vec<Vec<(ClientId, u64, ZkResponse)>>,
        now_ms: u64,
    }

    impl Pump {
        fn trio() -> Pump {
            let n = 3;
            let mut p = Pump {
                servers: Vec::new(),
                inbox: std::collections::VecDeque::new(),
                timers: Vec::new(),
                resps: vec![Vec::new(); n],
                now_ms: 0,
            };
            for i in 0..n {
                let (s, outs) = CoordServer::new(PeerId(i as u32), EnsembleConfig::of_size(n));
                p.servers.push(s);
                p.route(i, outs);
            }
            p
        }

        fn now_ns(&self) -> u64 {
            self.now_ms * 1_000_000
        }

        fn route(&mut self, from: usize, outs: Vec<ServerOut>) {
            for o in outs {
                match o {
                    ServerOut::Peer { to, msg } => {
                        self.inbox.push_back((to.0 as usize, PeerId(from as u32), msg))
                    }
                    ServerOut::Timer { timer, after_ms } => {
                        self.timers.push((self.now_ms + after_ms, from, timer))
                    }
                    ServerOut::Client { client, req_id, resp } => {
                        self.resps[from].push((client, req_id, resp))
                    }
                    ServerOut::Watch { .. } => {}
                }
            }
        }

        /// Deliver one queued message, or fire the earliest timer.
        fn step(&mut self) {
            if let Some((to, from, msg)) = self.inbox.pop_front() {
                let now = self.now_ns();
                let outs = self.servers[to].handle(now, ServerIn::Peer { from, msg });
                self.route(to, outs);
                return;
            }
            let idx =
                (0..self.timers.len()).min_by_key(|&i| self.timers[i].0).expect("no timers armed");
            let (due, srv, t) = self.timers.remove(idx);
            self.now_ms = self.now_ms.max(due);
            let now = self.now_ns();
            let outs = self.servers[srv].handle(now, ServerIn::Timer(t));
            self.route(srv, outs);
        }

        /// Advance `ms` of virtual time, running everything due on the way.
        fn run_ms(&mut self, ms: u64) {
            let target = self.now_ms + ms;
            let mut steps = 0u64;
            loop {
                if self.inbox.is_empty() && self.timers.iter().all(|&(due, ..)| due > target) {
                    self.now_ms = target;
                    return;
                }
                self.step();
                steps += 1;
                if steps > 500_000 {
                    let msgs: Vec<_> = self.inbox.iter().collect();
                    let roles: Vec<_> = self.servers.iter().map(|s| s.role()).collect();
                    panic!(
                        "pump live-locked: now={} roles={:?} inbox={:?} timers={:?}",
                        self.now_ms,
                        roles,
                        msgs,
                        &self.timers[..self.timers.len().min(8)]
                    );
                }
            }
        }

        /// Deliver all in-flight messages without advancing time.
        fn drain(&mut self) {
            while !self.inbox.is_empty() {
                self.step();
            }
        }

        fn client(&mut self, srv: usize, client: ClientId, req_id: u64, req: ZkRequest) {
            let now = self.now_ns();
            let outs =
                self.servers[srv].handle(now, ServerIn::Client { client, req_id, session: 0, req });
            self.route(srv, outs);
        }

        fn leader(&self) -> usize {
            self.servers.iter().position(|s| s.is_leader()).expect("an established leader")
        }
    }

    #[test]
    fn follower_lease_matures_and_expires_without_leader_contact() {
        let mut p = Pump::trio();
        p.run_ms(3_000); // elect + several ping rounds of LeaseAuth
        let l = p.leader();
        let f = (0..3).find(|&i| i != l).unwrap();
        let now = p.now_ns();
        let gf = p.servers[f].lease_grant(now).expect("follower grants under a live leader");
        let gl = p.servers[l].lease_grant(now).expect("leader grants off quorum evidence");
        assert!(gf.ttl_ms > 0 && (gf.ttl_ms as u64) <= LEASE_MS - LEASE_MARGIN_MS);
        assert_eq!(gf.epoch, gl.epoch, "grants name the same leadership epoch");
        // With no further traffic the authority ages out everywhere: a
        // partitioned replica must stop granting within the lease bound.
        let later = now + (LEASE_MS + 1_000) * 1_000_000;
        assert!(p.servers[f].lease_grant(later).is_none(), "stale follower anchor");
        assert!(p.servers[l].lease_grant(later).is_none(), "stale quorum evidence");
    }

    #[test]
    fn coalesced_sync_riders_share_one_barrier() {
        let mut p = Pump::trio();
        p.run_ms(3_000);
        let l = p.leader();
        let applied_before = p.servers[l].applied_count();
        // A strict barrier at a multi-node leader awaits quorum acks.
        p.client(l, 1, 10, ZkRequest::Sync { coalesce: false });
        assert!(p.resps[l].is_empty(), "barrier must not answer before quorum");
        // A coalescing barrier arriving meanwhile rides it — no 2nd proposal.
        p.client(l, 2, 20, ZkRequest::Sync { coalesce: true });
        assert!(p.resps[l].is_empty());
        assert_eq!(p.servers[l].barriers_coalesced(), 1);
        p.drain();
        let resps = std::mem::take(&mut p.resps[l]);
        assert_eq!(resps.len(), 2, "owner and rider both answered");
        let owner = resps.iter().find(|r| r.0 == 1).expect("owner resp").2.clone();
        let rider = resps.iter().find(|r| r.0 == 2).expect("rider resp").2.clone();
        let ZkResponse::Synced { zxid: z1, coalesced: false } = owner else {
            panic!("owner got {owner:?}");
        };
        let ZkResponse::Synced { zxid: z2, coalesced: true } = rider else {
            panic!("rider got {rider:?}");
        };
        assert_eq!(z1, z2, "both observe the same barrier point");
        assert_eq!(p.servers[l].applied_count(), applied_before + 1, "exactly one no-op proposed");
        // The barrier is closed: the next coalescing sync opens a fresh one.
        p.client(l, 3, 30, ZkRequest::Sync { coalesce: true });
        p.drain();
        let resps = std::mem::take(&mut p.resps[l]);
        assert!(
            matches!(resps[..], [(3, 30, ZkResponse::Synced { coalesced: false, .. })]),
            "no open barrier to ride → proposes its own: {resps:?}"
        );
        assert_eq!(p.servers[l].barriers_coalesced(), 1);
    }
}
