//! TCP runtime: socket-backed ensembles and client sessions.
//!
//! The same [`CoordServer`] state machine that [`crate::runtime`] hosts on
//! crossbeam channels, hosted here on real sockets via `dufs-net`:
//!
//! * [`TcpServer`] — one coordination server listening on a TCP address.
//!   Inbound connections are demultiplexed by their handshake
//!   [`Hello::kind`]: peers feed [`CoordMsg`] frames into the event loop,
//!   clients speak [`ClientFrame`]/[`ServerFrame`], admin connections may
//!   probe [`ClientFrame::Status`]. Outbound peer traffic rides per-peer
//!   dial-out links that reconnect with exponential backoff and *drop*
//!   messages while the remote is unreachable — ZAB's sync protocol is
//!   built to recover from exactly that.
//! * [`TcpCluster`] — a whole loopback ensemble of [`TcpServer`]s, a
//!   drop-in sibling of [`crate::runtime::ThreadCluster`] for tests.
//! * [`TcpTransport`] / [`TcpZkClient`] — the [`ZkClient`] session API over
//!   a socket, with failover across server addresses and [`ZkError::Net`]
//!   surfaced to the retry layer.
//! * [`remote_status`] — a one-shot out-of-process status probe, used by
//!   the kill-9 recovery harness to interrogate `coord_server` processes.
//!
//! Unlike the threaded runtime there are no `Crash`/`Restart` envelopes:
//! the failure model here is the real one (kill the process; the WAL
//! directory is the durable identity, the socket address is not).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use dufs_net::{
    connect, AcceptHandle, Backoff, Conn, ConnEvent, EndpointKind, Hello, Listener, NetConfig,
    NetStats, NetStatsSnapshot, Wire,
};
use dufs_wal::FileStorage;
use dufs_zab::{EnsembleConfig, PeerId, ZabConfig};
use dufs_zkstore::ZkError;

use crate::api::{ClientOptions, LeaseGrant, ZkRequest};
use crate::runtime::{ClientEvent, ClientTransport, ServerStatus, ZkClient, TIME_DILATION};
use crate::server::{ClientId, CoordMsg, CoordServer, CoordTimer, ServerIn, ServerOut};
use crate::wire::{ClientFrame, ServerFrame};

/// Everything a [`TcpServer`] needs to know at spawn time.
#[derive(Debug, Clone)]
pub struct TcpServerConfig {
    /// This server's peer id (an index into `peer_addrs`).
    pub me: PeerId,
    /// Every ensemble member's address, indexed by peer id.
    pub peer_addrs: Vec<SocketAddr>,
    /// The first `voters` members vote; the rest are observers.
    pub voters: usize,
    /// Group-commit / snapshot-chunk tuning.
    pub zab: ZabConfig,
    /// Transport tuning (heartbeats, reconnect backoff).
    pub net: NetConfig,
    /// When set, run durably: WAL + checkpoints under this directory.
    pub wal_dir: Option<PathBuf>,
}

impl TcpServerConfig {
    /// A volatile (non-durable) member `me` of the ensemble at
    /// `peer_addrs`, all voting, default tuning.
    pub fn new(me: PeerId, peer_addrs: Vec<SocketAddr>) -> Self {
        let voters = peer_addrs.len();
        TcpServerConfig {
            me,
            peer_addrs,
            voters,
            zab: ZabConfig::default(),
            net: NetConfig::default(),
            wal_dir: None,
        }
    }
}

/// Events feeding a TCP server's single-threaded event loop.
enum TcpEnvelope {
    /// A decoded message from an ensemble peer.
    Peer {
        /// Sending peer.
        from: PeerId,
        /// The message.
        msg: CoordMsg,
    },
    /// A new client/admin connection was accepted; the loop owns the
    /// write half from now on.
    ClientConn {
        /// Loop-assigned connection id (doubles as the [`ClientId`]).
        conn_id: ClientId,
        /// The write half.
        conn: Conn,
    },
    /// A decoded frame from a connected client.
    Client {
        /// The connection it arrived on.
        conn_id: ClientId,
        /// The frame.
        frame: ClientFrame,
    },
    /// A client connection died; forget its write half.
    ClientGone {
        /// The dead connection.
        conn_id: ClientId,
    },
    /// Stop the loop.
    Shutdown,
}

/// Outbound link to one ensemble peer: a queue drained by a thread that
/// (re)dials with backoff and drops traffic while the remote is down.
struct PeerLink {
    tx: Sender<CoordMsg>,
}

fn spawn_peer_link(
    me: PeerId,
    to: PeerId,
    addr: SocketAddr,
    net: NetConfig,
    stats: NetStats,
) -> PeerLink {
    let (tx, rx) = unbounded::<CoordMsg>();
    std::thread::Builder::new()
        .name(format!("peer-link-{}-{}", me.0, to.0))
        .spawn(move || {
            let hello = Hello { kind: EndpointKind::Peer, id: me.0 as u64 };
            // The inbound receiver is parked alongside the connection:
            // peers answer on their own dial-out link, never on this one,
            // and heartbeats are consumed inside the event loop, so the
            // channel stays empty without a drain thread.
            let mut conn: Option<(Conn, Receiver<Vec<u8>>)> = None;
            let mut backoff = Backoff::new(&net);
            let mut retry_at = Instant::now();
            let mut ever_connected = false;
            while let Ok(msg) = rx.recv() {
                if conn.is_none() && Instant::now() >= retry_at {
                    match connect(addr, hello, &net, &stats) {
                        Ok(pair) => {
                            if ever_connected {
                                stats.on_reconnect();
                            }
                            ever_connected = true;
                            backoff.reset();
                            conn = Some(pair);
                        }
                        Err(_) => retry_at = Instant::now() + backoff.next_delay(),
                    }
                }
                // Down and backing off: the message is simply dropped.
                if let Some((c, _)) = &conn {
                    if c.send(msg.to_wire()).is_err() {
                        // Link died under us: drop this message and redial
                        // on the next one. ZAB resynchronizes through lossy
                        // links by design.
                        conn = None;
                        retry_at = Instant::now();
                    }
                }
            }
        })
        .expect("spawn peer link thread");
    PeerLink { tx }
}

/// One coordination server bound to a TCP address. Used in-process by
/// [`TcpCluster`] and as the whole body of the `coord_server` binary.
pub struct TcpServer {
    env_tx: Sender<TcpEnvelope>,
    accept: Option<AcceptHandle>,
    join: Option<JoinHandle<()>>,
    addr: SocketAddr,
    stats: NetStats,
}

impl TcpServer {
    /// Start serving on `listener` (already bound — bind to port 0 first
    /// when the ensemble's addresses must be known before any member
    /// starts). Panics on WAL recovery failure, like the threaded runtime.
    pub fn spawn(listener: Listener, cfg: TcpServerConfig) -> TcpServer {
        let addr = listener.local_addr();
        let n = cfg.peer_addrs.len();
        assert!(cfg.voters >= 1 && cfg.voters <= n, "voters out of range");
        assert!((cfg.me.0 as usize) < n, "me out of range");
        let stats = NetStats::new();
        let (env_tx, env_rx) = unbounded::<TcpEnvelope>();

        // Outbound links to every other member.
        let mut links: Vec<Option<PeerLink>> = Vec::with_capacity(n);
        for (i, a) in cfg.peer_addrs.iter().enumerate() {
            links.push(if i == cfg.me.0 as usize {
                None
            } else {
                Some(spawn_peer_link(cfg.me, PeerId(i as u32), *a, cfg.net, stats.clone()))
            });
        }

        // Accept loop: every inbound connection (any count) lands on one
        // demultiplexed event stream; a single forwarder thread classifies
        // by handshake kind and feeds the server loop. No per-connection
        // threads exist anywhere on this path — the reactor pool carries
        // the sockets.
        let my_hello = Hello { kind: EndpointKind::Server, id: cfg.me.0 as u64 };
        let (accept, events) = listener.spawn_accept_demux(my_hello, cfg.net, stats.clone());
        let acc_tx = env_tx.clone();
        std::thread::Builder::new()
            .name(format!("tcp-demux-{}", cfg.me.0))
            .spawn(move || demux_loop(events, acc_tx))
            .expect("spawn demux forwarder");

        // The state machine is built inside its thread (a durable server
        // holds a `Box<dyn LogStorage>`, which is not `Send`), recovered
        // from disk when durable.
        let ensemble = EnsembleConfig::with_observers(cfg.voters, n - cfg.voters);
        let (me, zab, wal_dir) = (cfg.me, cfg.zab, cfg.wal_dir);
        let join = std::thread::Builder::new()
            .name(format!("tcp-coord-{}", me.0))
            .spawn(move || {
                let (server, init) = match &wal_dir {
                    Some(dir) => {
                        let storage = FileStorage::new(dir).expect("open WAL directory");
                        CoordServer::new_durable(me, ensemble, zab, Box::new(storage))
                            .expect("recover server state from its write-ahead log")
                    }
                    None => CoordServer::new_with_config(me, ensemble, zab),
                };
                tcp_server_loop(server, init, env_rx, links)
            })
            .expect("spawn tcp server loop");

        TcpServer { env_tx, accept: Some(accept), join: Some(join), addr, stats }
    }

    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This server's transport counters (all its connections share them).
    pub fn stats(&self) -> NetStatsSnapshot {
        self.stats.snapshot()
    }

    /// Block the calling thread until the event loop exits (the
    /// `coord_server` binary's main thread parks here).
    pub fn run(mut self) {
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Stop accepting, stop the event loop, join it.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.env_tx.send(TcpEnvelope::Shutdown);
        if let Some(accept) = self.accept.take() {
            accept.stop();
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Translate the listener's demultiplexed [`ConnEvent`] stream into
/// [`TcpEnvelope`]s for the server loop: peers feed [`CoordMsg`]s, clients
/// and admins feed [`ClientFrame`]s. The write half of an inbound peer
/// link is parked here (the event loop keeps its heartbeats flowing);
/// client write halves are handed to the server loop, which owns them.
fn demux_loop(events: Receiver<ConnEvent>, env_tx: Sender<TcpEnvelope>) {
    enum Inbound {
        Peer { from: PeerId, _conn: Conn },
        Client,
    }
    let mut kinds: HashMap<u64, Inbound> = HashMap::new();
    while let Ok(ev) = events.recv() {
        match ev {
            ConnEvent::Opened { id, conn } => match conn.remote().kind {
                EndpointKind::Peer => {
                    let from = PeerId(conn.remote().id as u32);
                    kinds.insert(id, Inbound::Peer { from, _conn: conn });
                }
                EndpointKind::Client | EndpointKind::Admin => {
                    kinds.insert(id, Inbound::Client);
                    if env_tx.send(TcpEnvelope::ClientConn { conn_id: id, conn }).is_err() {
                        return;
                    }
                }
                EndpointKind::Server => {} // nobody dials in as a server; drop hangs up
            },
            ConnEvent::Frame { id, payload } => match kinds.get(&id) {
                Some(Inbound::Peer { from, .. }) => {
                    // A frame passed CRC but not the codec: the peer speaks
                    // something we don't. Drop the link; it will redial.
                    let Ok(msg) = CoordMsg::from_wire(&payload) else {
                        kinds.remove(&id);
                        continue;
                    };
                    if env_tx.send(TcpEnvelope::Peer { from: *from, msg }).is_err() {
                        return;
                    }
                }
                Some(Inbound::Client) => {
                    let Ok(frame) = ClientFrame::from_wire(&payload) else {
                        // Protocol confusion: forget the session and let the
                        // server loop drop the write half.
                        kinds.remove(&id);
                        let _ = env_tx.send(TcpEnvelope::ClientGone { conn_id: id });
                        continue;
                    };
                    if env_tx.send(TcpEnvelope::Client { conn_id: id, frame }).is_err() {
                        return;
                    }
                }
                None => {}
            },
            ConnEvent::Closed { id } => {
                if let Some(Inbound::Client) = kinds.remove(&id) {
                    let _ = env_tx.send(TcpEnvelope::ClientGone { conn_id: id });
                }
            }
        }
    }
}

fn tcp_server_loop(
    mut server: CoordServer,
    init: Vec<ServerOut>,
    env_rx: Receiver<TcpEnvelope>,
    links: Vec<Option<PeerLink>>,
) {
    let epoch = Instant::now();
    let mut conns: HashMap<ClientId, Conn> = HashMap::new();
    let mut timers: Vec<(Instant, CoordTimer)> = Vec::new();
    // The freshest lease this server can grant, refreshed every loop pass
    // and shared with each client connection's idle source: when a conn's
    // heartbeat slot comes up empty, the reactor piggybacks a Lease frame
    // (ttl decayed by the slot's age) instead of the empty keepalive. A
    // quiet cached client thus renews without spending a Ping round trip.
    let lease_slot: Arc<StdMutex<Option<(Instant, LeaseGrant)>>> = Arc::new(StdMutex::new(None));

    let now_ns = |epoch: &Instant| epoch.elapsed().as_nanos() as u64;

    let exec = |outs: Vec<ServerOut>,
                conns: &mut HashMap<ClientId, Conn>,
                timers: &mut Vec<(Instant, CoordTimer)>,
                links: &[Option<PeerLink>]| {
        for o in outs {
            match o {
                ServerOut::Client { client, req_id, resp } => {
                    if let Some(c) = conns.get(&client) {
                        let _ = c.send(ServerFrame::Resp { req_id, resp }.to_wire());
                    }
                }
                ServerOut::Peer { to, msg } => {
                    if let Some(Some(link)) = links.get(to.0 as usize) {
                        let _ = link.tx.send(msg);
                    }
                }
                ServerOut::Timer { timer, after_ms } => {
                    timers.push((
                        Instant::now() + Duration::from_millis(after_ms * TIME_DILATION),
                        timer,
                    ));
                }
                ServerOut::Watch { client, note } => {
                    if let Some(c) = conns.get(&client) {
                        let _ = c.send(ServerFrame::Watch(note).to_wire());
                    }
                }
            }
        }
    };

    exec(init, &mut conns, &mut timers, &links);

    loop {
        // Fire due timers.
        let now = Instant::now();
        let mut due = Vec::new();
        timers.retain(|&(at, t)| {
            if at <= now {
                due.push(t);
                false
            } else {
                true
            }
        });
        for t in due {
            let outs = server.handle(now_ns(&epoch), ServerIn::Timer(t));
            exec(outs, &mut conns, &mut timers, &links);
        }
        // Wait for traffic or the next timer.
        let next_deadline = timers.iter().map(|&(at, _)| at).min();
        let wait = next_deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50));
        match env_rx.recv_timeout(wait) {
            Ok(TcpEnvelope::Shutdown) => return,
            Ok(TcpEnvelope::ClientConn { conn_id, conn }) => {
                let slot = lease_slot.clone();
                conn.set_idle_source(move || {
                    let (at, g) = (*slot.lock().unwrap())?;
                    let elapsed = at.elapsed().as_millis() as u64;
                    (u64::from(g.ttl_ms) > elapsed).then(|| {
                        ServerFrame::Lease(LeaseGrant {
                            ttl_ms: g.ttl_ms - elapsed as u32,
                            epoch: g.epoch,
                        })
                        .to_wire()
                    })
                });
                conns.insert(conn_id, conn);
            }
            Ok(TcpEnvelope::ClientGone { conn_id }) => {
                conns.remove(&conn_id);
            }
            Ok(TcpEnvelope::Client { conn_id, frame }) => match frame {
                ClientFrame::Request { req_id, session, req } => {
                    let input = ServerIn::Client { client: conn_id, req_id, session, req };
                    let outs = server.handle(now_ns(&epoch), input);
                    exec(outs, &mut conns, &mut timers, &links);
                }
                ClientFrame::Status { req_id } => {
                    let status = ServerStatus {
                        is_leader: server.is_leader(),
                        last_applied: server.last_applied(),
                        committed: server.committed(),
                        node_count: server.tree().node_count(),
                        digest: server.tree().digest(),
                        alive: true,
                    };
                    if let Some(c) = conns.get(&conn_id) {
                        let _ = c.send(ServerFrame::Status { req_id, status }.to_wire());
                    }
                }
            },
            Ok(TcpEnvelope::Peer { from, msg }) => {
                let outs = server.handle(now_ns(&epoch), ServerIn::Peer { from, msg });
                exec(outs, &mut conns, &mut timers, &links);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        // Refresh the shared grant for the idle-piggyback sources. Only
        // while clients are connected — `lease_grant` counts what it issues.
        if !conns.is_empty() {
            *lease_slot.lock().unwrap() =
                server.lease_grant(now_ns(&epoch)).map(|g| (Instant::now(), g));
        } else if lease_slot.lock().unwrap().is_some() {
            *lease_slot.lock().unwrap() = None;
        }
    }
}

/// A whole coordination ensemble on loopback sockets — the TCP sibling of
/// [`crate::runtime::ThreadCluster`], same probe/client surface. Members
/// can be individually [`TcpCluster::stop`]ped (the real failure model:
/// the process goes away, the address stays in everyone's member list).
pub struct TcpCluster {
    servers: Vec<Option<TcpServer>>,
    addrs: Vec<SocketAddr>,
}

impl TcpCluster {
    pub(crate) fn start_inner(
        voters: usize,
        observers: usize,
        zab: ZabConfig,
        net: NetConfig,
        wal_dir: Option<PathBuf>,
    ) -> Self {
        let n = voters + observers;
        // Bind every listener first so each member knows the full address
        // list before any of them starts dialing.
        let listeners: Vec<Listener> = (0..n)
            .map(|_| Listener::bind("127.0.0.1:0".parse().unwrap()).expect("bind loopback"))
            .collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr()).collect();
        let servers = listeners
            .into_iter()
            .enumerate()
            .map(|(i, l)| {
                Some(TcpServer::spawn(
                    l,
                    TcpServerConfig {
                        me: PeerId(i as u32),
                        peer_addrs: addrs.clone(),
                        voters,
                        zab,
                        net,
                        wal_dir: wal_dir.as_ref().map(|d| d.join(format!("server-{i}"))),
                    },
                ))
            })
            .collect();
        TcpCluster { servers, addrs }
    }

    /// Ensemble size (stopped members included).
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The members' socket addresses, indexed by peer id.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Stop one member — close its listener and join its threads, leaving
    /// its address dead. Clients pinned to it see `ConnectionLoss`;
    /// failover clients move on. Idempotent.
    pub fn stop(&mut self, server_idx: usize) {
        if let Some(s) = self.servers[server_idx].take() {
            s.shutdown();
        }
    }

    /// Open a session per `opts`: first connects to member `opts.server`,
    /// optionally failing over across the whole address list, with reads
    /// served at `opts.consistency`.
    pub fn client(&self, opts: ClientOptions) -> Result<TcpZkClient, ZkError> {
        let addrs = if opts.failover {
            let mut addrs = self.addrs.clone();
            let k = opts.server % addrs.len();
            addrs.rotate_left(k);
            addrs
        } else {
            vec![self.addrs[opts.server]]
        };
        let mut c = ZkClient::establish(TcpTransport::new(addrs))?;
        c.set_consistency(opts.consistency);
        Ok(c)
    }

    /// Probe one server's status over an admin connection. Panics if it
    /// never answers (use [`TcpCluster::try_status`] for stopped members).
    pub fn status(&self, server_idx: usize) -> ServerStatus {
        for _ in 0..3 {
            if let Some(s) = self.try_status(server_idx) {
                return s;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("server {server_idx} did not answer a status probe");
    }

    /// [`TcpCluster::status`], but `None` when the member doesn't answer
    /// (e.g. it was [`TcpCluster::stop`]ped).
    pub fn try_status(&self, server_idx: usize) -> Option<ServerStatus> {
        self.servers[server_idx].as_ref()?;
        remote_status(self.addrs[server_idx], Duration::from_secs(5))
    }

    /// This server's transport counters. Panics if the member was stopped.
    pub fn net_stats(&self, server_idx: usize) -> NetStatsSnapshot {
        self.servers[server_idx].as_ref().expect("member stopped").stats()
    }

    /// Index of the established leader, if any. Stopped / unresponsive
    /// members are skipped.
    pub fn leader_index(&self) -> Option<usize> {
        (0..self.len()).find(|&i| self.try_status(i).is_some_and(|s| s.is_leader))
    }

    /// Wait (up to `timeout`) for a leader to be established.
    pub fn await_leader(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Some(l) = self.leader_index() {
                return Some(l);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        None
    }

    /// Stop every server and join their threads.
    pub fn shutdown(self) {
        for s in self.servers.into_iter().flatten() {
            s.shutdown();
        }
    }
}

/// One-shot status probe of a (possibly out-of-process) server: dial as an
/// admin endpoint, ask, hang up. `None` on dial failure, timeout, or a
/// garbled reply — the caller treats all three as "not answering".
pub fn remote_status(addr: SocketAddr, timeout: Duration) -> Option<ServerStatus> {
    let stats = NetStats::new();
    let net = NetConfig::default();
    let hello = Hello { kind: EndpointKind::Admin, id: 0 };
    let (conn, rx) = connect(addr, hello, &net, &stats).ok()?;
    conn.send(ClientFrame::Status { req_id: 1 }.to_wire()).ok()?;
    let deadline = Instant::now() + timeout;
    loop {
        let left = deadline.checked_duration_since(Instant::now())?;
        let payload = rx.recv_timeout(left).ok()?;
        if let Ok(ServerFrame::Status { status, .. }) = ServerFrame::from_wire(&payload) {
            return Some(status);
        }
    }
}

/// TCP client transport: one live connection at a time, chosen from a
/// failover list. A send on a dead link fails with [`ZkError::Net`] and the
/// next send redials (possibly a different address);
/// [`ZkClient::request`]'s retry loop turns that into the same
/// at-least-once semantics the channel transport has through elections.
pub struct TcpTransport {
    addrs: Vec<SocketAddr>,
    cursor: usize,
    net: NetConfig,
    stats: NetStats,
    link: Option<(Conn, Receiver<Vec<u8>>)>,
    ever_connected: bool,
    /// Newest unsolicited lease grant pushed by the server on the live
    /// connection (heartbeat piggyback), with its receipt instant so the
    /// ttl can be decayed when the client collects it.
    pushed_lease: Option<(Instant, LeaseGrant)>,
}

impl TcpTransport {
    /// A transport failing over across `addrs` (tried in order), default
    /// tuning. Panics if `addrs` is empty.
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        Self::with_config(addrs, NetConfig::default())
    }

    /// [`TcpTransport::new`] with explicit transport tuning.
    pub fn with_config(addrs: Vec<SocketAddr>, net: NetConfig) -> Self {
        assert!(!addrs.is_empty(), "need at least one server address");
        TcpTransport {
            addrs,
            cursor: 0,
            net,
            stats: NetStats::new(),
            link: None,
            ever_connected: false,
            pushed_lease: None,
        }
    }

    /// This session's transport counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.stats.snapshot()
    }

    /// The address of the live connection, if any.
    pub fn connected_addr(&self) -> Option<SocketAddr> {
        self.link.as_ref().and_then(|(c, _)| c.peer_addr())
    }

    fn ensure_link(&mut self) -> Result<(), ZkError> {
        if self.link.is_some() {
            return Ok(());
        }
        let hello = Hello { kind: EndpointKind::Client, id: 0 };
        for _ in 0..self.addrs.len() {
            let addr = self.addrs[self.cursor % self.addrs.len()];
            match connect(addr, hello, &self.net, &self.stats) {
                Ok(pair) => {
                    if self.ever_connected {
                        self.stats.on_reconnect();
                    }
                    self.ever_connected = true;
                    self.link = Some(pair);
                    // A grant pushed on the previous connection says nothing
                    // about the replica behind this one.
                    self.pushed_lease = None;
                    return Ok(());
                }
                Err(_) => self.cursor = (self.cursor + 1) % self.addrs.len(),
            }
        }
        Err(ZkError::Net)
    }
}

impl ClientTransport for TcpTransport {
    fn send(&mut self, req_id: u64, session: u64, req: ZkRequest) -> Result<(), ZkError> {
        self.ensure_link()?;
        let payload = ClientFrame::Request { req_id, session, req }.to_wire();
        let (conn, _) = self.link.as_ref().expect("link just ensured");
        if conn.send(payload).is_err() {
            // Dead socket: drop it and advance the failover cursor so the
            // retry doesn't hammer the same dead address first.
            self.link = None;
            self.pushed_lease = None;
            self.cursor = (self.cursor + 1) % self.addrs.len();
            return Err(ZkError::Net);
        }
        Ok(())
    }

    fn recv(&mut self, timeout: Duration) -> Option<ClientEvent> {
        let deadline = Instant::now() + timeout;
        loop {
            let (_, rx) = self.link.as_ref()?;
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(payload) => match ServerFrame::from_wire(&payload) {
                    Ok(ServerFrame::Resp { req_id, resp }) => {
                        return Some(ClientEvent::Resp { req_id, resp })
                    }
                    Ok(ServerFrame::Watch(n)) => return Some(ClientEvent::Watch(n)),
                    Ok(ServerFrame::Lease(g)) => {
                        // Unsolicited lease push (heartbeat piggyback): park
                        // it for `pushed_lease` and keep waiting for a real
                        // event — it answers no request.
                        self.pushed_lease = Some((Instant::now(), g));
                    }
                    Ok(ServerFrame::Status { .. }) => {} // admin frame on a session: skip
                    Err(_) => {
                        // CRC-valid but undecodable: protocol confusion,
                        // the link is not trustworthy.
                        self.link = None;
                        self.pushed_lease = None;
                        return None;
                    }
                },
                Err(RecvTimeoutError::Timeout) => return None,
                Err(RecvTimeoutError::Disconnected) => {
                    self.link = None;
                    self.pushed_lease = None;
                    return None;
                }
            }
        }
    }

    fn on_retry(&mut self) {
        // A server that accepted our dial but stopped answering (e.g. it is
        // partitioned from the leader) never breaks the socket, so the only
        // failover signal is the timeout that brought us here. Pinned
        // clients keep their link — redialing the same address buys
        // nothing.
        if self.addrs.len() > 1 {
            self.link = None;
            self.pushed_lease = None;
            self.cursor = (self.cursor + 1) % self.addrs.len();
        }
    }

    fn reconnects(&self) -> u64 {
        self.stats.snapshot().reconnects
    }

    fn pushed_lease(&mut self) -> Option<LeaseGrant> {
        // Decay the parked grant's ttl by its time on the shelf, so the
        // caller can treat receipt as "now". Taken, not peeked: the cache
        // layer owns lease state; this is just the mailbox.
        let (taken_at, mut g) = self.pushed_lease.take()?;
        let elapsed = taken_at.elapsed().as_millis() as u64;
        if u64::from(g.ttl_ms) <= elapsed {
            return None;
        }
        g.ttl_ms -= elapsed as u32;
        Some(g)
    }
}

/// The synchronous ZooKeeper-style client over a real socket.
pub type TcpZkClient = ZkClient<TcpTransport>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Watch;
    use crate::cluster::ClusterBuilder;
    use bytes::Bytes;
    use dufs_zkstore::CreateMode;

    #[test]
    fn tcp_ensemble_elects_and_serves() {
        let cluster = ClusterBuilder::new().voters(3).tcp();
        let leader = cluster.await_leader(Duration::from_secs(20)).expect("leader");
        let mut c = cluster.client(ClientOptions::at(leader)).unwrap();
        c.create("/tcp", Bytes::from_static(b"hello"), CreateMode::Persistent).unwrap();
        let (data, _) = c.get_data("/tcp", Watch::None).unwrap();
        assert_eq!(&data[..], b"hello");
        // A follower serves the same data after sync.
        let follower = (0..3).find(|&i| i != leader).unwrap();
        let mut f = cluster.client(ClientOptions::at(follower)).unwrap();
        f.sync().unwrap();
        let (data, _) = f.get_data("/tcp", Watch::None).unwrap();
        assert_eq!(&data[..], b"hello");
        // Sockets actually carried traffic.
        assert!(cluster.net_stats(leader).frames_recv > 0);
        cluster.shutdown();
    }

    #[test]
    fn remote_status_probe_answers() {
        let cluster = ClusterBuilder::new().voters(1).tcp();
        cluster.await_leader(Duration::from_secs(20)).expect("leader");
        let s = remote_status(cluster.addrs()[0], Duration::from_secs(5)).expect("status");
        assert!(s.alive);
        assert!(s.is_leader);
        assert!(s.committed >= s.last_applied, "commit point can't trail the applied point");
        cluster.shutdown();
    }

    #[test]
    fn client_fails_over_when_its_server_dies() {
        let mut cluster = ClusterBuilder::new().voters(3).tcp();
        cluster.await_leader(Duration::from_secs(20)).expect("leader");
        let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        c.create("/f", Bytes::new(), CreateMode::Persistent).unwrap();
        // Kill the member the client is talking to; the session must carry
        // on against another member.
        cluster.stop(0);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match c.exists("/f", Watch::None) {
                Ok(Some(_)) => break,
                _ => assert!(Instant::now() < deadline, "failover never succeeded"),
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        assert!(c.transport().stats().conns_opened >= 2, "must have redialed");
        cluster.shutdown();
    }
}
