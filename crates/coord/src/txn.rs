//! Replicated transactions — the payload type carried by the ZAB log.
//!
//! Every mutation a client issues is converted (at the leader) into a
//! [`Txn`] before proposal, so every replica applies *identical* inputs:
//! the leader stamps the wall-clock used for ctime/mtime, and sequential
//! names/results are computed deterministically at apply time on each
//! replica.

use bytes::Bytes;

use dufs_zab::PeerId;
use dufs_zkstore::{CreateMode, MultiOp, ZkError, ZkResult};

/// The mutation kinds that get replicated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Create a znode.
    Create {
        /// Requested path.
        path: String,
        /// Payload.
        data: Bytes,
        /// Create mode.
        mode: CreateMode,
    },
    /// Delete a znode.
    Delete {
        /// Path.
        path: String,
        /// Conditional version.
        version: Option<u32>,
    },
    /// Replace a znode's payload.
    SetData {
        /// Path.
        path: String,
        /// New payload.
        data: Bytes,
        /// Conditional version.
        version: Option<u32>,
    },
    /// Atomic multi-op.
    Multi {
        /// Operations.
        ops: Vec<MultiOp>,
    },
    /// Register a session (so every replica can later clean up its
    /// ephemerals).
    CreateSession {
        /// The new session id.
        session: u64,
    },
    /// Close a session and delete its ephemerals.
    CloseSession {
        /// The session id.
        session: u64,
    },
    /// A leader-issued no-op used by `sync` barriers.
    Noop,
    /// Create a znode, materializing any missing ancestors first. Sharded
    /// deployments route creates by hash of the parent directory, so the
    /// owning shard may never have seen the ancestor chain.
    CreatePath {
        /// Requested path.
        path: String,
        /// Payload.
        data: Bytes,
        /// Create mode.
        mode: CreateMode,
    },
    /// Phase one of a cross-shard transaction: validate `ops` against the
    /// current tree, then fence their paths and persist the prepared ops
    /// (as a `/__txn/<id>` marker znode) until a decision arrives. The
    /// participant list rides in the marker so a recovery agent that finds
    /// an orphaned prepare knows every shard the decision must reach.
    Prepare2pc {
        /// Coordinator-chosen globally unique transaction id.
        txn_id: u64,
        /// This shard's slice of the transaction.
        ops: Vec<MultiOp>,
        /// All participating shards (ascending shard ids).
        participants: Vec<u32>,
    },
    /// Decision: apply the prepared ops of `txn_id` and drop its fences.
    /// A decision for an id with no prepared slice answers `TxnUnknown`
    /// without mutating anything — the slice was already decided here.
    Commit2pc {
        /// Transaction id.
        txn_id: u64,
    },
    /// Decision: discard the prepared ops of `txn_id` and drop its fences.
    /// Answers `TxnUnknown` like [`TxnOp::Commit2pc`] when nothing is
    /// prepared under the id.
    Abort2pc {
        /// Transaction id.
        txn_id: u64,
    },
}

/// One replicated transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// Session on whose behalf the mutation runs (ephemeral ownership).
    pub session: u64,
    /// The mutation.
    pub op: TxnOp,
    /// Which server originated the request (that server replies to its
    /// client when the txn commits).
    pub origin: PeerId,
    /// Origin-server-local tag identifying the pending client request.
    pub tag: u64,
    /// Leader-assigned wall clock (nanoseconds) used for all Stat
    /// timestamps, keeping replicas bit-identical.
    pub time_ns: u64,
}

// ----------------------------------------------------------------------
// Binary codec (for the write-ahead log)
// ----------------------------------------------------------------------
//
// Little-endian, length-prefixed. The WAL frames each record with a CRC,
// so this codec only needs to be unambiguous; still, every decode path is
// bounds-checked and malformed input returns `ZkError::CorruptSnapshot`
// (never a panic) so CRC-valid-but-impossible bytes fail recovery loudly.

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
    buf.extend_from_slice(b);
}

fn put_version(buf: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn put_multi_ops(buf: &mut Vec<u8>, ops: &[MultiOp]) {
    buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            MultiOp::Create { path, data, mode } => {
                buf.push(1);
                put_str(buf, path);
                put_bytes(buf, data);
                buf.push(mode_byte(*mode));
            }
            MultiOp::Delete { path, version } => {
                buf.push(2);
                put_str(buf, path);
                put_version(buf, *version);
            }
            MultiOp::SetData { path, data, version } => {
                buf.push(3);
                put_str(buf, path);
                put_bytes(buf, data);
                put_version(buf, *version);
            }
            MultiOp::Check { path, version } => {
                buf.push(4);
                put_str(buf, path);
                put_version(buf, *version);
            }
        }
    }
}

fn mode_byte(m: CreateMode) -> u8 {
    match m {
        CreateMode::Persistent => 0,
        CreateMode::Ephemeral => 1,
        CreateMode::PersistentSequential => 2,
        CreateMode::EphemeralSequential => 3,
    }
}

struct Cursor<'a> {
    raw: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> ZkResult<&'a [u8]> {
        if self.raw.len() - self.pos < n {
            return Err(ZkError::CorruptSnapshot);
        }
        let s = &self.raw[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> ZkResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> ZkResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> ZkResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> ZkResult<String> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| ZkError::CorruptSnapshot)
    }
    fn bytes(&mut self) -> ZkResult<Bytes> {
        let n = self.u32()? as usize;
        Ok(Bytes::copy_from_slice(self.take(n)?))
    }
    fn version(&mut self) -> ZkResult<Option<u32>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(ZkError::CorruptSnapshot),
        }
    }
    fn mode(&mut self) -> ZkResult<CreateMode> {
        match self.u8()? {
            0 => Ok(CreateMode::Persistent),
            1 => Ok(CreateMode::Ephemeral),
            2 => Ok(CreateMode::PersistentSequential),
            3 => Ok(CreateMode::EphemeralSequential),
            _ => Err(ZkError::CorruptSnapshot),
        }
    }
    fn multi_ops(&mut self) -> ZkResult<Vec<MultiOp>> {
        let n = self.u32()? as usize;
        // Sanity-bound before allocating: each op costs ≥2 bytes.
        if n > self.raw.len() {
            return Err(ZkError::CorruptSnapshot);
        }
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(match self.u8()? {
                1 => {
                    let path = self.str()?;
                    let data = self.bytes()?;
                    let mode = self.mode()?;
                    MultiOp::Create { path, data, mode }
                }
                2 => {
                    let path = self.str()?;
                    let version = self.version()?;
                    MultiOp::Delete { path, version }
                }
                3 => {
                    let path = self.str()?;
                    let data = self.bytes()?;
                    let version = self.version()?;
                    MultiOp::SetData { path, data, version }
                }
                4 => {
                    let path = self.str()?;
                    let version = self.version()?;
                    MultiOp::Check { path, version }
                }
                _ => return Err(ZkError::CorruptSnapshot),
            });
        }
        Ok(ops)
    }
}

impl Txn {
    /// Serialize for the write-ahead log.
    pub fn encode(&self) -> Bytes {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&self.session.to_le_bytes());
        buf.extend_from_slice(&self.origin.0.to_le_bytes());
        buf.extend_from_slice(&self.tag.to_le_bytes());
        buf.extend_from_slice(&self.time_ns.to_le_bytes());
        match &self.op {
            TxnOp::Create { path, data, mode } => {
                buf.push(1);
                put_str(&mut buf, path);
                put_bytes(&mut buf, data);
                buf.push(mode_byte(*mode));
            }
            TxnOp::Delete { path, version } => {
                buf.push(2);
                put_str(&mut buf, path);
                put_version(&mut buf, *version);
            }
            TxnOp::SetData { path, data, version } => {
                buf.push(3);
                put_str(&mut buf, path);
                put_bytes(&mut buf, data);
                put_version(&mut buf, *version);
            }
            TxnOp::Multi { ops } => {
                buf.push(4);
                put_multi_ops(&mut buf, ops);
            }
            TxnOp::CreateSession { session } => {
                buf.push(5);
                buf.extend_from_slice(&session.to_le_bytes());
            }
            TxnOp::CloseSession { session } => {
                buf.push(6);
                buf.extend_from_slice(&session.to_le_bytes());
            }
            TxnOp::Noop => buf.push(7),
            TxnOp::CreatePath { path, data, mode } => {
                buf.push(8);
                put_str(&mut buf, path);
                put_bytes(&mut buf, data);
                buf.push(mode_byte(*mode));
            }
            TxnOp::Prepare2pc { txn_id, ops, participants } => {
                buf.push(9);
                buf.extend_from_slice(&txn_id.to_le_bytes());
                put_multi_ops(&mut buf, ops);
                buf.extend_from_slice(&(participants.len() as u32).to_le_bytes());
                for p in participants {
                    buf.extend_from_slice(&p.to_le_bytes());
                }
            }
            TxnOp::Commit2pc { txn_id } => {
                buf.push(10);
                buf.extend_from_slice(&txn_id.to_le_bytes());
            }
            TxnOp::Abort2pc { txn_id } => {
                buf.push(11);
                buf.extend_from_slice(&txn_id.to_le_bytes());
            }
        }
        Bytes::from(buf)
    }

    /// Deserialize a WAL record payload. Malformed or trailing bytes are
    /// [`ZkError::CorruptSnapshot`].
    pub fn decode(raw: &[u8]) -> ZkResult<Txn> {
        let mut c = Cursor { raw, pos: 0 };
        let session = c.u64()?;
        let origin = PeerId(c.u32()?);
        let tag = c.u64()?;
        let time_ns = c.u64()?;
        let op = match c.u8()? {
            1 => {
                let path = c.str()?;
                let data = c.bytes()?;
                let mode = c.mode()?;
                TxnOp::Create { path, data, mode }
            }
            2 => {
                let path = c.str()?;
                let version = c.version()?;
                TxnOp::Delete { path, version }
            }
            3 => {
                let path = c.str()?;
                let data = c.bytes()?;
                let version = c.version()?;
                TxnOp::SetData { path, data, version }
            }
            4 => TxnOp::Multi { ops: c.multi_ops()? },
            5 => TxnOp::CreateSession { session: c.u64()? },
            6 => TxnOp::CloseSession { session: c.u64()? },
            7 => TxnOp::Noop,
            8 => {
                let path = c.str()?;
                let data = c.bytes()?;
                let mode = c.mode()?;
                TxnOp::CreatePath { path, data, mode }
            }
            9 => {
                let txn_id = c.u64()?;
                let ops = c.multi_ops()?;
                let n = c.u32()? as usize;
                if n > c.raw.len() {
                    return Err(ZkError::CorruptSnapshot);
                }
                let mut participants = Vec::with_capacity(n);
                for _ in 0..n {
                    participants.push(c.u32()?);
                }
                TxnOp::Prepare2pc { txn_id, ops, participants }
            }
            10 => TxnOp::Commit2pc { txn_id: c.u64()? },
            11 => TxnOp::Abort2pc { txn_id: c.u64()? },
            _ => return Err(ZkError::CorruptSnapshot),
        };
        if c.pos != raw.len() {
            return Err(ZkError::CorruptSnapshot);
        }
        Ok(Txn { session, op, origin, tag, time_ns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_is_cloneable_for_the_log() {
        let t = Txn {
            session: 7,
            op: TxnOp::Create {
                path: "/x".into(),
                data: Bytes::from_static(b"d"),
                mode: CreateMode::Persistent,
            },
            origin: PeerId(2),
            tag: 99,
            time_ns: 123,
        };
        assert_eq!(t.clone(), t);
    }

    fn roundtrip(t: &Txn) {
        let enc = t.encode();
        assert_eq!(&Txn::decode(&enc).expect("round trip"), t);
    }

    #[test]
    fn codec_round_trips_every_op_kind() {
        let base = |op| Txn { session: 0xdead_beef, op, origin: PeerId(3), tag: 42, time_ns: 7 };
        roundtrip(&base(TxnOp::Create {
            path: "/a/b".into(),
            data: Bytes::from_static(b"payload"),
            mode: CreateMode::EphemeralSequential,
        }));
        roundtrip(&base(TxnOp::Delete { path: "/x".into(), version: Some(9) }));
        roundtrip(&base(TxnOp::Delete { path: "/x".into(), version: None }));
        roundtrip(&base(TxnOp::SetData {
            path: "/x".into(),
            data: Bytes::new(),
            version: Some(0),
        }));
        roundtrip(&base(TxnOp::Multi {
            ops: vec![
                MultiOp::Create {
                    path: "/new".into(),
                    data: Bytes::from_static(b"fid"),
                    mode: CreateMode::Persistent,
                },
                MultiOp::Delete { path: "/old".into(), version: None },
                MultiOp::SetData { path: "/s".into(), data: Bytes::new(), version: Some(2) },
                MultiOp::Check { path: "/c".into(), version: Some(1) },
            ],
        }));
        roundtrip(&base(TxnOp::CreateSession { session: 0xdead_beef }));
        roundtrip(&base(TxnOp::CloseSession { session: 0xdead_beef }));
        roundtrip(&base(TxnOp::Noop));
        roundtrip(&base(TxnOp::CreatePath {
            path: "/deep/a/b".into(),
            data: Bytes::from_static(b"v"),
            mode: CreateMode::Persistent,
        }));
        roundtrip(&base(TxnOp::Prepare2pc {
            txn_id: 0x0123_4567_89ab_cdef,
            ops: vec![
                MultiOp::Check { path: "/src".into(), version: Some(3) },
                MultiOp::Delete { path: "/src".into(), version: Some(3) },
            ],
            participants: vec![0, 3],
        }));
        roundtrip(&base(TxnOp::Prepare2pc { txn_id: 1, ops: vec![], participants: vec![] }));
        roundtrip(&base(TxnOp::Commit2pc { txn_id: u64::MAX }));
        roundtrip(&base(TxnOp::Abort2pc { txn_id: 0 }));
    }

    #[test]
    fn codec_rejects_malformed_input() {
        let t = Txn {
            session: 1,
            op: TxnOp::Create {
                path: "/p".into(),
                data: Bytes::from_static(b"d"),
                mode: CreateMode::Persistent,
            },
            origin: PeerId(0),
            tag: 1,
            time_ns: 1,
        };
        let enc = t.encode();
        // Every strict truncation fails (never panics).
        for cut in 0..enc.len() {
            assert_eq!(Txn::decode(&enc[..cut]), Err(ZkError::CorruptSnapshot), "cut={cut}");
        }
        // Trailing garbage fails.
        let mut long = enc.to_vec();
        long.push(0);
        assert_eq!(Txn::decode(&long), Err(ZkError::CorruptSnapshot));
        // A bad op tag fails.
        let mut bad = enc.to_vec();
        bad[28] = 99; // the op-tag byte (after session+origin+tag+time)
        assert_eq!(Txn::decode(&bad), Err(ZkError::CorruptSnapshot));
    }
}
