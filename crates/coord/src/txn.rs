//! Replicated transactions — the payload type carried by the ZAB log.
//!
//! Every mutation a client issues is converted (at the leader) into a
//! [`Txn`] before proposal, so every replica applies *identical* inputs:
//! the leader stamps the wall-clock used for ctime/mtime, and sequential
//! names/results are computed deterministically at apply time on each
//! replica.

use bytes::Bytes;

use dufs_zab::PeerId;
use dufs_zkstore::{CreateMode, MultiOp};

/// The mutation kinds that get replicated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Create a znode.
    Create {
        /// Requested path.
        path: String,
        /// Payload.
        data: Bytes,
        /// Create mode.
        mode: CreateMode,
    },
    /// Delete a znode.
    Delete {
        /// Path.
        path: String,
        /// Conditional version.
        version: Option<u32>,
    },
    /// Replace a znode's payload.
    SetData {
        /// Path.
        path: String,
        /// New payload.
        data: Bytes,
        /// Conditional version.
        version: Option<u32>,
    },
    /// Atomic multi-op.
    Multi {
        /// Operations.
        ops: Vec<MultiOp>,
    },
    /// Register a session (so every replica can later clean up its
    /// ephemerals).
    CreateSession {
        /// The new session id.
        session: u64,
    },
    /// Close a session and delete its ephemerals.
    CloseSession {
        /// The session id.
        session: u64,
    },
    /// A leader-issued no-op used by `sync` barriers.
    Noop,
}

/// One replicated transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// Session on whose behalf the mutation runs (ephemeral ownership).
    pub session: u64,
    /// The mutation.
    pub op: TxnOp,
    /// Which server originated the request (that server replies to its
    /// client when the txn commits).
    pub origin: PeerId,
    /// Origin-server-local tag identifying the pending client request.
    pub tag: u64,
    /// Leader-assigned wall clock (nanoseconds) used for all Stat
    /// timestamps, keeping replicas bit-identical.
    pub time_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_is_cloneable_for_the_log() {
        let t = Txn {
            session: 7,
            op: TxnOp::Create {
                path: "/x".into(),
                data: Bytes::from_static(b"d"),
                mode: CreateMode::Persistent,
            },
            origin: PeerId(2),
            tag: 99,
            time_ns: 123,
        };
        assert_eq!(t.clone(), t);
    }
}
