//! Consistent-hash placement of the namespace across shards.
//!
//! The source paper places file metadata by `MD5(fid) mod N` one layer
//! down; this module lifts the same idea to the coordination layer itself.
//! A [`HashRing`] with virtual nodes maps each path's **parent directory**
//! to one of N independent ZAB ensembles ("shards"), so:
//!
//! - all children of a directory land on one shard — `readdir` stays a
//!   single-shard operation;
//! - the ring's virtual nodes keep placement balanced and make shard
//!   add/remove move only ~1/N of the keyspace (each shard contributes its
//!   own vnode points; removing it removes exactly those points).
//!
//! Placement is a pure function of `(shard_count, vnodes, path)` — every
//! client computes the same routing table from the replicated
//! [`ShardConfig`] without any coordination.

use dufs_zkstore::{path as zkpath, ZkError, ZkResult};

/// Default virtual nodes per shard. 1024 points per shard keeps the
/// per-shard load imbalance within a few percent for realistic shard
/// counts (relative arc-length spread shrinks like `1/sqrt(vnodes)`) while
/// the full ring stays small (N×1024 points, binary-searched, built once
/// per config change).
pub const DEFAULT_VNODES: u32 = 1024;

/// Path of the replicated shard-layout config znode. Written to **every**
/// shard by the sharded cluster bootstrap; clients read it at connect and
/// leave a data watch so layout changes re-route live sessions.
pub const SHARD_CONFIG_PATH: &str = "/__shards";

/// Whether a path is coordination infrastructure (shard config, prepared
/// 2PC markers) rather than user namespace. Digest-parity checks across
/// different shard counts must exclude these.
pub fn is_internal_path(p: &str) -> bool {
    p == "/__shards"
        || p.starts_with("/__shards/")
        || p == crate::server::TXN_PREFIX
        || p.starts_with("/__txn/")
}

/// FNV-1a with a murmur-style finalizer. Plain FNV-1a avalanches poorly in
/// its high bits on short, similar strings (exactly what paths and vnode
/// labels are), which visibly skews arc lengths on the ring; the finalizer
/// mixes every input bit into every output bit. Cheap and dependency-free.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// The parent directory a path is placed by: `/a/b/c` → `/a/b`, top-level
/// nodes → `/`. The root itself places by `/`.
pub fn parent_dir(path: &str) -> &str {
    zkpath::parent(path).unwrap_or("/")
}

/// A consistent-hash ring over `shard_count` shards with `vnodes` virtual
/// nodes each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, shard)` sorted by point. Each shard contributes `vnodes`
    /// points hashed from `"shard-{id}-vn-{i}"`, so the point set of shard
    /// `k` is independent of which other shards exist — the minimal-remap
    /// property falls out directly.
    points: Vec<(u64, u32)>,
    shards: u32,
    vnodes: u32,
}

impl HashRing {
    /// Build the ring for shards `0..shard_count`.
    ///
    /// # Panics
    /// If `shard_count` or `vnodes` is zero.
    pub fn new(shard_count: u32, vnodes: u32) -> Self {
        assert!(shard_count > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a shard needs at least one virtual node");
        let mut points = Vec::with_capacity((shard_count * vnodes) as usize);
        for shard in 0..shard_count {
            for vn in 0..vnodes {
                points.push((ring_hash(format!("shard-{shard}-vn-{vn}").as_bytes()), shard));
            }
        }
        // Ties broken by shard id so the ring is deterministic even in the
        // (astronomically unlikely) event of a point collision.
        points.sort_unstable();
        HashRing { points, shards: shard_count, vnodes }
    }

    /// Number of shards on the ring.
    pub fn shard_count(&self) -> u32 {
        self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Consistent-hash lookup of a raw key: the shard owning the first
    /// ring point at or after `hash(key)`, wrapping at the top.
    pub fn route_key(&self, key: &str) -> u32 {
        let h = ring_hash(key.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }

    /// The shard a single-path operation on `path` routes to: placement by
    /// parent directory, so siblings colocate.
    pub fn route_path(&self, path: &str) -> u32 {
        self.route_key(parent_dir(path))
    }

    /// The shard that owns the *children* of directory `path` (listings
    /// route here; it is `route_path` of any child).
    pub fn route_children(&self, path: &str) -> u32 {
        self.route_key(path)
    }
}

/// The replicated shard-layout description stored at [`SHARD_CONFIG_PATH`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Monotonic layout version; clients adopt the config with the highest
    /// epoch they have seen.
    pub epoch: u64,
    /// Number of shards.
    pub shards: u32,
    /// Virtual nodes per shard.
    pub vnodes: u32,
}

impl ShardConfig {
    /// Fixed-width little-endian encoding (16 bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.extend_from_slice(&self.shards.to_le_bytes());
        buf.extend_from_slice(&self.vnodes.to_le_bytes());
        buf
    }

    /// Decode; malformed bytes (or a zero shard/vnode count) are
    /// [`ZkError::CorruptSnapshot`].
    pub fn decode(raw: &[u8]) -> ZkResult<Self> {
        if raw.len() != 16 {
            return Err(ZkError::CorruptSnapshot);
        }
        let epoch = u64::from_le_bytes(raw[0..8].try_into().expect("checked length"));
        let shards = u32::from_le_bytes(raw[8..12].try_into().expect("checked length"));
        let vnodes = u32::from_le_bytes(raw[12..16].try_into().expect("checked length"));
        if shards == 0 || vnodes == 0 {
            return Err(ZkError::CorruptSnapshot);
        }
        Ok(ShardConfig { epoch, shards, vnodes })
    }

    /// The ring this config describes.
    pub fn ring(&self) -> HashRing {
        HashRing::new(self.shards, self.vnodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_by_parent_directory() {
        let ring = HashRing::new(4, DEFAULT_VNODES);
        // Siblings colocate; the listing of their parent routes there too.
        let s = ring.route_path("/dir/a");
        assert_eq!(ring.route_path("/dir/b"), s);
        assert_eq!(ring.route_path("/dir/zzz"), s);
        assert_eq!(ring.route_children("/dir"), s);
        // Top-level nodes all hang off "/".
        assert_eq!(ring.route_path("/x"), ring.route_path("/y"));
        assert_eq!(parent_dir("/x"), "/");
        assert_eq!(parent_dir("/a/b/c"), "/a/b");
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let ring = HashRing::new(1, DEFAULT_VNODES);
        for p in ["/", "/a", "/a/b", "/deep/er/path"] {
            assert_eq!(ring.route_path(p), 0);
        }
    }

    #[test]
    fn config_round_trips_and_rejects_garbage() {
        let cfg = ShardConfig { epoch: 3, shards: 4, vnodes: 64 };
        assert_eq!(ShardConfig::decode(&cfg.encode()).unwrap(), cfg);
        assert_eq!(ShardConfig::decode(&[]), Err(ZkError::CorruptSnapshot));
        assert_eq!(ShardConfig::decode(&[0; 15]), Err(ZkError::CorruptSnapshot));
        assert_eq!(ShardConfig::decode(&[0; 16]), Err(ZkError::CorruptSnapshot), "zero shards");
        assert_eq!(cfg.ring().shard_count(), 4);
    }

    #[test]
    fn internal_paths_are_classified() {
        assert!(is_internal_path("/__shards"));
        assert!(is_internal_path("/__txn"));
        assert!(is_internal_path("/__txn/00000000000000ff"));
        assert!(!is_internal_path("/data"));
        assert!(!is_internal_path("/"));
    }
}
