#![warn(missing_docs)]

//! # dufs-coord — the replicated coordination service
//!
//! The ZooKeeper-equivalent that DUFS delegates all namespace metadata to
//! (paper §II-C, §IV-D). A coordination ensemble is a set of
//! [`server::CoordServer`]s, each combining:
//!
//! * a [`dufs_zab::ZabPeer`] for leader election and atomic broadcast,
//! * a replicated [`dufs_zkstore::DataTree`] applied in commit order,
//! * server-local sessions and one-shot watches.
//!
//! **Consistency model** (exactly ZooKeeper's, which the paper's argument
//! requires): all mutations are totally ordered by the leader and applied in
//! the same order on every server; reads are served locally by whichever
//! server the client is connected to (sequentially consistent, possibly
//! slightly stale); `sync` flushes a server up to the leader's commit point.
//! This split is what makes reads scale *with* ensemble size while mutations
//! slow *down* — Fig 7 of the paper, regenerated in `dufs-bench`.
//!
//! Like the protocol crates underneath, the server is a pure state machine
//! ([`server::CoordServer::handle`]); the crate also ships a ready-to-use
//! threaded runtime ([`runtime::ThreadCluster`]) that hosts an ensemble on
//! OS threads with crossbeam channels, giving a synchronous client API
//! ([`runtime::ZkClient`]) equivalent to the ZooKeeper sync API the paper's
//! prototype uses.

pub mod api;
pub mod cluster;
pub mod runtime;
pub mod server;
pub mod shard;
pub mod sharded;
pub mod tcp;
pub mod txn;
pub mod watch;
pub mod wire;

pub use api::{ClientOptions, LeaseGrant, ReadConsistency, Watch, ZkRequest, ZkResponse};

/// What a `WarmChildren` round trip hands back: the sorted
/// `(name, data, stat)` triples plus the parent directory's own stat.
pub type WarmedDir = (Vec<(String, bytes::Bytes, dufs_zkstore::Stat)>, dufs_zkstore::Stat);
pub use cluster::ClusterBuilder;
pub use runtime::{ChannelTransport, ClientTransport, ThreadCluster, ZkClient};
pub use server::{ClientId, CoordMsg, CoordServer, CoordTimer, ServerIn, ServerOut};
pub use shard::{HashRing, ShardConfig, SHARD_CONFIG_PATH};
pub use sharded::{ClusterHandle, ShardedClient, ShardedCluster};
pub use tcp::{remote_status, TcpCluster, TcpTransport, TcpZkClient};
pub use txn::{Txn, TxnOp};
pub use watch::{WatchKind, WatchNotification};
pub use wire::{ClientFrame, ServerFrame};
