//! The sharded namespace: N independent ensembles behind one client.
//!
//! This is the paper's thesis applied to the metadata service itself: where
//! a single ZAB ensemble serializes every mutation through one leader, a
//! [`ShardedCluster`] runs N ensembles side by side and a [`ShardedClient`]
//! routes each operation to the shard that owns it via the consistent-hash
//! ring in [`crate::shard`]. Single-path operations (the overwhelming
//! majority of a filesystem workload) touch exactly one shard and proceed
//! with zero cross-shard coordination — create throughput scales with the
//! shard count while each shard individually keeps ZooKeeper's ordering
//! guarantees.
//!
//! **What a shard owns.** Placement is by parent directory
//! ([`HashRing::route_path`]), so all children of a directory — and the
//! directory's child listing — live on one shard. Because a shard owns
//! `/a/b/c` without necessarily owning `/a` or `/a/b`, sharded creates use
//! the server-side `CreatePath` (`mkdir -p`) operation, which materializes
//! missing ancestors on the owning shard on demand.
//!
//! **Cross-shard atomicity.** Multi-ops whose paths land on different
//! shards run as a client-coordinated two-phase commit built on the
//! servers' prepared-transaction support: each participant shard durably
//! parks and fences its slice (`TxnPrepare`, carrying the full participant
//! list), then the coordinator durably records its verdict as a
//! **decision record** znode (`/__txn/decided/<id>`, on the
//! lowest-numbered participant) *before* issuing `TxnCommit` to anyone.
//! Prepared state and decision records live in each shard's replicated
//! tree, so they ride the WAL and survive `kill -9` of any member.
//!
//! A coordinator that dies mid-protocol leaves prepared slices parked and
//! fenced — participants never abort unilaterally (not even when the
//! coordinator's session closes), because a commit may already have
//! applied elsewhere. Instead, any session can run
//! [`ShardedClient::recover_txns`]: it finds orphaned prepares, reads the
//! decision record (writing an abort record first-writer-wins if none
//! exists — *presumed abort*), and drives that single verdict to every
//! participant. Writes that hit an orphaned fence (`TxnBusy`) trigger the
//! sweep automatically, and every cluster bootstrap runs one.
//!
//! ```
//! use bytes::Bytes;
//! use dufs_coord::cluster::ClusterBuilder;
//! use dufs_coord::ClientOptions;
//!
//! let cluster = ClusterBuilder::new().voters(1).shards(2).sharded_threads();
//! let mut client = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
//! client.create("/dir/a", Bytes::from_static(b"a")).unwrap();
//! client.create("/dir/b", Bytes::from_static(b"b")).unwrap();
//! // Siblings colocate: one shard owns both, and the listing.
//! assert_eq!(client.get_children("/dir").unwrap(), vec!["a", "b"]);
//! cluster.shutdown();
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

use bytes::Bytes;

use dufs_zkstore::{path as zkpath, CreateMode, MultiOp, Stat, ZkError};

use crate::api::{ClientOptions, ReadConsistency, Watch};
use crate::runtime::{ClientTransport, ServerStatus, ThreadCluster, ZkClient};
use crate::server::TXN_PREFIX;
use crate::shard::{is_internal_path, HashRing, ShardConfig, DEFAULT_VNODES, SHARD_CONFIG_PATH};
use crate::tcp::TcpCluster;
use crate::txn::{Txn, TxnOp};
use crate::watch::{WatchKind, WatchNotification};

/// Path of the durable 2PC decision record for `txn_id`. It lives on the
/// transaction's *decision shard* — its lowest-numbered participant — and
/// holds a single verdict byte (`b'C'` commit, `b'A'` abort).
pub fn txn_decision_path(txn_id: u64) -> String {
    format!("{TXN_PREFIX}/decided/{txn_id:016x}")
}

/// The ensemble operations [`ShardedCluster`] needs from a runtime, so one
/// sharded implementation drives both the threaded and the TCP clusters.
pub trait ClusterHandle: Sized {
    /// The client transport this runtime hands out.
    type Transport: ClientTransport;

    /// Open a session against this ensemble.
    fn client(&self, opts: ClientOptions) -> Result<ZkClient<Self::Transport>, ZkError>;
    /// Block until the ensemble has an established leader.
    fn await_leader(&self, timeout: Duration) -> Option<usize>;
    /// Probe one member.
    fn status(&self, server_idx: usize) -> ServerStatus;
    /// Ensemble size.
    fn members(&self) -> usize;
    /// Tear the ensemble down.
    fn shutdown(self);
}

impl ClusterHandle for ThreadCluster {
    type Transport = crate::runtime::ChannelTransport;

    fn client(&self, opts: ClientOptions) -> Result<ZkClient<Self::Transport>, ZkError> {
        ThreadCluster::client(self, opts)
    }
    fn await_leader(&self, timeout: Duration) -> Option<usize> {
        ThreadCluster::await_leader(self, timeout)
    }
    fn status(&self, server_idx: usize) -> ServerStatus {
        ThreadCluster::status(self, server_idx)
    }
    fn members(&self) -> usize {
        ThreadCluster::len(self)
    }
    fn shutdown(self) {
        ThreadCluster::shutdown(self);
    }
}

impl ClusterHandle for TcpCluster {
    type Transport = crate::tcp::TcpTransport;

    fn client(&self, opts: ClientOptions) -> Result<ZkClient<Self::Transport>, ZkError> {
        TcpCluster::client(self, opts)
    }
    fn await_leader(&self, timeout: Duration) -> Option<usize> {
        TcpCluster::await_leader(self, timeout)
    }
    fn status(&self, server_idx: usize) -> ServerStatus {
        TcpCluster::status(self, server_idx)
    }
    fn members(&self) -> usize {
        TcpCluster::len(self)
    }
    fn shutdown(self) {
        TcpCluster::shutdown(self);
    }
}

/// N independent ensembles plus the replicated shard-layout config that
/// lets every client compute the same routing table.
pub struct ShardedCluster<C: ClusterHandle> {
    shards: Vec<C>,
    config: ShardConfig,
}

impl<C: ClusterHandle> ShardedCluster<C> {
    /// Wrap already-started ensembles as a sharded namespace: waits for a
    /// leader in each shard, then writes the [`ShardConfig`] znode at
    /// [`SHARD_CONFIG_PATH`] to **every** shard so any single shard can
    /// bootstrap a client's routing table.
    pub fn from_shards(shards: Vec<C>) -> Result<Self, ZkError> {
        assert!(!shards.is_empty(), "a sharded cluster needs at least one shard");
        let config = ShardConfig { epoch: 1, shards: shards.len() as u32, vnodes: DEFAULT_VNODES };
        for shard in &shards {
            shard.await_leader(Duration::from_secs(30)).ok_or(ZkError::ConnectionLoss)?;
            let mut c = shard.client(ClientOptions::at(0).with_failover())?;
            let payload = Bytes::from(config.encode());
            match c.create(SHARD_CONFIG_PATH, payload.clone(), CreateMode::Persistent) {
                Ok(_) => {}
                // Restarted over a durable directory: refresh the config.
                Err(ZkError::NodeExists) => {
                    c.set_data(SHARD_CONFIG_PATH, payload, None)?;
                }
                Err(e) => return Err(e),
            }
            c.close()?;
        }
        let cluster = ShardedCluster { shards, config };
        // A durable restart may have recovered prepared-but-undecided
        // cross-shard transactions from the WAL (their coordinator is long
        // gone). Resolve them now so no fence outlives the bootstrap.
        let mut c = cluster.client(ClientOptions::at(0).with_failover())?;
        c.recover_txns()?;
        c.close()?;
        Ok(cluster)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The layout this cluster was bootstrapped with.
    pub fn config(&self) -> ShardConfig {
        self.config
    }

    /// Direct access to one shard's ensemble (probes, crash injection).
    pub fn shard(&self, shard: usize) -> &C {
        &self.shards[shard]
    }

    /// Mutable access to one shard's ensemble (e.g. [`TcpCluster::stop`]).
    pub fn shard_mut(&mut self, shard: usize) -> &mut C {
        &mut self.shards[shard]
    }

    /// Probe member `server_idx` of `shard`.
    pub fn status(&self, shard: usize, server_idx: usize) -> ServerStatus {
        self.shards[shard].status(server_idx)
    }

    /// Block until every shard has an established leader.
    pub fn await_leaders(&self, timeout: Duration) -> bool {
        self.shards.iter().all(|s| s.await_leader(timeout).is_some())
    }

    /// Open a routed client session: one inner session per shard, each
    /// opened with `opts` (server index, failover, read consistency), plus
    /// the ring read back from the config znode. Takes [`ClientOptions`]
    /// like every other cluster handle ([`ClusterHandle::client`],
    /// [`TcpCluster::client`], [`ThreadCluster::client`]); the old
    /// zero-argument default was `ClientOptions::at(0).with_failover()`.
    pub fn client(&self, opts: ClientOptions) -> Result<ShardedClient<C::Transport>, ZkError> {
        let clients = self.shards.iter().map(|s| s.client(opts)).collect::<Result<Vec<_>, _>>()?;
        ShardedClient::connect(clients)
    }

    /// Deprecated alias for [`ShardedCluster::client`] from when the
    /// zero-argument `client()` existed alongside it.
    #[deprecated(note = "use `client(opts)`; the signatures are identical now")]
    pub fn client_with(&self, opts: ClientOptions) -> Result<ShardedClient<C::Transport>, ZkError> {
        self.client(opts)
    }

    /// Tear down every shard.
    pub fn shutdown(self) {
        for s in self.shards {
            s.shutdown();
        }
    }
}

/// A routed session over a sharded namespace: one [`ZkClient`] per shard,
/// a [`HashRing`] deciding which one each operation goes to, and a 2PC
/// coordinator for the (rare) operations that span shards.
pub struct ShardedClient<T: ClientTransport> {
    clients: Vec<ZkClient<T>>,
    ring: HashRing,
    epoch: u64,
    /// High-entropy per-session nonce folded into every minted txn id.
    txn_nonce: u64,
    txn_seq: u64,
    /// User watch notifications drained off shard 0 while polling for
    /// shard-config changes; surfaced by [`ShardedClient::take_watch`].
    pending_watches: VecDeque<WatchNotification>,
    /// The config watch on shard 0 has fired; re-read on the next op.
    config_dirty: bool,
}

impl<T: ClientTransport> ShardedClient<T> {
    /// Assemble a routed session from one established inner session per
    /// shard. Reads the [`ShardConfig`] from shard 0 (leaving a data watch
    /// so layout changes re-route this session) and checks it matches the
    /// number of sessions supplied.
    pub fn connect(mut clients: Vec<ZkClient<T>>) -> Result<Self, ZkError> {
        assert!(!clients.is_empty(), "a sharded client needs at least one shard session");
        let (raw, _) = clients[0].get_data(SHARD_CONFIG_PATH, Watch::Set)?;
        let config = ShardConfig::decode(&raw)?;
        if config.shards as usize != clients.len() {
            return Err(ZkError::CorruptSnapshot);
        }
        // OS-seeded nonce (RandomState) mixed over the session ids: txn
        // ids must not collide across concurrent coordinators, and session
        // ids alone are only unique per shard ensemble.
        use std::hash::{BuildHasher, Hasher};
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        for c in &clients {
            h.write_u64(c.session());
        }
        Ok(ShardedClient {
            ring: config.ring(),
            epoch: config.epoch,
            txn_nonce: h.finish(),
            txn_seq: 0,
            pending_watches: VecDeque::new(),
            config_dirty: false,
            clients,
        })
    }

    /// The routing table currently in force.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Layout epoch this session last adopted.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards this session is connected to.
    pub fn shard_count(&self) -> usize {
        self.clients.len()
    }

    /// The shard a single-path operation on `path` routes to.
    pub fn route(&self, path: &str) -> usize {
        self.ring.route_path(path) as usize
    }

    /// The shard that owns the child listing of directory `path`.
    pub fn route_children(&self, path: &str) -> usize {
        self.ring.route_children(path) as usize
    }

    /// Direct access to one shard's inner session (benchmarks pipeline on
    /// these; tests drive 2PC steps through them).
    pub fn shard_client(&mut self, shard: usize) -> &mut ZkClient<T> {
        &mut self.clients[shard]
    }

    /// Adopt any shard-layout change published since the last call: if the
    /// data watch this session left on [`SHARD_CONFIG_PATH`] has fired,
    /// re-read the config (re-arming the watch) and rebuild the ring if the
    /// epoch advanced. Layouts whose shard count differs from this
    /// session's connection count are ignored — re-routing to shards we
    /// hold no session for needs a reconnect, not a ring swap.
    pub fn maybe_refresh(&mut self) -> Result<(), ZkError> {
        self.poll_shard0();
        if !self.config_dirty {
            return Ok(());
        }
        let (raw, _) = self.clients[0].get_data(SHARD_CONFIG_PATH, Watch::Set)?;
        // Cleared only after the re-read succeeds, so a failed read leaves
        // the refresh pending for the next operation.
        self.config_dirty = false;
        let config = ShardConfig::decode(&raw)?;
        if config.epoch > self.epoch && config.shards as usize == self.clients.len() {
            self.ring = config.ring();
            self.epoch = config.epoch;
        }
        Ok(())
    }

    /// Drain shard 0's notification queue, which multiplexes the internal
    /// shard-config watch with the user's watches: config notes set the
    /// refresh flag, everything else is buffered for
    /// [`ShardedClient::take_watch`] — never discarded.
    fn poll_shard0(&mut self) {
        while let Some(n) = self.clients[0].take_watch() {
            if n.path == SHARD_CONFIG_PATH {
                self.config_dirty = true;
            } else {
                self.pending_watches.push_back(n);
            }
        }
    }

    /// Run `f`; on [`ZkError::TxnBusy`] — a fence left by a prepared
    /// cross-shard transaction whose coordinator may be dead — resolve
    /// outstanding transactions and retry once. (Wound-wait: a sweep can
    /// abort a transaction whose coordinator is merely slow; that
    /// coordinator then observes the recorded abort and fails cleanly.)
    fn retry_after_recovery<R>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<R, ZkError>,
    ) -> Result<R, ZkError> {
        match f(self) {
            Err(ZkError::TxnBusy) => {
                self.recover_txns()?;
                f(self)
            }
            r => r,
        }
    }

    /// Create a persistent znode, materializing missing ancestors on the
    /// owning shard (see the module docs for why sharded creates are
    /// `mkdir -p`). Returns the created path.
    pub fn create(&mut self, path: &str, data: Bytes) -> Result<String, ZkError> {
        self.maybe_refresh()?;
        self.retry_after_recovery(|c| {
            let s = c.route(path);
            c.clients[s].create_path(path, data.clone(), CreateMode::Persistent)
        })
    }

    /// Delete a znode (optionally version-checked).
    ///
    /// A directory's node can exist in two places: the real node on its
    /// owner shard and a lazily-materialized copy on its children-owner
    /// shard (put there by `CreatePath` when children were created). Both
    /// copies must go or neither: the two legs run as one 2PC, so a
    /// version/emptiness failure on either shard rejects at prepare and
    /// leaves the other copy untouched, and the fences block a racing
    /// create from re-materializing children between the legs.
    pub fn delete(&mut self, path: &str, version: Option<u32>) -> Result<(), ZkError> {
        self.maybe_refresh()?;
        self.retry_after_recovery(|c| c.delete_inner(path, version, true))
    }

    fn delete_inner(
        &mut self,
        path: &str,
        version: Option<u32>,
        may_purge: bool,
    ) -> Result<(), ZkError> {
        let owner = self.route(path);
        let kids = self.route_children(path);
        if kids == owner {
            return self.clients[owner].delete(path, version);
        }
        // The children-owner leg goes first in the prepare order so a
        // still-populated directory fails `NotEmpty` before the owner copy
        // is even examined.
        let slices = vec![
            (kids, vec![MultiOp::Delete { path: path.into(), version: None }]),
            (owner, vec![MultiOp::Delete { path: path.into(), version }]),
        ];
        match self.txn_2pc_traced(slices) {
            Ok(_) => Ok(()),
            // No ghost was ever materialized on the children-owner shard;
            // the node (if any) lives solely on its owner.
            Err((s, ZkError::NoNode)) if s == kids => self.clients[owner].delete(path, version),
            // Directory that only ever existed as a materialized ancestor.
            Err((s, ZkError::NoNode)) if s == owner => self.clients[kids].delete(path, None),
            // The children-owner slice prepared, certifying the directory
            // logically empty — a `NotEmpty` owner copy holds only ghost
            // chains left by deeper `mkdir -p` materialization. Purge them
            // and retry once.
            Err((s, ZkError::NotEmpty)) if s == owner && may_purge => {
                Self::purge_local_subtree(&mut self.clients[owner], path)?;
                self.delete_inner(path, version, false)
            }
            Err((_, e)) => Err(e),
        }
    }

    /// Remove everything under `path` on one shard, deepest first. Only
    /// called when the children-owner shard has certified the directory is
    /// logically empty, so the subtree is materialized-ghost residue.
    fn purge_local_subtree(c: &mut ZkClient<T>, path: &str) -> Result<(), ZkError> {
        let kids = match c.get_children(path, Watch::None) {
            Ok((k, _)) => k,
            Err(ZkError::NoNode) => return Ok(()),
            Err(e) => return Err(e),
        };
        for k in kids {
            let child = if path == "/" { format!("/{k}") } else { format!("{path}/{k}") };
            Self::purge_local_subtree(c, &child)?;
            match c.delete(&child, None) {
                Ok(()) | Err(ZkError::NoNode) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Replace a znode's data (optionally version-checked).
    pub fn set_data(
        &mut self,
        path: &str,
        data: Bytes,
        version: Option<u32>,
    ) -> Result<Stat, ZkError> {
        self.maybe_refresh()?;
        self.retry_after_recovery(|c| {
            let s = c.route(path);
            c.clients[s].set_data(path, data.clone(), version)
        })
    }

    /// Read a znode's data and stat.
    pub fn get_data(&mut self, path: &str) -> Result<(Bytes, Stat), ZkError> {
        self.maybe_refresh()?;
        let s = self.route(path);
        self.clients[s].get_data(path, Watch::None)
    }

    /// Stat a znode, `None` if absent.
    pub fn exists(&mut self, path: &str) -> Result<Option<Stat>, ZkError> {
        self.maybe_refresh()?;
        let s = self.route(path);
        self.clients[s].exists(path, Watch::None)
    }

    /// List a directory's children (sorted). The listing is a single-shard
    /// read: placement by parent directory puts every child — and the
    /// listing itself — on [`ShardedClient::route_children`]`(path)`.
    pub fn get_children(&mut self, path: &str) -> Result<Vec<String>, ZkError> {
        self.maybe_refresh()?;
        let s = self.route_children(path);
        match self.clients[s].get_children(path, Watch::None) {
            Ok((kids, _)) => Ok(kids),
            // The directory was never materialized on its children-owner
            // shard because nothing was created under it there; if it
            // exists on its *own* owner shard, it is simply empty.
            Err(ZkError::NoNode) if self.exists_inner(path)? => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// READDIRPLUS bulk warm, routed like [`ShardedClient::get_children`]:
    /// the children listing with each child's data and stat plus the
    /// parent's stat, leaving one-shot watches (child watch on the parent,
    /// data watch on every child) behind in a single round trip to the
    /// children-owner shard. A directory never materialized on that shard
    /// warms to an empty listing if it exists on its own owner shard.
    pub fn warm_children(&mut self, path: &str) -> Result<crate::WarmedDir, ZkError> {
        self.maybe_refresh()?;
        let s = self.route_children(path);
        match self.clients[s].warm_children(path) {
            Ok(r) => Ok(r),
            Err(ZkError::NoNode) if self.exists_inner(path)? => Ok((Vec::new(), Stat::default())),
            Err(e) => Err(e),
        }
    }

    fn exists_inner(&mut self, path: &str) -> Result<bool, ZkError> {
        let s = self.route(path);
        Ok(self.clients[s].exists(path, Watch::None)?.is_some())
    }

    /// Flush this session's view, barriering **only the shards this
    /// session has written since its last sync** — the per-shard analogue
    /// of [`ZkClient::sync`]. Returns the number of shards barriered.
    pub fn sync(&mut self) -> Result<usize, ZkError> {
        let mut barriered = 0;
        for c in &mut self.clients {
            if c.is_dirty() {
                c.sync()?;
                barriered += 1;
            }
        }
        Ok(barriered)
    }

    /// Atomic multi-op over any mix of shards. Ops that all land on one
    /// shard execute as that shard's native atomic multi; ops spanning
    /// shards run as a two-phase commit (see [`ShardedClient::txn_2pc`]),
    /// in which case partial per-op results are not reported.
    pub fn multi(&mut self, ops: Vec<MultiOp>) -> Result<(), ZkError> {
        self.maybe_refresh()?;
        let slices = self.slice_by_shard(ops);
        match slices.len() {
            0 => Ok(()),
            1 => {
                let (s, ops) = slices.into_iter().next().expect("one slice");
                self.retry_after_recovery(|c| c.clients[s].multi(ops.clone()).map(|_| ()))
            }
            _ => self.retry_after_recovery(|c| c.txn_2pc(slices.clone()).map(|_| ())),
        }
    }

    /// Atomically move `src` to `dst` (both leaves): check-and-delete the
    /// source, create the destination with the source's data. Same-shard
    /// renames are one native multi; cross-shard renames are a 2PC.
    pub fn rename(&mut self, src: &str, dst: &str) -> Result<(), ZkError> {
        self.maybe_refresh()?;
        let (data, stat) = self.get_data(src)?;
        let ops = vec![
            MultiOp::Check { path: src.into(), version: Some(stat.version) },
            MultiOp::Delete { path: src.into(), version: Some(stat.version) },
            MultiOp::Create { path: dst.into(), data, mode: CreateMode::Persistent },
        ];
        self.multi(ops)
    }

    /// Group ops into per-shard slices (ascending shard id, op order
    /// preserved within a shard). Every op routes like the single-path
    /// operation it embeds: by the parent directory of its path.
    fn slice_by_shard(&self, ops: Vec<MultiOp>) -> Vec<(usize, Vec<MultiOp>)> {
        let mut slices: Vec<(usize, Vec<MultiOp>)> = Vec::new();
        for op in ops {
            let path = match &op {
                MultiOp::Create { path, .. }
                | MultiOp::Delete { path, .. }
                | MultiOp::SetData { path, .. }
                | MultiOp::Check { path, .. } => path.as_str(),
            };
            let s = self.route(path);
            match slices.iter_mut().find(|(k, _)| *k == s) {
                Some((_, v)) => v.push(op),
                None => slices.push((s, vec![op])),
            }
        }
        slices.sort_by_key(|&(s, _)| s);
        slices
    }

    /// Mint a transaction id unique across concurrent sharded sessions: an
    /// OS-seeded per-session nonce (see [`ShardedClient::connect`]) mixed
    /// with a per-session counter. Collisions would let one transaction's
    /// decision apply another's parked ops, so session ids alone (unique
    /// only per shard ensemble) are not enough.
    pub fn mint_txn_id(&mut self) -> u64 {
        self.txn_seq += 1;
        self.txn_nonce.wrapping_add(self.txn_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Run a two-phase commit over per-shard op slices.
    ///
    /// Phase one prepares each participant (`slice_by_shard` hands the
    /// slices over in ascending shard order, which keeps concurrent
    /// coordinators from deadlocking on each other's fences); a prepare
    /// rejection
    /// aborts every already-prepared participant — safe and final, because
    /// no commit decision record can exist yet. Once all participants are
    /// prepared, the verdict is durably recorded on the decision shard
    /// *before* any participant commits, so a coordinator crash at any
    /// later point leaves enough state for [`ShardedClient::recover_txns`]
    /// to finish the commit — never half of it. After every participant
    /// acknowledges, the record is deleted (forgotten).
    pub fn txn_2pc(&mut self, slices: Vec<(usize, Vec<MultiOp>)>) -> Result<u64, ZkError> {
        self.txn_2pc_traced(slices).map_err(|(_, e)| e)
    }

    /// [`ShardedClient::txn_2pc`] with the failing shard attached to the
    /// error, so callers splitting one logical op across shards (delete's
    /// two legs) can attribute a rejection to the copy that raised it.
    fn txn_2pc_traced(
        &mut self,
        slices: Vec<(usize, Vec<MultiOp>)>,
    ) -> Result<u64, (usize, ZkError)> {
        let txn_id = self.mint_txn_id();
        let mut participants: Vec<u32> = slices.iter().map(|&(s, _)| s as u32).collect();
        participants.sort_unstable();
        let mut prepared: Vec<usize> = Vec::new();
        for (s, ops) in &slices {
            match self.clients[*s].txn_prepare(txn_id, ops.clone(), participants.clone()) {
                Ok(()) => prepared.push(*s),
                Err(e) => {
                    for p in prepared {
                        let _ = self.clients[p].txn_abort(txn_id);
                    }
                    return Err((*s, e));
                }
            }
        }
        let dshard = participants[0] as usize;
        match self.record_decision(dshard, txn_id, b'C') {
            Ok(b'C') => {}
            Ok(_) => {
                // A recovery sweep presumed this coordinator dead and
                // recorded an abort first; honor it.
                for (s, _) in &slices {
                    let _ = self.clients[*s].txn_abort(txn_id);
                }
                return Err((dshard, ZkError::TxnBusy));
            }
            Err(e) => return Err((dshard, e)),
        }
        for (s, _) in &slices {
            self.clients[*s].txn_commit(txn_id).map_err(|e| (*s, e))?;
        }
        // Every participant applied; the record has served its purpose.
        // (If this delete is lost, recovery re-reads the verdict and the
        // commits no-op as `TxnUnknown` — stale records are garbage, not
        // hazards.)
        let _ = self.clients[dshard].delete(&txn_decision_path(txn_id), None);
        Ok(txn_id)
    }

    /// Durably record `verdict` for `txn_id` on its decision shard, or
    /// adopt the verdict already recorded by whoever won the race. The
    /// record znode is the transaction's single linearization point: the
    /// first writer decides, everyone else reads.
    fn record_decision(&mut self, shard: usize, txn_id: u64, verdict: u8) -> Result<u8, ZkError> {
        let path = txn_decision_path(txn_id);
        let payload = Bytes::copy_from_slice(&[verdict]);
        match self.clients[shard].create_path(&path, payload, CreateMode::Persistent) {
            Ok(_) => Ok(verdict),
            Err(ZkError::NodeExists) => {
                // Barrier before reading back: the losing create proves the
                // record exists at the leader, but a follower read could
                // still miss it.
                self.clients[shard].sync()?;
                let (data, _) = self.clients[shard].get_data(&path, Watch::None)?;
                Ok(*data.first().unwrap_or(&b'A'))
            }
            Err(e) => Err(e),
        }
    }

    /// Resolve cross-shard transactions orphaned by dead coordinators:
    /// scan every shard for prepared markers, and for each one read the
    /// decision record on its decision shard — recording an abort
    /// first-writer-wins if none exists (*presumed abort*: a missing
    /// record proves no participant can have committed) — then drive that
    /// verdict to all participants and drop the record. Returns how many
    /// transactions were fully resolved.
    ///
    /// Any session may run this; writes that trip over an orphaned fence
    /// invoke it automatically (see `retry_after_recovery`), and
    /// [`ShardedCluster::from_shards`] runs one at bootstrap.
    pub fn recover_txns(&mut self) -> Result<usize, ZkError> {
        // Orphan candidates: txn id → participant shards, from the parked
        // markers themselves.
        let mut pending: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for s in 0..self.clients.len() {
            let names = match self.clients[s].get_children(TXN_PREFIX, Watch::None) {
                Ok((k, _)) => k,
                Err(ZkError::NoNode) => continue,
                Err(e) => return Err(e),
            };
            for n in names {
                let Ok((data, _)) =
                    self.clients[s].get_data(&format!("{TXN_PREFIX}/{n}"), Watch::None)
                else {
                    continue; // resolved (or decided) since the listing
                };
                let Ok(marker) = Txn::decode(&data) else {
                    continue; // not a marker (e.g. the `decided` directory)
                };
                if let TxnOp::Prepare2pc { txn_id, participants, .. } = marker.op {
                    pending.entry(txn_id).or_insert(participants);
                }
            }
        }
        let mut resolved = 0;
        for (txn_id, participants) in pending {
            let Some(&first) = participants.first() else { continue };
            let dshard = first as usize;
            if dshard >= self.clients.len() {
                continue; // foreign layout; leave it for a matching client
            }
            let verdict = self.record_decision(dshard, txn_id, b'A')?;
            let mut all_acked = true;
            for &p in &participants {
                let p = p as usize;
                if p >= self.clients.len() {
                    all_acked = false;
                    continue;
                }
                let r = if verdict == b'C' {
                    self.clients[p].txn_commit(txn_id)
                } else {
                    self.clients[p].txn_abort(txn_id)
                };
                if r.is_err() {
                    all_acked = false;
                }
            }
            // Forget the record only once every participant has resolved;
            // otherwise leave it for the next sweep.
            if all_acked {
                let _ = self.clients[dshard].delete(&txn_decision_path(txn_id), None);
                resolved += 1;
            }
        }
        Ok(resolved)
    }

    /// 2PC step: prepare `ops` as transaction `txn_id` on one shard, with
    /// the full participant list. Exposed so crash tests can stop between
    /// phases.
    pub fn txn_prepare_on(
        &mut self,
        shard: usize,
        txn_id: u64,
        ops: Vec<MultiOp>,
        participants: Vec<u32>,
    ) -> Result<(), ZkError> {
        self.clients[shard].txn_prepare(txn_id, ops, participants)
    }

    /// 2PC step: deliver the commit decision for `txn_id` to one shard
    /// (succeeds whether the slice applies now or was already decided).
    pub fn txn_commit_on(&mut self, shard: usize, txn_id: u64) -> Result<(), ZkError> {
        self.clients[shard].txn_commit(txn_id).map(|_| ())
    }

    /// 2PC step: deliver the abort decision for `txn_id` to one shard
    /// (succeeds whether a slice was discarded now or none was parked).
    pub fn txn_abort_on(&mut self, shard: usize, txn_id: u64) -> Result<(), ZkError> {
        self.clients[shard].txn_abort(txn_id).map(|_| ())
    }

    /// Content digest of the **logical** user namespace, independent of the
    /// shard count it is spread over. A path logically exists if its node
    /// is present on its owner shard, or if it is an ancestor of one that
    /// is (ancestors may exist only as lazily-materialized copies). Each
    /// logical node contributes `fnv(path, owner-shard data)` — empty data
    /// when only materialized copies exist, which is exactly what a
    /// single-shard `CreatePath` ancestor holds too. Coordination internals
    /// (`/__shards`, `/__txn/...`) are excluded. Equal digests across
    /// different shard counts certify the namespaces match.
    pub fn user_digest(&mut self) -> Result<u64, ZkError> {
        self.sync()?;
        // Every path present on any shard (owner copies and ghosts alike).
        let mut candidates: BTreeSet<String> = BTreeSet::new();
        for s in 0..self.clients.len() {
            let mut stack = vec!["/".to_string()];
            while let Some(p) = stack.pop() {
                let kids = match self.clients[s].get_children(&p, Watch::None) {
                    Ok((k, _)) => k,
                    Err(ZkError::NoNode) => continue,
                    Err(e) => return Err(e),
                };
                for k in kids {
                    let child = if p == "/" { format!("/{k}") } else { format!("{p}/{k}") };
                    if is_internal_path(&child) {
                        continue;
                    }
                    stack.push(child.clone());
                    candidates.insert(child);
                }
            }
        }
        // Owner-verified live set, then close over ancestors: a directory
        // with a live descendant exists even if only ghost-materialized.
        let mut live: BTreeSet<String> = BTreeSet::new();
        for p in &candidates {
            let s = self.route(p);
            if self.clients[s].exists(p, Watch::None)?.is_some() {
                live.insert(p.clone());
            }
        }
        let mut logical: BTreeSet<String> = BTreeSet::new();
        for p in &live {
            let mut cur = p.as_str();
            while cur != "/" {
                if !logical.insert(cur.to_string()) {
                    break;
                }
                cur = zkpath::parent(cur).unwrap_or("/");
            }
        }
        let mut digest = 0u64;
        for p in &logical {
            let s = self.route(p);
            let data = match self.clients[s].get_data(p, Watch::None) {
                Ok((d, _)) => d,
                Err(ZkError::NoNode) => Bytes::new(),
                Err(e) => return Err(e),
            };
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in p.as_bytes().iter().chain([0u8].iter()).chain(data.iter()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            digest = digest.wrapping_add(h);
        }
        Ok(digest)
    }

    /// Leave a one-shot watch of `kind` on `path`, routed to the shard the
    /// corresponding read would hit.
    pub fn watch(&mut self, path: &str, kind: WatchKind) -> Result<(), ZkError> {
        self.maybe_refresh()?;
        match kind {
            WatchKind::Data => {
                let s = self.route(path);
                self.clients[s].get_data(path, Watch::Set).map(|_| ())
            }
            WatchKind::Exists => {
                let s = self.route(path);
                self.clients[s].exists(path, Watch::Set).map(|_| ())
            }
            WatchKind::Children => {
                let s = self.route_children(path);
                self.clients[s].get_children(path, Watch::Set).map(|_| ())
            }
        }
    }

    /// Drain one pending watch notification from any shard, if one is
    /// queued ([`SHARD_CONFIG_PATH`] notifications are consumed internally
    /// by [`ShardedClient::maybe_refresh`] and never surface here). Shard
    /// 0 notifications that were drained while polling for config changes
    /// are buffered, not lost — they surface here first.
    pub fn take_watch(&mut self) -> Option<WatchNotification> {
        self.poll_shard0();
        if let Some(n) = self.pending_watches.pop_front() {
            return Some(n);
        }
        for c in &mut self.clients[1..] {
            while let Some(n) = c.take_watch() {
                if n.path != SHARD_CONFIG_PATH {
                    return Some(n);
                }
            }
        }
        None
    }

    /// Set the read-recency level on every inner session.
    pub fn set_consistency(&mut self, consistency: ReadConsistency) {
        for c in &mut self.clients {
            c.set_consistency(consistency);
        }
    }

    /// Close every inner session.
    pub fn close(self) -> Result<(), ZkError> {
        for c in self.clients {
            c.close()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterBuilder;

    fn two_shards() -> ShardedCluster<ThreadCluster> {
        ClusterBuilder::new().voters(1).shards(2).sharded_threads()
    }

    /// Find sibling paths under `base` that land on different shards.
    fn cross_shard_pair(c: &ShardedClient<crate::runtime::ChannelTransport>) -> (String, String) {
        let a = "/xsrc/file".to_string();
        for i in 0..10_000 {
            let b = format!("/xdst{i}/file");
            if c.route(&b) != c.route(&a) {
                return (a, b);
            }
        }
        panic!("no cross-shard pair found");
    }

    #[test]
    fn single_path_ops_route_and_round_trip() {
        let cluster = two_shards();
        let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        // Fan a few directories out; each sibling set is one shard.
        for d in 0..8 {
            for f in 0..4 {
                let p = format!("/d{d}/f{f}");
                c.create(&p, Bytes::from(p.clone().into_bytes())).unwrap();
            }
        }
        for d in 0..8 {
            let kids = c.get_children(&format!("/d{d}")).unwrap();
            assert_eq!(kids, vec!["f0", "f1", "f2", "f3"]);
        }
        let (data, stat) = c.get_data("/d3/f2").unwrap();
        assert_eq!(&data[..], b"/d3/f2");
        c.set_data("/d3/f2", Bytes::from_static(b"new"), Some(stat.version)).unwrap();
        assert_eq!(&c.get_data("/d3/f2").unwrap().0[..], b"new");
        c.delete("/d3/f2", None).unwrap();
        assert_eq!(c.exists("/d3/f2").unwrap(), None);
        assert_eq!(c.get_children("/d3").unwrap(), vec!["f0", "f1", "f3"]);
        c.close().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn sync_barriers_only_dirty_shards() {
        let cluster = two_shards();
        let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        assert_eq!(c.sync().unwrap(), 0, "clean session barriers nothing");
        c.create("/solo/a", Bytes::new()).unwrap();
        assert_eq!(c.sync().unwrap(), 1, "one write dirties exactly one shard");
        assert_eq!(c.sync().unwrap(), 0, "sync clears the dirty bits");
        let (a, b) = cross_shard_pair(&c);
        c.create(&a, Bytes::new()).unwrap();
        c.create(&b, Bytes::new()).unwrap();
        assert_eq!(c.sync().unwrap(), 2, "writes on two shards barrier both");
        c.close().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn cross_shard_rename_moves_the_data() {
        let cluster = two_shards();
        let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        let (src, dst) = cross_shard_pair(&c);
        assert_ne!(c.route(&src), c.route(&dst), "pair must span shards");
        c.create(&src, Bytes::from_static(b"payload")).unwrap();
        c.rename(&src, &dst).unwrap();
        assert_eq!(c.exists(&src).unwrap(), None);
        assert_eq!(&c.get_data(&dst).unwrap().0[..], b"payload");
        // Same-shard rename takes the native-multi path.
        c.rename(&dst, &format!("{dst}2")).unwrap();
        assert_eq!(c.exists(&dst).unwrap(), None);
        assert_eq!(&c.get_data(&format!("{dst}2")).unwrap().0[..], b"payload");
        c.close().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn failed_prepare_aborts_the_whole_txn() {
        let cluster = two_shards();
        let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        let (a, b) = cross_shard_pair(&c);
        c.create(&b, Bytes::new()).unwrap(); // make the Create on b collide
        let err = c
            .multi(vec![
                MultiOp::Create {
                    path: a.clone(),
                    data: Bytes::new(),
                    mode: CreateMode::Persistent,
                },
                MultiOp::Create {
                    path: b.clone(),
                    data: Bytes::new(),
                    mode: CreateMode::Persistent,
                },
            ])
            .unwrap_err();
        assert_eq!(err, ZkError::NodeExists);
        // The aborted slice left no trace: a's shard applied nothing and
        // nothing is fenced (a fresh create goes straight through).
        assert_eq!(c.exists(&a).unwrap(), None);
        c.create(&a, Bytes::new()).unwrap();
        c.close().unwrap();
        cluster.shutdown();
    }

    /// Per-shard rename slices plus the sorted participant list — the raw
    /// ingredients tests use to drive 2PC one step at a time.
    fn rename_parts(
        c: &mut ShardedClient<crate::runtime::ChannelTransport>,
        src: &str,
        dst: &str,
    ) -> (Vec<(usize, Vec<MultiOp>)>, Vec<u32>) {
        let (data, stat) = c.get_data(src).unwrap();
        let slices = vec![
            (
                c.route(src),
                vec![
                    MultiOp::Check { path: src.into(), version: Some(stat.version) },
                    MultiOp::Delete { path: src.into(), version: Some(stat.version) },
                ],
            ),
            (
                c.route(dst),
                vec![MultiOp::Create { path: dst.into(), data, mode: CreateMode::Persistent }],
            ),
        ];
        let mut participants: Vec<u32> = slices.iter().map(|&(s, _)| s as u32).collect();
        participants.sort_unstable();
        (slices, participants)
    }

    #[test]
    fn watches_on_shard0_survive_refresh_polling() {
        let cluster = two_shards();
        let mut w = cluster.client(ClientOptions::at(0).with_failover()).unwrap(); // watcher
        let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap(); // mutator
                                                                                   // A path owned by shard 0, so its notification shares the session
                                                                                   // the internal config watch polls.
        let p = (0..10_000)
            .map(|i| format!("/w{i}/n"))
            .find(|p| w.route(p) == 0)
            .expect("no shard-0 path");
        c.create(&p, Bytes::new()).unwrap();
        w.watch(&p, WatchKind::Data).unwrap();
        c.set_data(&p, Bytes::from_static(b"new"), None).unwrap();
        // Every operation polls shard 0's queue (the old code discarded
        // non-config notifications there); the watch must still surface.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let n = loop {
            w.exists(&p).unwrap();
            if let Some(n) = w.take_watch() {
                break n;
            }
            assert!(std::time::Instant::now() < deadline, "watch notification was swallowed");
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(n.path, p);
        cluster.shutdown();
    }

    #[test]
    fn failed_cross_shard_delete_leaves_both_copies() {
        let cluster = two_shards();
        let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        // A directory whose node and child listing live on different shards.
        let d = (0..10_000)
            .map(|i| format!("/split{i}"))
            .find(|d| c.route(d) != c.route_children(d))
            .expect("no split directory");
        c.create(&d, Bytes::from_static(b"dir")).unwrap();
        let child = format!("{d}/f");
        c.create(&child, Bytes::new()).unwrap(); // materializes the ghost copy
        c.delete(&child, None).unwrap(); // ghost (now empty) stays behind
                                         // A version-mismatched delete must fail without touching either
                                         // copy — the old two-leg delete consumed the ghost before the
                                         // owner-side version check ran.
        assert_eq!(c.delete(&d, Some(99)).unwrap_err(), ZkError::BadVersion);
        let kids = c.route_children(&d);
        assert!(
            c.shard_client(kids).exists(&d, Watch::None).unwrap().is_some(),
            "failed delete consumed the children-owner copy"
        );
        assert_eq!(c.get_children(&d).unwrap(), Vec::<String>::new());
        // The correct version still deletes both copies.
        let ver = c.get_data(&d).unwrap().1.version;
        c.delete(&d, Some(ver)).unwrap();
        assert_eq!(c.exists(&d).unwrap(), None);
        assert_eq!(
            c.shard_client(kids).exists(&d, Watch::None).unwrap(),
            None,
            "ghost copy survived the delete"
        );
        c.close().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn recovery_completes_a_half_committed_txn() {
        let cluster = two_shards();
        let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        let (src, dst) = cross_shard_pair(&c);
        c.create(&src, Bytes::from_static(b"payload")).unwrap();
        let (slices, participants) = rename_parts(&mut c, &src, &dst);
        let txn_id = c.mint_txn_id();
        for (s, ops) in &slices {
            c.txn_prepare_on(*s, txn_id, ops.clone(), participants.clone()).unwrap();
        }
        // The coordinator recorded its commit verdict and reached only the
        // source shard before dying — the reviewer's divergence scenario.
        let dshard = participants[0] as usize;
        c.shard_client(dshard)
            .create_path(
                &txn_decision_path(txn_id),
                Bytes::from_static(b"C"),
                CreateMode::Persistent,
            )
            .unwrap();
        c.txn_commit_on(slices[0].0, txn_id).unwrap();
        drop(c);
        // A fresh session's sweep must FINISH the commit on the remaining
        // shard — an abort there would half-apply the rename.
        let mut c2 = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        assert_eq!(c2.recover_txns().unwrap(), 1);
        assert_eq!(c2.exists(&src).unwrap(), None, "committed leg reverted");
        assert_eq!(
            &c2.get_data(&dst).unwrap().0[..],
            b"payload",
            "recovery aborted a committed txn"
        );
        // Fences lifted and the decision record forgotten.
        c2.create(&src, Bytes::new()).unwrap();
        let dp = txn_decision_path(txn_id);
        assert_eq!(c2.shard_client(dshard).exists(&dp, Watch::None).unwrap(), None);
        c2.close().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn recovery_presumes_abort_without_a_decision_record() {
        let cluster = two_shards();
        let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        let (src, dst) = cross_shard_pair(&c);
        c.create(&src, Bytes::from_static(b"payload")).unwrap();
        let (slices, participants) = rename_parts(&mut c, &src, &dst);
        let txn_id = c.mint_txn_id();
        for (s, ops) in &slices {
            c.txn_prepare_on(*s, txn_id, ops.clone(), participants.clone()).unwrap();
        }
        drop(c); // coordinator dies before recording any decision
        let mut c2 = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        assert_eq!(c2.recover_txns().unwrap(), 1);
        // No record ⇒ nothing can have committed ⇒ abort everywhere.
        assert_eq!(&c2.get_data(&src).unwrap().0[..], b"payload");
        assert_eq!(c2.exists(&dst).unwrap(), None);
        c2.close().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn orphaned_fences_yield_to_new_writes() {
        let cluster = two_shards();
        let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        let (src, dst) = cross_shard_pair(&c);
        c.create(&src, Bytes::from_static(b"payload")).unwrap();
        let (slices, participants) = rename_parts(&mut c, &src, &dst);
        let txn_id = c.mint_txn_id();
        for (s, ops) in &slices {
            c.txn_prepare_on(*s, txn_id, ops.clone(), participants.clone()).unwrap();
        }
        drop(c); // dead coordinator leaves both paths fenced
                 // A plain write into the fence must recover and succeed on its
                 // own — no explicit sweep, no waiting for session expiry.
        let mut c2 = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
        c2.set_data(&src, Bytes::from_static(b"overwritten"), None).unwrap();
        c2.create(&dst, Bytes::new()).unwrap();
        c2.close().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn digests_agree_across_shard_counts() {
        let spec: Vec<(String, Bytes)> = (0..6)
            .flat_map(|d| {
                (0..3).map(move |f| {
                    let p = format!("/tree{d}/n{f}");
                    (p.clone(), Bytes::from(p.into_bytes()))
                })
            })
            .collect();
        let mut digests = Vec::new();
        for shards in [1usize, 2, 3] {
            let cluster = ClusterBuilder::new().voters(1).shards(shards).sharded_threads();
            let mut c = cluster.client(ClientOptions::at(0).with_failover()).unwrap();
            for (p, d) in &spec {
                c.create(p, d.clone()).unwrap();
            }
            digests.push(c.user_digest().unwrap());
            c.close().unwrap();
            cluster.shutdown();
        }
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[0], digests[2]);
    }
}
