//! Threaded runtime: hosts a coordination ensemble on OS threads with
//! channel "networking", and exposes the synchronous client API the DUFS
//! prototype uses (paper §IV-D: "The synchronous ZooKeeper API were used").
//!
//! This is the runtime used by the library examples and the functional
//! integration tests; the performance figures use the deterministic
//! simulator in `dufs-mdtest` instead (same [`CoordServer`] state machine,
//! different driver).

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

use dufs_wal::FileStorage;
use dufs_zab::{EnsembleConfig, PeerId, ZabConfig};
use dufs_zkstore::{CreateMode, MultiOp, MultiResult, Stat, ZkError};

use crate::api::{ClientOptions, ReadConsistency, Watch, ZkRequest, ZkResponse};
use crate::server::{ClientId, CoordMsg, CoordServer, CoordTimer, ServerIn, ServerOut};
use crate::watch::WatchNotification;

/// Multiplier applied to every protocol timer by the live runtimes (threaded
/// and TCP). The state machines are tuned for a quiet network; on a loaded CI
/// machine, scheduling jitter of hundreds of ms would otherwise trip
/// watchdogs and flap elections. Relative timing is preserved.
pub(crate) const TIME_DILATION: u64 = 3;

/// Events delivered to a client handle.
#[derive(Debug, Clone)]
pub enum ClientEvent {
    /// Response to a request.
    Resp {
        /// Echo of the request id.
        req_id: u64,
        /// The response.
        resp: ZkResponse,
    },
    /// An asynchronous watch notification.
    Watch(WatchNotification),
}

/// Snapshot of one server's state (test/diagnostic probe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStatus {
    /// Whether this server is the established leader.
    pub is_leader: bool,
    /// Raw zxid applied up to.
    pub last_applied: u64,
    /// Raw zxid the replication layer has committed up to (may run ahead
    /// of `last_applied` while deliveries drain).
    pub committed: u64,
    /// Number of znodes in the local replica.
    pub node_count: usize,
    /// Content digest of the local replica.
    pub digest: u64,
    /// Whether the simulated process is up.
    pub alive: bool,
}

enum Envelope {
    Client { client: ClientId, req_id: u64, session: u64, req: ZkRequest },
    Register { client: ClientId, events: Sender<ClientEvent> },
    Peer { from: PeerId, msg: CoordMsg },
    Inspect { reply: Sender<ServerStatus> },
    Crash,
    Restart,
    Shutdown,
}

/// How a [`ZkClient`] session reaches its server: an in-process channel
/// ([`ChannelTransport`], the [`ThreadCluster`] runtime) or a TCP
/// connection ([`crate::tcp::TcpTransport`]). The client logic — request
/// ids, pipelining, retry policy — is transport-agnostic.
pub trait ClientTransport {
    /// Queue one request. An error means the link is down *right now*
    /// (dead server / dropped socket); the request was not delivered.
    fn send(&mut self, req_id: u64, session: u64, req: ZkRequest) -> Result<(), ZkError>;

    /// Await the next event from the server, up to `timeout`. `None` means
    /// nothing arrived (timeout or a link failure — the next `send` will
    /// surface the error / trigger a reconnect).
    fn recv(&mut self, timeout: Duration) -> Option<ClientEvent>;

    /// Called by [`ZkClient::request`]'s retry loop after a transient
    /// failure, before the next attempt. Transports with a failover list
    /// move to another server here; pinned transports do nothing.
    fn on_retry(&mut self) {}

    /// Monotone count of times this transport has switched or
    /// re-established its server connection. A change means subsequent
    /// requests may reach a *different* (possibly lagging) replica —
    /// [`ReadConsistency::SyncThenLocal`] re-barriers on it.
    fn reconnects(&self) -> u64 {
        0
    }

    /// Take the newest unsolicited lease grant the server pushed on this
    /// connection (TCP piggybacks grants on idle heartbeat slots), with its
    /// ttl already decayed to the call instant. Default: never (transports
    /// without a push path renew via explicit [`ZkClient::ping_lease`]).
    fn pushed_lease(&mut self) -> Option<crate::api::LeaseGrant> {
        None
    }
}

/// In-process transport: crossbeam channels to [`ThreadCluster`] server
/// threads. Holds every member's inbox; with failover enabled, a failed
/// request re-registers the session's event channel at the next member.
pub struct ChannelTransport {
    client: ClientId,
    servers: Vec<Sender<Envelope>>,
    cursor: usize,
    failover: bool,
    events_tx: Sender<ClientEvent>,
    events: Receiver<ClientEvent>,
    reconnects: u64,
}

impl ChannelTransport {
    fn register(&self) {
        let _ = self.servers[self.cursor]
            .send(Envelope::Register { client: self.client, events: self.events_tx.clone() });
    }

    /// Index of the ensemble member this session currently sends to (the
    /// channel-transport analogue of [`crate::tcp::TcpTransport::connected_addr`]).
    /// Failover tests use it to kill the member actually serving a session.
    pub fn connected_index(&self) -> usize {
        self.cursor
    }
}

impl ClientTransport for ChannelTransport {
    fn send(&mut self, req_id: u64, session: u64, req: ZkRequest) -> Result<(), ZkError> {
        self.servers[self.cursor]
            .send(Envelope::Client { client: self.client, req_id, session, req })
            .map_err(|_| ZkError::ConnectionLoss)
    }

    fn recv(&mut self, timeout: Duration) -> Option<ClientEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    fn on_retry(&mut self) {
        // A crashed thread-cluster server silently swallows requests (the
        // channel stays open), so the only failover signal is the timeout
        // that brought us here: move to the next member and re-register.
        if self.failover && self.servers.len() > 1 {
            self.cursor = (self.cursor + 1) % self.servers.len();
            self.reconnects += 1;
            self.register();
        }
    }

    fn reconnects(&self) -> u64 {
        self.reconnects
    }
}

/// A coordination ensemble running on OS threads.
pub struct ThreadCluster {
    senders: Vec<Sender<Envelope>>,
    handles: Vec<JoinHandle<()>>,
    next_client: AtomicU64,
    epoch: Instant,
}

impl ThreadCluster {
    pub(crate) fn start_inner(
        voters: usize,
        observers: usize,
        zab: ZabConfig,
        wal_dir: Option<PathBuf>,
    ) -> Self {
        let n = voters + observers;
        let config = EnsembleConfig::with_observers(voters, observers);
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }
        let epoch = Instant::now();
        let mut handles = Vec::with_capacity(n);
        for (i, rx) in receivers.into_iter().enumerate() {
            let peers = senders.clone();
            let cfg = config.clone();
            let me = PeerId(i as u32);
            let dir = wal_dir.as_ref().map(|d| d.join(format!("server-{i}")));
            handles.push(
                std::thread::Builder::new()
                    .name(format!("coord-{i}"))
                    .spawn(move || server_thread(me, cfg, zab, rx, peers, epoch, dir))
                    .expect("spawn server thread"),
            );
        }
        ThreadCluster { senders, handles, next_client: AtomicU64::new(1), epoch }
    }

    /// Ensemble size.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Time since cluster start (the clock fed to servers).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a session per `opts`: first connects to member `opts.server`,
    /// optionally failing over across the ensemble, with reads served at
    /// `opts.consistency`. Retries while the ensemble elects.
    pub fn client(&self, opts: ClientOptions) -> Result<ZkClient, ZkError> {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        let transport = ChannelTransport {
            client: id,
            servers: self.senders.clone(),
            cursor: opts.server % self.senders.len(),
            failover: opts.failover,
            events_tx: tx,
            events: rx,
            reconnects: 0,
        };
        transport.register();
        let mut c = ZkClient::establish(transport)?;
        c.set_consistency(opts.consistency);
        Ok(c)
    }

    /// Probe one server's status.
    pub fn status(&self, server_idx: usize) -> ServerStatus {
        let (tx, rx) = bounded(1);
        self.senders[server_idx].send(Envelope::Inspect { reply: tx }).expect("server alive");
        rx.recv_timeout(Duration::from_secs(5)).expect("status reply")
    }

    /// Index of the established leader, if any.
    pub fn leader_index(&self) -> Option<usize> {
        (0..self.len()).find(|&i| self.status(i).is_leader)
    }

    /// Wait (up to `timeout`) for a leader to be established.
    pub fn await_leader(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Some(l) = self.leader_index() {
                return Some(l);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        None
    }

    /// Crash a server (drops its volatile state; the log survives).
    pub fn crash(&self, server_idx: usize) {
        let _ = self.senders[server_idx].send(Envelope::Crash);
    }

    /// Restart a crashed server.
    pub fn restart(&self, server_idx: usize) {
        let _ = self.senders[server_idx].send(Envelope::Restart);
    }

    /// Stop all server threads and join them.
    pub fn shutdown(self) {
        for s in &self.senders {
            let _ = s.send(Envelope::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn server_thread(
    me: PeerId,
    config: EnsembleConfig,
    zab: ZabConfig,
    rx: Receiver<Envelope>,
    peers: Vec<Sender<Envelope>>,
    epoch: Instant,
    wal_dir: Option<PathBuf>,
) {
    let (mut server, init) = match wal_dir {
        Some(dir) => {
            let storage = FileStorage::new(&dir).expect("open WAL directory");
            CoordServer::new_durable(me, config, zab, Box::new(storage))
                .expect("recover server state from its write-ahead log")
        }
        None => CoordServer::new_with_config(me, config, zab),
    };
    let mut clients: HashMap<ClientId, Sender<ClientEvent>> = HashMap::new();
    let mut timers: Vec<(Instant, CoordTimer)> = Vec::new();
    let mut alive = true;

    let now_ns = |epoch: &Instant| epoch.elapsed().as_nanos() as u64;

    let exec = |outs: Vec<ServerOut>,
                clients: &mut HashMap<ClientId, Sender<ClientEvent>>,
                timers: &mut Vec<(Instant, CoordTimer)>,
                peers: &[Sender<Envelope>],
                me: PeerId| {
        for o in outs {
            match o {
                ServerOut::Client { client, req_id, resp } => {
                    if let Some(tx) = clients.get(&client) {
                        let _ = tx.send(ClientEvent::Resp { req_id, resp });
                    }
                }
                ServerOut::Peer { to, msg } => {
                    if let Some(tx) = peers.get(to.0 as usize) {
                        let _ = tx.send(Envelope::Peer { from: me, msg });
                    }
                }
                ServerOut::Timer { timer, after_ms } => {
                    timers.push((
                        Instant::now() + Duration::from_millis(after_ms * TIME_DILATION),
                        timer,
                    ));
                }
                ServerOut::Watch { client, note } => {
                    if let Some(tx) = clients.get(&client) {
                        let _ = tx.send(ClientEvent::Watch(note));
                    }
                }
            }
        }
    };

    exec(init, &mut clients, &mut timers, &peers, me);

    loop {
        // Fire due timers.
        if alive {
            let now = Instant::now();
            let mut due = Vec::new();
            timers.retain(|&(at, t)| {
                if at <= now {
                    due.push(t);
                    false
                } else {
                    true
                }
            });
            for t in due {
                let outs = server.handle(now_ns(&epoch), ServerIn::Timer(t));
                exec(outs, &mut clients, &mut timers, &peers, me);
            }
        }
        // Wait for traffic or the next timer.
        let next_deadline = timers.iter().map(|&(at, _)| at).min();
        let wait = next_deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(Envelope::Shutdown) => return,
            Ok(Envelope::Register { client, events }) => {
                clients.insert(client, events);
            }
            Ok(Envelope::Crash) => {
                if alive {
                    alive = false;
                    timers.clear();
                    server.on_crash();
                }
            }
            Ok(Envelope::Restart) => {
                if !alive {
                    alive = true;
                    let outs = server.on_restart(now_ns(&epoch));
                    exec(outs, &mut clients, &mut timers, &peers, me);
                }
            }
            Ok(Envelope::Inspect { reply }) => {
                let _ = reply.send(ServerStatus {
                    is_leader: alive && server.is_leader(),
                    last_applied: server.last_applied(),
                    committed: server.committed(),
                    node_count: server.tree().node_count(),
                    digest: server.tree().digest(),
                    alive,
                });
            }
            Ok(Envelope::Client { client, req_id, session, req }) => {
                if alive {
                    let outs = server
                        .handle(now_ns(&epoch), ServerIn::Client { client, req_id, session, req });
                    exec(outs, &mut clients, &mut timers, &peers, me);
                }
            }
            Ok(Envelope::Peer { from, msg }) => {
                if alive {
                    let outs = server.handle(now_ns(&epoch), ServerIn::Peer { from, msg });
                    exec(outs, &mut clients, &mut timers, &peers, me);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Synchronous client handle — the `zoo_*` API surface. Generic over its
/// [`ClientTransport`]: the default reaches a [`ThreadCluster`] server over
/// an in-process channel; [`crate::tcp::TcpZkClient`] is the same client
/// over a real socket.
pub struct ZkClient<T: ClientTransport = ChannelTransport> {
    transport: T,
    session: u64,
    next_req: u64,
    timeout: Duration,
    watches: VecDeque<WatchNotification>,
    consistency: ReadConsistency,
    /// Written since the last `sync` barrier — a local read could miss our
    /// own acked writes if the serving replica lags.
    dirty: bool,
    /// Transport reconnect count at the last barrier; a change means we may
    /// now be talking to a different (possibly lagging) replica.
    seen_reconnects: u64,
}

impl<T: ClientTransport> ZkClient<T> {
    /// Wrap a transport and establish a session, retrying through
    /// elections and reconnects (up to ~30 s).
    pub fn establish(transport: T) -> Result<Self, ZkError> {
        let mut c = ZkClient {
            transport,
            session: 0,
            next_req: 1,
            timeout: Duration::from_secs(5),
            watches: VecDeque::new(),
            consistency: ReadConsistency::Local,
            dirty: false,
            seen_reconnects: 0,
        };
        for _ in 0..300 {
            match c.raw_request(ZkRequest::Connect) {
                ZkResponse::Connected { session } => {
                    c.session = session;
                    c.seen_reconnects = c.transport.reconnects();
                    return Ok(c);
                }
                _ => {
                    c.transport.on_retry();
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        Err(ZkError::ConnectionLoss)
    }

    /// Change this session's read-recency level (see [`ReadConsistency`]).
    pub fn set_consistency(&mut self, consistency: ReadConsistency) {
        self.consistency = consistency;
    }

    /// The session's current read-recency level.
    pub fn consistency(&self) -> ReadConsistency {
        self.consistency
    }

    /// This client's session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Adjust the per-request timeout (default 5 s).
    pub fn set_timeout(&mut self, t: Duration) {
        self.timeout = t;
    }

    /// The underlying transport (diagnostics — e.g. TCP counters).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    fn raw_request(&mut self, req: ZkRequest) -> ZkResponse {
        let req_id = self.next_req;
        self.next_req += 1;
        if let Err(e) = self.transport.send(req_id, self.session, req) {
            return ZkResponse::Error(e);
        }
        let deadline = Instant::now() + self.timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return ZkResponse::Error(ZkError::ConnectionLoss);
            }
            match self.transport.recv(left) {
                Some(ClientEvent::Resp { req_id: rid, resp }) if rid == req_id => return resp,
                Some(ClientEvent::Resp { .. }) => {} // stale response from a timed-out request
                Some(ClientEvent::Watch(n)) => self.watches.push_back(n),
                None => return ZkResponse::Error(ZkError::ConnectionLoss),
            }
        }
    }

    /// Submit a request WITHOUT waiting for its response — the
    /// `zoo_acreate`-style asynchronous API. Returns the request id; the
    /// response arrives later via [`ZkClient::next_completion`].
    ///
    /// Per-session FIFO is preserved end to end: requests travel one
    /// ordered channel to one server, which processes a session's requests
    /// in arrival order, and responses come back on one ordered channel.
    /// A session may keep any number of submissions outstanding
    /// (pipelining); callers bound the depth themselves.
    pub fn submit(&mut self, req: ZkRequest) -> u64 {
        if !req.is_read() {
            self.dirty = true;
        }
        let req_id = self.next_req;
        self.next_req += 1;
        let _ = self.transport.send(req_id, self.session, req);
        req_id
    }

    /// Await the next pipelined response, in submission order. Watch
    /// notifications encountered on the way are buffered for `take_watch`.
    /// `None` means timeout or a dead server (treat as connection loss).
    pub fn next_completion(&mut self) -> Option<(u64, ZkResponse)> {
        let deadline = Instant::now() + self.timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            match self.transport.recv(left) {
                Some(ClientEvent::Resp { req_id, resp }) => return Some((req_id, resp)),
                Some(ClientEvent::Watch(n)) => self.watches.push_back(n),
                None => return None,
            }
        }
    }

    /// Issue a request, retrying on the transient errors —
    /// `ConnectionLoss` (elections in progress), `Net` (a dropped socket;
    /// the transport reconnects underneath) and `TxnBusy` (the path is
    /// fenced by a prepared cross-shard transaction whose decision should
    /// land within a round trip or two). Idempotence caveats are the
    /// caller's concern, as with real ZooKeeper.
    pub fn request(&mut self, req: ZkRequest) -> ZkResponse {
        if !req.is_read() {
            // Conservative: mark dirty before the send, so a write whose ack
            // we lose still forces a barrier before the next local read.
            self.dirty = true;
        }
        let mut last = ZkError::ConnectionLoss;
        for attempt in 0..8 {
            let resp = self.raw_request(req.clone());
            match resp.err() {
                Some(e @ (ZkError::ConnectionLoss | ZkError::Net | ZkError::TxnBusy)) => last = e,
                _ => return resp,
            }
            self.transport.on_retry();
            std::thread::sleep(Duration::from_millis(50 << attempt.min(4)));
        }
        ZkResponse::Error(last)
    }

    /// Issue a read at this session's [`ReadConsistency`] level, inserting
    /// a [`ZkClient::sync`] barrier when the level requires one. If the
    /// transport fails over mid-read, the answer may have come from a
    /// replica the barrier never covered — re-barrier and re-read.
    fn read_request(&mut self, req: ZkRequest) -> ZkResponse {
        if self.consistency == ReadConsistency::Local {
            return self.request(req);
        }
        let mut resp = ZkResponse::Error(ZkError::ConnectionLoss);
        for _ in 0..4 {
            let need = match self.consistency {
                ReadConsistency::Linearizable => true,
                ReadConsistency::SyncThenLocal => {
                    self.dirty || self.transport.reconnects() != self.seen_reconnects
                }
                ReadConsistency::Local => false,
            };
            if need {
                if let Err(e) = self.sync() {
                    return ZkResponse::Error(e);
                }
            }
            let rc = self.transport.reconnects();
            resp = self.request(req.clone());
            if self.transport.reconnects() == rc {
                return resp;
            }
        }
        resp
    }

    /// `zoo_create`: returns the actual created path.
    pub fn create(&mut self, path: &str, data: Bytes, mode: CreateMode) -> Result<String, ZkError> {
        match self.request(ZkRequest::Create { path: path.into(), data, mode }) {
            ZkResponse::Created { path } => Ok(path),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// `zoo_delete`.
    pub fn delete(&mut self, path: &str, version: Option<u32>) -> Result<(), ZkError> {
        match self.request(ZkRequest::Delete { path: path.into(), version }) {
            ZkResponse::Deleted => Ok(()),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// `zoo_set`.
    pub fn set_data(
        &mut self,
        path: &str,
        data: Bytes,
        version: Option<u32>,
    ) -> Result<Stat, ZkError> {
        match self.request(ZkRequest::SetData { path: path.into(), data, version }) {
            ZkResponse::Stat(s) => Ok(s),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// `zoo_get`.
    pub fn get_data(&mut self, path: &str, watch: Watch) -> Result<(Bytes, Stat), ZkError> {
        match self.read_request(ZkRequest::GetData { path: path.into(), watch: watch.is_set() }) {
            ZkResponse::Data { data, stat } => Ok((data, stat)),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// `zoo_exists`.
    pub fn exists(&mut self, path: &str, watch: Watch) -> Result<Option<Stat>, ZkError> {
        match self.read_request(ZkRequest::Exists { path: path.into(), watch: watch.is_set() }) {
            ZkResponse::ExistsResult(s) => Ok(s),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// `zoo_get_children`.
    pub fn get_children(
        &mut self,
        path: &str,
        watch: Watch,
    ) -> Result<(Vec<String>, Stat), ZkError> {
        match self.read_request(ZkRequest::GetChildren { path: path.into(), watch: watch.is_set() })
        {
            ZkResponse::Children { names, stat } => Ok((names, stat)),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Batched listing: children plus each child's data and stat in one
    /// round trip (the primitive behind DUFS `readdir_plus`).
    pub fn get_children_data(&mut self, path: &str) -> Result<Vec<(String, Bytes, Stat)>, ZkError> {
        match self.read_request(ZkRequest::GetChildrenData { path: path.into() }) {
            ZkResponse::ChildrenData { entries } => Ok(entries),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// READDIRPLUS bulk warm: the [`ZkClient::get_children_data`] listing
    /// plus the parent's stat, with one-shot watches installed server-side —
    /// a child watch on the parent and a data watch on every returned child
    /// — all in a single round trip. The caching layer builds its
    /// `warm_children` on this instead of the N+1 list-then-get loop.
    pub fn warm_children(&mut self, path: &str) -> Result<crate::WarmedDir, ZkError> {
        match self.read_request(ZkRequest::WarmChildren { path: path.into() }) {
            ZkResponse::WarmedChildren { entries, stat } => Ok((entries, stat)),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Atomic multi-op transaction.
    pub fn multi(&mut self, ops: Vec<MultiOp>) -> Result<Vec<MultiResult>, ZkError> {
        match self.request(ZkRequest::Multi { ops }) {
            ZkResponse::MultiResults(r) => Ok(r),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Create with missing-ancestor materialization (`mkdir -p` for the
    /// parent chain) — the create the sharded client routes everywhere,
    /// since a shard owns a path without necessarily owning its ancestors.
    pub fn create_path(
        &mut self,
        path: &str,
        data: Bytes,
        mode: CreateMode,
    ) -> Result<String, ZkError> {
        match self.request(ZkRequest::CreatePath { path: path.into(), data, mode }) {
            ZkResponse::Created { path } => Ok(path),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// 2PC phase one: validate and fence this shard's slice of transaction
    /// `txn_id`, parking the ops (and the full participant list, for
    /// recovery) durably until a decision.
    pub fn txn_prepare(
        &mut self,
        txn_id: u64,
        ops: Vec<MultiOp>,
        participants: Vec<u32>,
    ) -> Result<(), ZkError> {
        match self.request(ZkRequest::TxnPrepare { txn_id, ops, participants }) {
            ZkResponse::Prepared => Ok(()),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// 2PC decision: commit the prepared slice of `txn_id`. `Ok(true)`
    /// means the slice applied now; `Ok(false)` means the shard held no
    /// prepared slice under the id (already decided here). Safe to retry.
    pub fn txn_commit(&mut self, txn_id: u64) -> Result<bool, ZkError> {
        match self.request(ZkRequest::TxnCommit { txn_id }) {
            ZkResponse::Committed => Ok(true),
            ZkResponse::TxnUnknown => Ok(false),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// 2PC decision: abort the prepared slice of `txn_id`. `Ok(true)`
    /// means a slice was discarded now; `Ok(false)` means nothing was
    /// prepared under the id. Safe to retry.
    pub fn txn_abort(&mut self, txn_id: u64) -> Result<bool, ZkError> {
        match self.request(ZkRequest::TxnAbort { txn_id }) {
            ZkResponse::Aborted => Ok(true),
            ZkResponse::TxnUnknown => Ok(false),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Barrier: propose a no-op through ZAB and wait for the serving
    /// replica to apply it. When it returns, that replica has applied every
    /// write committed before the barrier was issued (total order), so
    /// subsequent local reads observe them all.
    pub fn sync(&mut self) -> Result<u64, ZkError> {
        self.sync_with(false).map(|(zxid, _)| zxid)
    }

    /// Barrier that may ride another session's no-op proposal already in
    /// flight at the serving replica (one ZAB round answers every rider).
    /// Returns `(zxid, coalesced)`. Safe only on an unchanged connection —
    /// this method enforces that: if the transport reconnected while a
    /// coalesced barrier was in flight, the open barrier it rode may have
    /// been proposed *before* this session's pre-reconnect writes
    /// committed, so it silently re-issues a strict (uncoalesced) barrier
    /// before trusting the result.
    pub fn sync_coalesced(&mut self) -> Result<(u64, bool), ZkError> {
        self.sync_with(self.transport.reconnects() == self.seen_reconnects)
    }

    fn sync_with(&mut self, coalesce: bool) -> Result<(u64, bool), ZkError> {
        let before = self.transport.reconnects();
        match self.request(ZkRequest::Sync { coalesce }) {
            ZkResponse::Synced { zxid, coalesced } => {
                // Reconnects only advance on send/on_retry, so reading the
                // counter after the response still describes the replica
                // that served it.
                if coalesce && self.transport.reconnects() != before {
                    // Mid-request reconnect: the ride is not trustworthy.
                    return self.sync_with(false);
                }
                self.dirty = false;
                self.seen_reconnects = self.transport.reconnects();
                Ok((zxid, coalesced))
            }
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Whether this session has written since its last `sync` barrier.
    /// The sharded client uses this to barrier only the shards a write
    /// actually touched.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Liveness ping; returns the server's applied zxid.
    pub fn ping(&mut self) -> Result<u64, ZkError> {
        self.ping_lease().map(|(zxid, _)| zxid)
    }

    /// Liveness ping that also collects the replica's staleness lease, if
    /// it can grant one right now (see [`crate::api::LeaseGrant`]). The
    /// cache layer renews its lease through this.
    pub fn ping_lease(&mut self) -> Result<(u64, Option<crate::api::LeaseGrant>), ZkError> {
        match self.request(ZkRequest::Ping) {
            ZkResponse::Pong { zxid, lease } => Ok((zxid, lease)),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Take the newest lease grant the server pushed unsolicited on this
    /// session's connection (TCP heartbeat piggyback), if any.
    pub fn pushed_lease(&mut self) -> Option<crate::api::LeaseGrant> {
        self.transport.pushed_lease()
    }

    /// Monotone transport reconnect counter (see
    /// [`ClientTransport::reconnects`]); the cache layer invalidates
    /// wholesale whenever it moves.
    pub fn reconnects(&self) -> u64 {
        self.transport.reconnects()
    }

    /// Close the session (deleting its ephemerals).
    pub fn close(mut self) -> Result<(), ZkError> {
        match self.request(ZkRequest::CloseSession) {
            ZkResponse::Closed => Ok(()),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Pop a pending watch notification, if one arrived.
    pub fn take_watch(&mut self) -> Option<WatchNotification> {
        // Drain anything sitting in the transport first.
        while let Some(ev) = self.transport.recv(Duration::ZERO) {
            match ev {
                ClientEvent::Watch(n) => self.watches.push_back(n),
                ClientEvent::Resp { .. } => {}
            }
        }
        self.watches.pop_front()
    }

    /// Block up to `timeout` for a watch notification.
    pub fn await_watch(&mut self, timeout: Duration) -> Option<WatchNotification> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(n) = self.take_watch() {
                return Some(n);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            match self.transport.recv(left) {
                Some(ClientEvent::Watch(n)) => return Some(n),
                Some(ClientEvent::Resp { .. }) => {}
                None => return None,
            }
        }
    }
}
