//! Threaded runtime: hosts a coordination ensemble on OS threads with
//! channel "networking", and exposes the synchronous client API the DUFS
//! prototype uses (paper §IV-D: "The synchronous ZooKeeper API were used").
//!
//! This is the runtime used by the library examples and the functional
//! integration tests; the performance figures use the deterministic
//! simulator in `dufs-mdtest` instead (same [`CoordServer`] state machine,
//! different driver).

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

use dufs_wal::FileStorage;
use dufs_zab::{EnsembleConfig, PeerId, ZabConfig};
use dufs_zkstore::{CreateMode, MultiOp, MultiResult, Stat, ZkError};

use crate::api::{ZkRequest, ZkResponse};
use crate::server::{ClientId, CoordMsg, CoordServer, CoordTimer, ServerIn, ServerOut};
use crate::watch::WatchNotification;

/// Multiplier applied to every protocol timer by the live runtimes (threaded
/// and TCP). The state machines are tuned for a quiet network; on a loaded CI
/// machine, scheduling jitter of hundreds of ms would otherwise trip
/// watchdogs and flap elections. Relative timing is preserved.
pub(crate) const TIME_DILATION: u64 = 3;

/// Events delivered to a client handle.
#[derive(Debug, Clone)]
pub enum ClientEvent {
    /// Response to a request.
    Resp {
        /// Echo of the request id.
        req_id: u64,
        /// The response.
        resp: ZkResponse,
    },
    /// An asynchronous watch notification.
    Watch(WatchNotification),
}

/// Snapshot of one server's state (test/diagnostic probe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStatus {
    /// Whether this server is the established leader.
    pub is_leader: bool,
    /// Raw zxid applied up to.
    pub last_applied: u64,
    /// Number of znodes in the local replica.
    pub node_count: usize,
    /// Content digest of the local replica.
    pub digest: u64,
    /// Whether the simulated process is up.
    pub alive: bool,
}

enum Envelope {
    Client { client: ClientId, req_id: u64, session: u64, req: ZkRequest },
    Register { client: ClientId, events: Sender<ClientEvent> },
    Peer { from: PeerId, msg: CoordMsg },
    Inspect { reply: Sender<ServerStatus> },
    Crash,
    Restart,
    Shutdown,
}

/// How a [`ZkClient`] session reaches its server: an in-process channel
/// ([`ChannelTransport`], the [`ThreadCluster`] runtime) or a TCP
/// connection ([`crate::tcp::TcpTransport`]). The client logic — request
/// ids, pipelining, retry policy — is transport-agnostic.
pub trait ClientTransport {
    /// Queue one request. An error means the link is down *right now*
    /// (dead server / dropped socket); the request was not delivered.
    fn send(&mut self, req_id: u64, session: u64, req: ZkRequest) -> Result<(), ZkError>;

    /// Await the next event from the server, up to `timeout`. `None` means
    /// nothing arrived (timeout or a link failure — the next `send` will
    /// surface the error / trigger a reconnect).
    fn recv(&mut self, timeout: Duration) -> Option<ClientEvent>;
}

/// In-process transport: one crossbeam channel pair to a
/// [`ThreadCluster`] server thread.
pub struct ChannelTransport {
    client: ClientId,
    server: Sender<Envelope>,
    events: Receiver<ClientEvent>,
}

impl ClientTransport for ChannelTransport {
    fn send(&mut self, req_id: u64, session: u64, req: ZkRequest) -> Result<(), ZkError> {
        self.server
            .send(Envelope::Client { client: self.client, req_id, session, req })
            .map_err(|_| ZkError::ConnectionLoss)
    }

    fn recv(&mut self, timeout: Duration) -> Option<ClientEvent> {
        self.events.recv_timeout(timeout).ok()
    }
}

/// A coordination ensemble running on OS threads.
pub struct ThreadCluster {
    senders: Vec<Sender<Envelope>>,
    handles: Vec<JoinHandle<()>>,
    next_client: AtomicU64,
    epoch: Instant,
}

impl ThreadCluster {
    /// Start an ensemble of `n` voting servers.
    pub fn start(n: usize) -> Self {
        Self::start_with_observers(n, 0)
    }

    /// Start `voters` voting servers plus `observers` non-voting read
    /// replicas (ids `voters..voters+observers`).
    pub fn start_with_observers(voters: usize, observers: usize) -> Self {
        Self::start_full(voters, observers, ZabConfig::default())
    }

    /// Start an ensemble of `n` voting servers with explicit group-commit
    /// tuning for the write path.
    pub fn start_with_config(n: usize, zab: ZabConfig) -> Self {
        Self::start_full(n, 0, zab)
    }

    /// Start `voters` + `observers` servers with explicit group-commit
    /// tuning.
    pub fn start_full(voters: usize, observers: usize, zab: ZabConfig) -> Self {
        Self::start_inner(voters, observers, zab, None)
    }

    /// Start a *durable* ensemble: each server runs a file-backed
    /// write-ahead log under `dir/server-<id>` and fsyncs every replicated
    /// batch before acknowledging it. A server restarted after a crash —
    /// or a whole ensemble started over an existing directory — recovers
    /// its state from disk (newest valid checkpoint + log-tail replay).
    pub fn start_durable(n: usize, dir: impl AsRef<Path>) -> Self {
        Self::start_inner(n, 0, ZabConfig::default(), Some(dir.as_ref().to_path_buf()))
    }

    /// [`ThreadCluster::start_durable`] with explicit group-commit tuning.
    pub fn start_durable_with_config(n: usize, zab: ZabConfig, dir: impl AsRef<Path>) -> Self {
        Self::start_inner(n, 0, zab, Some(dir.as_ref().to_path_buf()))
    }

    fn start_inner(
        voters: usize,
        observers: usize,
        zab: ZabConfig,
        wal_dir: Option<PathBuf>,
    ) -> Self {
        let n = voters + observers;
        let config = EnsembleConfig::with_observers(voters, observers);
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }
        let epoch = Instant::now();
        let mut handles = Vec::with_capacity(n);
        for (i, rx) in receivers.into_iter().enumerate() {
            let peers = senders.clone();
            let cfg = config.clone();
            let me = PeerId(i as u32);
            let dir = wal_dir.as_ref().map(|d| d.join(format!("server-{i}")));
            handles.push(
                std::thread::Builder::new()
                    .name(format!("coord-{i}"))
                    .spawn(move || server_thread(me, cfg, zab, rx, peers, epoch, dir))
                    .expect("spawn server thread"),
            );
        }
        ThreadCluster { senders, handles, next_client: AtomicU64::new(1), epoch }
    }

    /// Ensemble size.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Time since cluster start (the clock fed to servers).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a session against server `server_idx`. Retries while the
    /// ensemble elects.
    pub fn client(&self, server_idx: usize) -> ZkClient {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        let server = self.senders[server_idx].clone();
        server.send(Envelope::Register { client: id, events: tx }).expect("server alive");
        let transport = ChannelTransport { client: id, server, events: rx };
        ZkClient::establish(transport).expect("ensemble failed to accept a session")
    }

    /// Probe one server's status.
    pub fn status(&self, server_idx: usize) -> ServerStatus {
        let (tx, rx) = bounded(1);
        self.senders[server_idx].send(Envelope::Inspect { reply: tx }).expect("server alive");
        rx.recv_timeout(Duration::from_secs(5)).expect("status reply")
    }

    /// Index of the established leader, if any.
    pub fn leader_index(&self) -> Option<usize> {
        (0..self.len()).find(|&i| self.status(i).is_leader)
    }

    /// Wait (up to `timeout`) for a leader to be established.
    pub fn await_leader(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Some(l) = self.leader_index() {
                return Some(l);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        None
    }

    /// Crash a server (drops its volatile state; the log survives).
    pub fn crash(&self, server_idx: usize) {
        let _ = self.senders[server_idx].send(Envelope::Crash);
    }

    /// Restart a crashed server.
    pub fn restart(&self, server_idx: usize) {
        let _ = self.senders[server_idx].send(Envelope::Restart);
    }

    /// Stop all server threads and join them.
    pub fn shutdown(self) {
        for s in &self.senders {
            let _ = s.send(Envelope::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn server_thread(
    me: PeerId,
    config: EnsembleConfig,
    zab: ZabConfig,
    rx: Receiver<Envelope>,
    peers: Vec<Sender<Envelope>>,
    epoch: Instant,
    wal_dir: Option<PathBuf>,
) {
    let (mut server, init) = match wal_dir {
        Some(dir) => {
            let storage = FileStorage::new(&dir).expect("open WAL directory");
            CoordServer::new_durable(me, config, zab, Box::new(storage))
                .expect("recover server state from its write-ahead log")
        }
        None => CoordServer::new_with_config(me, config, zab),
    };
    let mut clients: HashMap<ClientId, Sender<ClientEvent>> = HashMap::new();
    let mut timers: Vec<(Instant, CoordTimer)> = Vec::new();
    let mut alive = true;

    let now_ns = |epoch: &Instant| epoch.elapsed().as_nanos() as u64;

    let exec = |outs: Vec<ServerOut>,
                clients: &mut HashMap<ClientId, Sender<ClientEvent>>,
                timers: &mut Vec<(Instant, CoordTimer)>,
                peers: &[Sender<Envelope>],
                me: PeerId| {
        for o in outs {
            match o {
                ServerOut::Client { client, req_id, resp } => {
                    if let Some(tx) = clients.get(&client) {
                        let _ = tx.send(ClientEvent::Resp { req_id, resp });
                    }
                }
                ServerOut::Peer { to, msg } => {
                    if let Some(tx) = peers.get(to.0 as usize) {
                        let _ = tx.send(Envelope::Peer { from: me, msg });
                    }
                }
                ServerOut::Timer { timer, after_ms } => {
                    timers.push((
                        Instant::now() + Duration::from_millis(after_ms * TIME_DILATION),
                        timer,
                    ));
                }
                ServerOut::Watch { client, note } => {
                    if let Some(tx) = clients.get(&client) {
                        let _ = tx.send(ClientEvent::Watch(note));
                    }
                }
            }
        }
    };

    exec(init, &mut clients, &mut timers, &peers, me);

    loop {
        // Fire due timers.
        if alive {
            let now = Instant::now();
            let mut due = Vec::new();
            timers.retain(|&(at, t)| {
                if at <= now {
                    due.push(t);
                    false
                } else {
                    true
                }
            });
            for t in due {
                let outs = server.handle(now_ns(&epoch), ServerIn::Timer(t));
                exec(outs, &mut clients, &mut timers, &peers, me);
            }
        }
        // Wait for traffic or the next timer.
        let next_deadline = timers.iter().map(|&(at, _)| at).min();
        let wait = next_deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(Envelope::Shutdown) => return,
            Ok(Envelope::Register { client, events }) => {
                clients.insert(client, events);
            }
            Ok(Envelope::Crash) => {
                if alive {
                    alive = false;
                    timers.clear();
                    server.on_crash();
                }
            }
            Ok(Envelope::Restart) => {
                if !alive {
                    alive = true;
                    let outs = server.on_restart(now_ns(&epoch));
                    exec(outs, &mut clients, &mut timers, &peers, me);
                }
            }
            Ok(Envelope::Inspect { reply }) => {
                let _ = reply.send(ServerStatus {
                    is_leader: alive && server.is_leader(),
                    last_applied: server.last_applied(),
                    node_count: server.tree().node_count(),
                    digest: server.tree().digest(),
                    alive,
                });
            }
            Ok(Envelope::Client { client, req_id, session, req }) => {
                if alive {
                    let outs = server
                        .handle(now_ns(&epoch), ServerIn::Client { client, req_id, session, req });
                    exec(outs, &mut clients, &mut timers, &peers, me);
                }
            }
            Ok(Envelope::Peer { from, msg }) => {
                if alive {
                    let outs = server.handle(now_ns(&epoch), ServerIn::Peer { from, msg });
                    exec(outs, &mut clients, &mut timers, &peers, me);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Synchronous client handle — the `zoo_*` API surface. Generic over its
/// [`ClientTransport`]: the default reaches a [`ThreadCluster`] server over
/// an in-process channel; [`crate::tcp::TcpZkClient`] is the same client
/// over a real socket.
pub struct ZkClient<T: ClientTransport = ChannelTransport> {
    transport: T,
    session: u64,
    next_req: u64,
    timeout: Duration,
    watches: VecDeque<WatchNotification>,
}

impl<T: ClientTransport> ZkClient<T> {
    /// Wrap a transport and establish a session, retrying through
    /// elections and reconnects (up to ~30 s).
    pub fn establish(transport: T) -> Result<Self, ZkError> {
        let mut c = ZkClient {
            transport,
            session: 0,
            next_req: 1,
            timeout: Duration::from_secs(5),
            watches: VecDeque::new(),
        };
        for _ in 0..300 {
            match c.raw_request(ZkRequest::Connect) {
                ZkResponse::Connected { session } => {
                    c.session = session;
                    return Ok(c);
                }
                _ => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        Err(ZkError::ConnectionLoss)
    }

    /// This client's session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Adjust the per-request timeout (default 5 s).
    pub fn set_timeout(&mut self, t: Duration) {
        self.timeout = t;
    }

    /// The underlying transport (diagnostics — e.g. TCP counters).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    fn raw_request(&mut self, req: ZkRequest) -> ZkResponse {
        let req_id = self.next_req;
        self.next_req += 1;
        if let Err(e) = self.transport.send(req_id, self.session, req) {
            return ZkResponse::Error(e);
        }
        let deadline = Instant::now() + self.timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return ZkResponse::Error(ZkError::ConnectionLoss);
            }
            match self.transport.recv(left) {
                Some(ClientEvent::Resp { req_id: rid, resp }) if rid == req_id => return resp,
                Some(ClientEvent::Resp { .. }) => {} // stale response from a timed-out request
                Some(ClientEvent::Watch(n)) => self.watches.push_back(n),
                None => return ZkResponse::Error(ZkError::ConnectionLoss),
            }
        }
    }

    /// Submit a request WITHOUT waiting for its response — the
    /// `zoo_acreate`-style asynchronous API. Returns the request id; the
    /// response arrives later via [`ZkClient::next_completion`].
    ///
    /// Per-session FIFO is preserved end to end: requests travel one
    /// ordered channel to one server, which processes a session's requests
    /// in arrival order, and responses come back on one ordered channel.
    /// A session may keep any number of submissions outstanding
    /// (pipelining); callers bound the depth themselves.
    pub fn submit(&mut self, req: ZkRequest) -> u64 {
        let req_id = self.next_req;
        self.next_req += 1;
        let _ = self.transport.send(req_id, self.session, req);
        req_id
    }

    /// Await the next pipelined response, in submission order. Watch
    /// notifications encountered on the way are buffered for `take_watch`.
    /// `None` means timeout or a dead server (treat as connection loss).
    pub fn next_completion(&mut self) -> Option<(u64, ZkResponse)> {
        let deadline = Instant::now() + self.timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            match self.transport.recv(left) {
                Some(ClientEvent::Resp { req_id, resp }) => return Some((req_id, resp)),
                Some(ClientEvent::Watch(n)) => self.watches.push_back(n),
                None => return None,
            }
        }
    }

    /// Issue a request, retrying on the transient transport errors —
    /// `ConnectionLoss` (elections in progress) and `Net` (a dropped
    /// socket; the transport reconnects underneath). Idempotence caveats
    /// are the caller's concern, as with real ZooKeeper.
    pub fn request(&mut self, req: ZkRequest) -> ZkResponse {
        let mut last = ZkError::ConnectionLoss;
        for attempt in 0..8 {
            let resp = self.raw_request(req.clone());
            match resp.err() {
                Some(e @ (ZkError::ConnectionLoss | ZkError::Net)) => last = e,
                _ => return resp,
            }
            std::thread::sleep(Duration::from_millis(50 << attempt.min(4)));
        }
        ZkResponse::Error(last)
    }

    /// `zoo_create`: returns the actual created path.
    pub fn create(&mut self, path: &str, data: Bytes, mode: CreateMode) -> Result<String, ZkError> {
        match self.request(ZkRequest::Create { path: path.into(), data, mode }) {
            ZkResponse::Created { path } => Ok(path),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// `zoo_delete`.
    pub fn delete(&mut self, path: &str, version: Option<u32>) -> Result<(), ZkError> {
        match self.request(ZkRequest::Delete { path: path.into(), version }) {
            ZkResponse::Deleted => Ok(()),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// `zoo_set`.
    pub fn set_data(
        &mut self,
        path: &str,
        data: Bytes,
        version: Option<u32>,
    ) -> Result<Stat, ZkError> {
        match self.request(ZkRequest::SetData { path: path.into(), data, version }) {
            ZkResponse::Stat(s) => Ok(s),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// `zoo_get`.
    pub fn get_data(&mut self, path: &str, watch: bool) -> Result<(Bytes, Stat), ZkError> {
        match self.request(ZkRequest::GetData { path: path.into(), watch }) {
            ZkResponse::Data { data, stat } => Ok((data, stat)),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// `zoo_exists`.
    pub fn exists(&mut self, path: &str, watch: bool) -> Result<Option<Stat>, ZkError> {
        match self.request(ZkRequest::Exists { path: path.into(), watch }) {
            ZkResponse::ExistsResult(s) => Ok(s),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// `zoo_get_children`.
    pub fn get_children(
        &mut self,
        path: &str,
        watch: bool,
    ) -> Result<(Vec<String>, Stat), ZkError> {
        match self.request(ZkRequest::GetChildren { path: path.into(), watch }) {
            ZkResponse::Children { names, stat } => Ok((names, stat)),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Batched listing: children plus each child's data and stat in one
    /// round trip (the primitive behind DUFS `readdir_plus`).
    pub fn get_children_data(&mut self, path: &str) -> Result<Vec<(String, Bytes, Stat)>, ZkError> {
        match self.request(ZkRequest::GetChildrenData { path: path.into() }) {
            ZkResponse::ChildrenData { entries } => Ok(entries),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Atomic multi-op transaction.
    pub fn multi(&mut self, ops: Vec<MultiOp>) -> Result<Vec<MultiResult>, ZkError> {
        match self.request(ZkRequest::Multi { ops }) {
            ZkResponse::MultiResults(r) => Ok(r),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Flush this client's server up to the leader's commit point.
    pub fn sync(&mut self) -> Result<u64, ZkError> {
        match self.request(ZkRequest::Sync) {
            ZkResponse::Synced { zxid } => Ok(zxid),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Liveness ping; returns the server's applied zxid.
    pub fn ping(&mut self) -> Result<u64, ZkError> {
        match self.request(ZkRequest::Ping) {
            ZkResponse::Pong { zxid } => Ok(zxid),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Close the session (deleting its ephemerals).
    pub fn close(mut self) -> Result<(), ZkError> {
        match self.request(ZkRequest::CloseSession) {
            ZkResponse::Closed => Ok(()),
            r => Err(r.err().unwrap_or(ZkError::ConnectionLoss)),
        }
    }

    /// Pop a pending watch notification, if one arrived.
    pub fn take_watch(&mut self) -> Option<WatchNotification> {
        // Drain anything sitting in the transport first.
        while let Some(ev) = self.transport.recv(Duration::ZERO) {
            match ev {
                ClientEvent::Watch(n) => self.watches.push_back(n),
                ClientEvent::Resp { .. } => {}
            }
        }
        self.watches.pop_front()
    }

    /// Block up to `timeout` for a watch notification.
    pub fn await_watch(&mut self, timeout: Duration) -> Option<WatchNotification> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(n) = self.take_watch() {
                return Some(n);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            match self.transport.recv(left) {
                Some(ClientEvent::Watch(n)) => return Some(n),
                Some(ClientEvent::Resp { .. }) => {}
                None => return None,
            }
        }
    }
}
