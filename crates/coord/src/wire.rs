//! Binary codecs ([`dufs_net::Wire`]) for every message that crosses a
//! socket between coordination processes: the replication traffic
//! ([`CoordMsg`], including the full [`ZabMsg`] family) and the client
//! session protocol ([`ClientFrame`] / [`ServerFrame`]).
//!
//! Same discipline as the WAL record codec: little-endian, length-prefixed,
//! every length validated against the remaining input before allocation,
//! unknown tag bytes are a [`WireError`] — malformed bytes never panic and
//! never produce a silently wrong value (enforced by the round-trip and
//! corruption property tests in `tests/prop_wire.rs`).
//!
//! Enum discriminants start at 1 so an accidentally zeroed buffer cannot
//! alias a real message.

use bytes::Bytes;

use dufs_net::{put_blob, put_str, Wire, WireCursor, WireError};
use dufs_zab::{PeerId, Vote, ZabMsg, Zxid};
use dufs_zkstore::{CreateMode, MultiOp, MultiResult, Stat, ZkError};

use crate::api::{LeaseGrant, ZkRequest, ZkResponse};
use crate::runtime::ServerStatus;
use crate::server::CoordMsg;
use crate::txn::Txn;
use crate::watch::{WatchEventKind, WatchNotification};

// ---------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------

fn put_zxid(buf: &mut Vec<u8>, z: Zxid) {
    buf.extend_from_slice(&z.epoch().to_le_bytes());
    buf.extend_from_slice(&z.counter().to_le_bytes());
}

fn get_zxid(c: &mut WireCursor<'_>) -> Result<Zxid, WireError> {
    let epoch = c.u32()?;
    let counter = c.u32()?;
    Ok(Zxid::new(epoch, counter))
}

fn put_opt_u32(buf: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            buf.extend_from_slice(&x.to_le_bytes());
        }
    }
}

fn get_opt_u32(c: &mut WireCursor<'_>) -> Result<Option<u32>, WireError> {
    Ok(if c.bool()? { Some(c.u32()?) } else { None })
}

fn put_stat(buf: &mut Vec<u8>, s: &Stat) {
    buf.extend_from_slice(&s.czxid.to_le_bytes());
    buf.extend_from_slice(&s.mzxid.to_le_bytes());
    buf.extend_from_slice(&s.pzxid.to_le_bytes());
    buf.extend_from_slice(&s.ctime_ns.to_le_bytes());
    buf.extend_from_slice(&s.mtime_ns.to_le_bytes());
    buf.extend_from_slice(&s.version.to_le_bytes());
    buf.extend_from_slice(&s.cversion.to_le_bytes());
    buf.extend_from_slice(&s.ephemeral_owner.to_le_bytes());
    buf.extend_from_slice(&s.data_length.to_le_bytes());
    buf.extend_from_slice(&s.num_children.to_le_bytes());
}

fn get_stat(c: &mut WireCursor<'_>) -> Result<Stat, WireError> {
    Ok(Stat {
        czxid: c.u64()?,
        mzxid: c.u64()?,
        pzxid: c.u64()?,
        ctime_ns: c.u64()?,
        mtime_ns: c.u64()?,
        version: c.u32()?,
        cversion: c.u32()?,
        ephemeral_owner: c.u64()?,
        data_length: c.u32()?,
        num_children: c.u32()?,
    })
}

fn put_lease_grant(buf: &mut Vec<u8>, g: &LeaseGrant) {
    buf.extend_from_slice(&g.ttl_ms.to_le_bytes());
    buf.extend_from_slice(&g.epoch.to_le_bytes());
}

fn get_lease_grant(c: &mut WireCursor<'_>) -> Result<LeaseGrant, WireError> {
    Ok(LeaseGrant { ttl_ms: c.u32()?, epoch: c.u32()? })
}

fn mode_byte(m: CreateMode) -> u8 {
    match m {
        CreateMode::Persistent => 1,
        CreateMode::Ephemeral => 2,
        CreateMode::PersistentSequential => 3,
        CreateMode::EphemeralSequential => 4,
    }
}

fn mode_from(b: u8) -> Result<CreateMode, WireError> {
    Ok(match b {
        1 => CreateMode::Persistent,
        2 => CreateMode::Ephemeral,
        3 => CreateMode::PersistentSequential,
        4 => CreateMode::EphemeralSequential,
        t => return Err(WireError::BadTag(t)),
    })
}

fn err_byte(e: ZkError) -> u8 {
    match e {
        ZkError::NoNode => 1,
        ZkError::NodeExists => 2,
        ZkError::NotEmpty => 3,
        ZkError::BadVersion => 4,
        ZkError::NoChildrenForEphemerals => 5,
        ZkError::InvalidPath => 6,
        ZkError::SessionExpired => 7,
        ZkError::ConnectionLoss => 8,
        ZkError::RootReadOnly => 9,
        ZkError::CorruptSnapshot => 10,
        ZkError::Net => 11,
        ZkError::TxnBusy => 12,
    }
}

fn err_from(b: u8) -> Result<ZkError, WireError> {
    Ok(match b {
        1 => ZkError::NoNode,
        2 => ZkError::NodeExists,
        3 => ZkError::NotEmpty,
        4 => ZkError::BadVersion,
        5 => ZkError::NoChildrenForEphemerals,
        6 => ZkError::InvalidPath,
        7 => ZkError::SessionExpired,
        8 => ZkError::ConnectionLoss,
        9 => ZkError::RootReadOnly,
        10 => ZkError::CorruptSnapshot,
        11 => ZkError::Net,
        12 => ZkError::TxnBusy,
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_multi_op(buf: &mut Vec<u8>, op: &MultiOp) {
    match op {
        MultiOp::Create { path, data, mode } => {
            buf.push(1);
            put_str(buf, path);
            put_blob(buf, data);
            buf.push(mode_byte(*mode));
        }
        MultiOp::Delete { path, version } => {
            buf.push(2);
            put_str(buf, path);
            put_opt_u32(buf, *version);
        }
        MultiOp::SetData { path, data, version } => {
            buf.push(3);
            put_str(buf, path);
            put_blob(buf, data);
            put_opt_u32(buf, *version);
        }
        MultiOp::Check { path, version } => {
            buf.push(4);
            put_str(buf, path);
            put_opt_u32(buf, *version);
        }
    }
}

fn get_multi_op(c: &mut WireCursor<'_>) -> Result<MultiOp, WireError> {
    Ok(match c.u8()? {
        1 => MultiOp::Create {
            path: c.str()?,
            data: Bytes::copy_from_slice(c.blob()?),
            mode: mode_from(c.u8()?)?,
        },
        2 => MultiOp::Delete { path: c.str()?, version: get_opt_u32(c)? },
        3 => MultiOp::SetData {
            path: c.str()?,
            data: Bytes::copy_from_slice(c.blob()?),
            version: get_opt_u32(c)?,
        },
        4 => MultiOp::Check { path: c.str()?, version: get_opt_u32(c)? },
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_multi_result(buf: &mut Vec<u8>, r: &MultiResult) {
    match r {
        MultiResult::Created(path) => {
            buf.push(1);
            put_str(buf, path);
        }
        MultiResult::Deleted => buf.push(2),
        MultiResult::Set(stat) => {
            buf.push(3);
            put_stat(buf, stat);
        }
        MultiResult::Checked => buf.push(4),
    }
}

fn get_multi_result(c: &mut WireCursor<'_>) -> Result<MultiResult, WireError> {
    Ok(match c.u8()? {
        1 => MultiResult::Created(c.str()?),
        2 => MultiResult::Deleted,
        3 => MultiResult::Set(get_stat(c)?),
        4 => MultiResult::Checked,
        t => return Err(WireError::BadTag(t)),
    })
}

/// A replicated transaction travels as a blob in its own (WAL) codec —
/// one canonical byte form on disk and on the wire.
fn put_txn(buf: &mut Vec<u8>, t: &Txn) {
    put_blob(buf, &t.encode());
}

fn get_txn(c: &mut WireCursor<'_>) -> Result<Txn, WireError> {
    Txn::decode(c.blob()?).map_err(|_| WireError::Invalid("malformed txn record"))
}

fn put_vote(buf: &mut Vec<u8>, v: &Vote) {
    buf.extend_from_slice(&v.candidate.0.to_le_bytes());
    put_zxid(buf, v.candidate_zxid);
    buf.extend_from_slice(&v.round.to_le_bytes());
}

fn get_vote(c: &mut WireCursor<'_>) -> Result<Vote, WireError> {
    Ok(Vote { candidate: PeerId(c.u32()?), candidate_zxid: get_zxid(c)?, round: c.u64()? })
}

fn put_entries(buf: &mut Vec<u8>, entries: &[(Zxid, Txn)]) {
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (z, t) in entries {
        put_zxid(buf, *z);
        put_txn(buf, t);
    }
}

fn get_entries(c: &mut WireCursor<'_>) -> Result<Vec<(Zxid, Txn)>, WireError> {
    // Each entry is at least a zxid (8) plus a txn blob length (4).
    let n = c.count(12)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let z = get_zxid(c)?;
        out.push((z, get_txn(c)?));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Replication traffic
// ---------------------------------------------------------------------

/// Encode a replication message (free functions rather than a `Wire` impl:
/// the orphan rule forbids implementing the foreign `Wire` trait for the
/// foreign `ZabMsg` type, local `Txn` parameter notwithstanding).
pub fn put_zab_msg(msg: &ZabMsg<Txn>, buf: &mut Vec<u8>) {
    {
        match msg {
            ZabMsg::Notification { vote, established } => {
                buf.push(1);
                put_vote(buf, vote);
                match established {
                    None => buf.push(0),
                    Some(p) => {
                        buf.push(1);
                        buf.extend_from_slice(&p.0.to_le_bytes());
                    }
                }
            }
            ZabMsg::FollowerInfo { last_zxid, accepted_epoch } => {
                buf.push(2);
                put_zxid(buf, *last_zxid);
                buf.extend_from_slice(&accepted_epoch.to_le_bytes());
            }
            ZabMsg::SyncLog { epoch, snapshot, entries, commit_to, reset, snap_chunks } => {
                buf.push(3);
                buf.extend_from_slice(&epoch.to_le_bytes());
                match snapshot {
                    None => buf.push(0),
                    Some((z, blob)) => {
                        buf.push(1);
                        put_zxid(buf, *z);
                        put_blob(buf, blob);
                    }
                }
                put_entries(buf, entries);
                put_zxid(buf, *commit_to);
                buf.push(*reset as u8);
                buf.extend_from_slice(&snap_chunks.to_le_bytes());
            }
            ZabMsg::SnapChunk { epoch, zxid, seq, total, crc, data } => {
                buf.push(4);
                buf.extend_from_slice(&epoch.to_le_bytes());
                put_zxid(buf, *zxid);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&total.to_le_bytes());
                buf.extend_from_slice(&crc.to_le_bytes());
                put_blob(buf, data);
            }
            ZabMsg::AckSync { epoch } => {
                buf.push(5);
                buf.extend_from_slice(&epoch.to_le_bytes());
            }
            ZabMsg::Propose { zxid, txns } => {
                buf.push(6);
                put_zxid(buf, *zxid);
                buf.extend_from_slice(&(txns.len() as u32).to_le_bytes());
                for t in txns {
                    put_txn(buf, t);
                }
            }
            ZabMsg::Ack { zxid } => {
                buf.push(7);
                put_zxid(buf, *zxid);
            }
            ZabMsg::Commit { zxid } => {
                buf.push(8);
                put_zxid(buf, *zxid);
            }
            ZabMsg::Inform { zxid, txns } => {
                buf.push(9);
                put_zxid(buf, *zxid);
                buf.extend_from_slice(&(txns.len() as u32).to_le_bytes());
                for t in txns {
                    put_txn(buf, t);
                }
            }
            ZabMsg::Ping { epoch, commit_to } => {
                buf.push(10);
                buf.extend_from_slice(&epoch.to_le_bytes());
                put_zxid(buf, *commit_to);
            }
            ZabMsg::Pong => buf.push(11),
        }
    }
}

/// Decode a replication message (counterpart of [`put_zab_msg`]).
pub fn get_zab_msg(c: &mut WireCursor<'_>) -> Result<ZabMsg<Txn>, WireError> {
    {
        Ok(match c.u8()? {
            1 => ZabMsg::Notification {
                vote: get_vote(c)?,
                established: if c.bool()? { Some(PeerId(c.u32()?)) } else { None },
            },
            2 => ZabMsg::FollowerInfo { last_zxid: get_zxid(c)?, accepted_epoch: c.u32()? },
            3 => ZabMsg::SyncLog {
                epoch: c.u32()?,
                snapshot: if c.bool()? {
                    let z = get_zxid(c)?;
                    Some((z, Bytes::copy_from_slice(c.blob()?)))
                } else {
                    None
                },
                entries: get_entries(c)?,
                commit_to: get_zxid(c)?,
                reset: c.bool()?,
                snap_chunks: c.u32()?,
            },
            4 => ZabMsg::SnapChunk {
                epoch: c.u32()?,
                zxid: get_zxid(c)?,
                seq: c.u32()?,
                total: c.u32()?,
                crc: c.u32()?,
                data: Bytes::copy_from_slice(c.blob()?),
            },
            5 => ZabMsg::AckSync { epoch: c.u32()? },
            6 => {
                let zxid = get_zxid(c)?;
                let n = c.count(4)?;
                let mut txns = Vec::with_capacity(n);
                for _ in 0..n {
                    txns.push(get_txn(c)?);
                }
                ZabMsg::Propose { zxid, txns }
            }
            7 => ZabMsg::Ack { zxid: get_zxid(c)? },
            8 => ZabMsg::Commit { zxid: get_zxid(c)? },
            9 => {
                let zxid = get_zxid(c)?;
                let n = c.count(4)?;
                let mut txns = Vec::with_capacity(n);
                for _ in 0..n {
                    txns.push(get_txn(c)?);
                }
                ZabMsg::Inform { zxid, txns }
            }
            10 => ZabMsg::Ping { epoch: c.u32()?, commit_to: get_zxid(c)? },
            11 => ZabMsg::Pong,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for CoordMsg {
    fn wire_encode(&self, buf: &mut Vec<u8>) {
        match self {
            CoordMsg::Zab(m) => {
                buf.push(1);
                put_zab_msg(m, buf);
            }
            // A Forward is a Txn minus its commit timestamp: reuse the txn
            // codec with `time_ns: 0` (the leader stamps the real time).
            CoordMsg::Forward { session, op, origin, tag } => {
                buf.push(2);
                put_txn(
                    buf,
                    &Txn {
                        session: *session,
                        op: op.clone(),
                        origin: *origin,
                        tag: *tag,
                        time_ns: 0,
                    },
                );
            }
            // Tags 3/4 were SyncRequest/SyncReply, retired when `sync`
            // became a no-op proposal riding the Forward path; kept
            // unassigned so old frames fail loudly as BadTag.
            CoordMsg::ForwardReject { tag } => {
                buf.push(5);
                buf.extend_from_slice(&tag.to_le_bytes());
            }
            CoordMsg::LeaseAuth { commit_to, age_ms } => {
                buf.push(6);
                buf.extend_from_slice(&commit_to.to_le_bytes());
                buf.extend_from_slice(&age_ms.to_le_bytes());
            }
        }
    }

    fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, WireError> {
        Ok(match c.u8()? {
            1 => CoordMsg::Zab(get_zab_msg(c)?),
            2 => {
                let t = get_txn(c)?;
                CoordMsg::Forward { session: t.session, op: t.op, origin: t.origin, tag: t.tag }
            }
            5 => CoordMsg::ForwardReject { tag: c.u64()? },
            6 => CoordMsg::LeaseAuth { commit_to: c.u64()?, age_ms: c.u32()? },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

// ---------------------------------------------------------------------
// Client session traffic
// ---------------------------------------------------------------------

impl Wire for ZkRequest {
    fn wire_encode(&self, buf: &mut Vec<u8>) {
        match self {
            ZkRequest::Connect => buf.push(1),
            ZkRequest::CloseSession => buf.push(2),
            ZkRequest::Create { path, data, mode } => {
                buf.push(3);
                put_str(buf, path);
                put_blob(buf, data);
                buf.push(mode_byte(*mode));
            }
            ZkRequest::Delete { path, version } => {
                buf.push(4);
                put_str(buf, path);
                put_opt_u32(buf, *version);
            }
            ZkRequest::SetData { path, data, version } => {
                buf.push(5);
                put_str(buf, path);
                put_blob(buf, data);
                put_opt_u32(buf, *version);
            }
            ZkRequest::GetData { path, watch } => {
                buf.push(6);
                put_str(buf, path);
                buf.push(*watch as u8);
            }
            ZkRequest::Exists { path, watch } => {
                buf.push(7);
                put_str(buf, path);
                buf.push(*watch as u8);
            }
            ZkRequest::GetChildren { path, watch } => {
                buf.push(8);
                put_str(buf, path);
                buf.push(*watch as u8);
            }
            ZkRequest::GetChildrenData { path } => {
                buf.push(9);
                put_str(buf, path);
            }
            ZkRequest::Multi { ops } => {
                buf.push(10);
                buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for op in ops {
                    put_multi_op(buf, op);
                }
            }
            ZkRequest::Sync { coalesce } => {
                buf.push(11);
                buf.push(*coalesce as u8);
            }
            ZkRequest::Ping => buf.push(12),
            ZkRequest::CreatePath { path, data, mode } => {
                buf.push(13);
                put_str(buf, path);
                put_blob(buf, data);
                buf.push(mode_byte(*mode));
            }
            ZkRequest::TxnPrepare { txn_id, ops, participants } => {
                buf.push(14);
                buf.extend_from_slice(&txn_id.to_le_bytes());
                buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for op in ops {
                    put_multi_op(buf, op);
                }
                buf.extend_from_slice(&(participants.len() as u32).to_le_bytes());
                for p in participants {
                    buf.extend_from_slice(&p.to_le_bytes());
                }
            }
            ZkRequest::TxnCommit { txn_id } => {
                buf.push(15);
                buf.extend_from_slice(&txn_id.to_le_bytes());
            }
            ZkRequest::TxnAbort { txn_id } => {
                buf.push(16);
                buf.extend_from_slice(&txn_id.to_le_bytes());
            }
            ZkRequest::WarmChildren { path } => {
                buf.push(17);
                put_str(buf, path);
            }
        }
    }

    fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, WireError> {
        Ok(match c.u8()? {
            1 => ZkRequest::Connect,
            2 => ZkRequest::CloseSession,
            3 => ZkRequest::Create {
                path: c.str()?,
                data: Bytes::copy_from_slice(c.blob()?),
                mode: mode_from(c.u8()?)?,
            },
            4 => ZkRequest::Delete { path: c.str()?, version: get_opt_u32(c)? },
            5 => ZkRequest::SetData {
                path: c.str()?,
                data: Bytes::copy_from_slice(c.blob()?),
                version: get_opt_u32(c)?,
            },
            6 => ZkRequest::GetData { path: c.str()?, watch: c.bool()? },
            7 => ZkRequest::Exists { path: c.str()?, watch: c.bool()? },
            8 => ZkRequest::GetChildren { path: c.str()?, watch: c.bool()? },
            9 => ZkRequest::GetChildrenData { path: c.str()? },
            10 => {
                let n = c.count(5)?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(get_multi_op(c)?);
                }
                ZkRequest::Multi { ops }
            }
            11 => ZkRequest::Sync { coalesce: c.bool()? },
            12 => ZkRequest::Ping,
            13 => ZkRequest::CreatePath {
                path: c.str()?,
                data: Bytes::copy_from_slice(c.blob()?),
                mode: mode_from(c.u8()?)?,
            },
            14 => {
                let txn_id = c.u64()?;
                let n = c.count(5)?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(get_multi_op(c)?);
                }
                let m = c.count(4)?;
                let mut participants = Vec::with_capacity(m);
                for _ in 0..m {
                    participants.push(c.u32()?);
                }
                ZkRequest::TxnPrepare { txn_id, ops, participants }
            }
            15 => ZkRequest::TxnCommit { txn_id: c.u64()? },
            16 => ZkRequest::TxnAbort { txn_id: c.u64()? },
            17 => ZkRequest::WarmChildren { path: c.str()? },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for ZkResponse {
    fn wire_encode(&self, buf: &mut Vec<u8>) {
        match self {
            ZkResponse::Connected { session } => {
                buf.push(1);
                buf.extend_from_slice(&session.to_le_bytes());
            }
            ZkResponse::Closed => buf.push(2),
            ZkResponse::Created { path } => {
                buf.push(3);
                put_str(buf, path);
            }
            ZkResponse::Deleted => buf.push(4),
            ZkResponse::Stat(s) => {
                buf.push(5);
                put_stat(buf, s);
            }
            ZkResponse::Data { data, stat } => {
                buf.push(6);
                put_blob(buf, data);
                put_stat(buf, stat);
            }
            ZkResponse::ExistsResult(s) => {
                buf.push(7);
                match s {
                    None => buf.push(0),
                    Some(s) => {
                        buf.push(1);
                        put_stat(buf, s);
                    }
                }
            }
            ZkResponse::Children { names, stat } => {
                buf.push(8);
                buf.extend_from_slice(&(names.len() as u32).to_le_bytes());
                for n in names {
                    put_str(buf, n);
                }
                put_stat(buf, stat);
            }
            ZkResponse::ChildrenData { entries } => {
                buf.push(9);
                buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (name, data, stat) in entries {
                    put_str(buf, name);
                    put_blob(buf, data);
                    put_stat(buf, stat);
                }
            }
            ZkResponse::MultiResults(rs) => {
                buf.push(10);
                buf.extend_from_slice(&(rs.len() as u32).to_le_bytes());
                for r in rs {
                    put_multi_result(buf, r);
                }
            }
            ZkResponse::Synced { zxid, coalesced } => {
                buf.push(11);
                buf.extend_from_slice(&zxid.to_le_bytes());
                buf.push(*coalesced as u8);
            }
            ZkResponse::Pong { zxid, lease } => {
                buf.push(12);
                buf.extend_from_slice(&zxid.to_le_bytes());
                match lease {
                    Some(g) => {
                        buf.push(1);
                        put_lease_grant(buf, g);
                    }
                    None => buf.push(0),
                }
            }
            ZkResponse::Error(e) => {
                buf.push(13);
                buf.push(err_byte(*e));
            }
            ZkResponse::Prepared => buf.push(14),
            ZkResponse::Committed => buf.push(15),
            ZkResponse::Aborted => buf.push(16),
            ZkResponse::TxnUnknown => buf.push(17),
            ZkResponse::WarmedChildren { entries, stat } => {
                buf.push(18);
                buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (name, data, stat) in entries {
                    put_str(buf, name);
                    put_blob(buf, data);
                    put_stat(buf, stat);
                }
                put_stat(buf, stat);
            }
        }
    }

    fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, WireError> {
        Ok(match c.u8()? {
            1 => ZkResponse::Connected { session: c.u64()? },
            2 => ZkResponse::Closed,
            3 => ZkResponse::Created { path: c.str()? },
            4 => ZkResponse::Deleted,
            5 => ZkResponse::Stat(get_stat(c)?),
            6 => ZkResponse::Data { data: Bytes::copy_from_slice(c.blob()?), stat: get_stat(c)? },
            7 => ZkResponse::ExistsResult(if c.bool()? { Some(get_stat(c)?) } else { None }),
            8 => {
                let n = c.count(4)?;
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(c.str()?);
                }
                ZkResponse::Children { names, stat: get_stat(c)? }
            }
            9 => {
                let n = c.count(8)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = c.str()?;
                    let data = Bytes::copy_from_slice(c.blob()?);
                    entries.push((name, data, get_stat(c)?));
                }
                ZkResponse::ChildrenData { entries }
            }
            10 => {
                let n = c.count(1)?;
                let mut rs = Vec::with_capacity(n);
                for _ in 0..n {
                    rs.push(get_multi_result(c)?);
                }
                ZkResponse::MultiResults(rs)
            }
            11 => ZkResponse::Synced { zxid: c.u64()?, coalesced: c.bool()? },
            12 => ZkResponse::Pong {
                zxid: c.u64()?,
                lease: if c.bool()? { Some(get_lease_grant(c)?) } else { None },
            },
            13 => ZkResponse::Error(err_from(c.u8()?)?),
            14 => ZkResponse::Prepared,
            15 => ZkResponse::Committed,
            16 => ZkResponse::Aborted,
            17 => ZkResponse::TxnUnknown,
            18 => {
                let n = c.count(8)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = c.str()?;
                    let data = Bytes::copy_from_slice(c.blob()?);
                    entries.push((name, data, get_stat(c)?));
                }
                ZkResponse::WarmedChildren { entries, stat: get_stat(c)? }
            }
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for WatchNotification {
    fn wire_encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, &self.path);
        buf.push(match self.event {
            WatchEventKind::Created => 1,
            WatchEventKind::Deleted => 2,
            WatchEventKind::DataChanged => 3,
            WatchEventKind::ChildrenChanged => 4,
        });
    }

    fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, WireError> {
        let path = c.str()?;
        let event = match c.u8()? {
            1 => WatchEventKind::Created,
            2 => WatchEventKind::Deleted,
            3 => WatchEventKind::DataChanged,
            4 => WatchEventKind::ChildrenChanged,
            t => return Err(WireError::BadTag(t)),
        };
        Ok(WatchNotification { path, event })
    }
}

impl Wire for ServerStatus {
    fn wire_encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.is_leader as u8);
        buf.extend_from_slice(&self.last_applied.to_le_bytes());
        buf.extend_from_slice(&self.committed.to_le_bytes());
        buf.extend_from_slice(&(self.node_count as u64).to_le_bytes());
        buf.extend_from_slice(&self.digest.to_le_bytes());
        buf.push(self.alive as u8);
    }

    fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, WireError> {
        Ok(ServerStatus {
            is_leader: c.bool()?,
            last_applied: c.u64()?,
            committed: c.u64()?,
            node_count: c.u64()? as usize,
            digest: c.u64()?,
            alive: c.bool()?,
        })
    }
}

// ---------------------------------------------------------------------
// Socket session framing
// ---------------------------------------------------------------------

/// What a client (or admin probe) sends the server inside one transport
/// frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientFrame {
    /// A session request; the response echoes `req_id`.
    Request {
        /// Client-local request id (multiplexing key).
        req_id: u64,
        /// The session the request belongs to (0 before `Connect`).
        session: u64,
        /// The request.
        req: ZkRequest,
    },
    /// Admin probe: report this server's [`ServerStatus`].
    Status {
        /// Echoed in the reply.
        req_id: u64,
    },
}

impl Wire for ClientFrame {
    fn wire_encode(&self, buf: &mut Vec<u8>) {
        match self {
            ClientFrame::Request { req_id, session, req } => {
                buf.push(1);
                buf.extend_from_slice(&req_id.to_le_bytes());
                buf.extend_from_slice(&session.to_le_bytes());
                req.wire_encode(buf);
            }
            ClientFrame::Status { req_id } => {
                buf.push(2);
                buf.extend_from_slice(&req_id.to_le_bytes());
            }
        }
    }

    fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, WireError> {
        Ok(match c.u8()? {
            1 => ClientFrame::Request {
                req_id: c.u64()?,
                session: c.u64()?,
                req: ZkRequest::wire_decode(c)?,
            },
            2 => ClientFrame::Status { req_id: c.u64()? },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// What the server sends back to a client connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerFrame {
    /// Response to a [`ClientFrame::Request`].
    Resp {
        /// Echo of the request id.
        req_id: u64,
        /// The response.
        resp: ZkResponse,
    },
    /// Asynchronous watch notification.
    Watch(WatchNotification),
    /// Response to a [`ClientFrame::Status`] probe.
    Status {
        /// Echo of the request id.
        req_id: u64,
        /// The server's state snapshot.
        status: ServerStatus,
    },
    /// Unsolicited staleness lease, piggybacked on the connection's idle
    /// heartbeat slots (see [`crate::api::LeaseGrant`]). Keeps a quiet
    /// cached client's lease fresh without it spending a Ping round trip.
    Lease(LeaseGrant),
}

impl Wire for ServerFrame {
    fn wire_encode(&self, buf: &mut Vec<u8>) {
        match self {
            ServerFrame::Resp { req_id, resp } => {
                buf.push(1);
                buf.extend_from_slice(&req_id.to_le_bytes());
                resp.wire_encode(buf);
            }
            ServerFrame::Watch(n) => {
                buf.push(2);
                n.wire_encode(buf);
            }
            ServerFrame::Status { req_id, status } => {
                buf.push(3);
                buf.extend_from_slice(&req_id.to_le_bytes());
                status.wire_encode(buf);
            }
            ServerFrame::Lease(g) => {
                buf.push(4);
                put_lease_grant(buf, g);
            }
        }
    }

    fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, WireError> {
        Ok(match c.u8()? {
            1 => ServerFrame::Resp { req_id: c.u64()?, resp: ZkResponse::wire_decode(c)? },
            2 => ServerFrame::Watch(WatchNotification::wire_decode(c)?),
            3 => ServerFrame::Status { req_id: c.u64()?, status: ServerStatus::wire_decode(c)? },
            4 => ServerFrame::Lease(get_lease_grant(c)?),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::TxnOp;

    fn rt<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        assert_eq!(T::from_wire(&bytes).unwrap(), v, "round trip");
    }

    fn rt_zab(m: ZabMsg<Txn>) {
        let mut buf = Vec::new();
        put_zab_msg(&m, &mut buf);
        let mut c = WireCursor::new(&buf);
        assert_eq!(get_zab_msg(&mut c).unwrap(), m, "round trip");
        c.expect_end().unwrap();
    }

    #[test]
    fn zab_messages_round_trip() {
        let txn = Txn {
            session: 7,
            op: TxnOp::Create {
                path: "/a/b".into(),
                data: Bytes::from_static(b"x"),
                mode: CreateMode::Persistent,
            },
            origin: PeerId(2),
            tag: 9,
            time_ns: 123,
        };
        rt_zab(ZabMsg::Propose { zxid: Zxid::new(3, 4), txns: vec![txn.clone()] });
        rt_zab(ZabMsg::<Txn>::SyncLog {
            epoch: 5,
            snapshot: Some((Zxid::new(1, 2), Bytes::from_static(b"snap"))),
            entries: vec![(Zxid::new(1, 3), txn)],
            commit_to: Zxid::new(1, 3),
            reset: true,
            snap_chunks: 0,
        });
        rt_zab(ZabMsg::<Txn>::SnapChunk {
            epoch: 5,
            zxid: Zxid::new(1, 2),
            seq: 1,
            total: 3,
            crc: 0xDEAD_BEEF,
            data: Bytes::from_static(b"chunk"),
        });
        rt_zab(ZabMsg::<Txn>::Pong);
    }

    #[test]
    fn forward_round_trips_via_txn_codec() {
        rt(CoordMsg::Forward {
            session: 42,
            op: TxnOp::Delete { path: "/x".into(), version: Some(3) },
            origin: PeerId(1),
            tag: 77,
        });
    }

    #[test]
    fn responses_round_trip() {
        rt(ZkResponse::ChildrenData {
            entries: vec![("f0".into(), Bytes::from_static(b"d"), Stat::default())],
        });
        rt(ZkResponse::Error(ZkError::Net));
        rt(ZkResponse::ExistsResult(None));
    }

    #[test]
    fn warm_children_round_trips() {
        rt(ZkRequest::WarmChildren { path: "/dir".into() });
        rt(ZkResponse::WarmedChildren { entries: vec![], stat: Stat::default() });
        rt(ZkResponse::WarmedChildren {
            entries: vec![
                ("a".into(), Bytes::from_static(b"da"), Stat::default()),
                ("b".into(), Bytes::new(), Stat::default()),
            ],
            stat: Stat::default(),
        });
    }

    #[test]
    fn frames_round_trip() {
        rt(ClientFrame::Request { req_id: 1, session: 2, req: ZkRequest::Sync { coalesce: true } });
        rt(ServerFrame::Status {
            req_id: 3,
            status: ServerStatus {
                is_leader: true,
                last_applied: 9,
                committed: 9,
                node_count: 4,
                digest: 0xABCD,
                alive: true,
            },
        });
    }

    #[test]
    fn lease_frames_round_trip() {
        rt(ZkRequest::Sync { coalesce: false });
        rt(ZkResponse::Synced { zxid: 42, coalesced: true });
        rt(ZkResponse::Synced { zxid: 0, coalesced: false });
        rt(ZkResponse::Pong { zxid: 7, lease: None });
        rt(ZkResponse::Pong { zxid: 7, lease: Some(LeaseGrant { ttl_ms: 1_500, epoch: 3 }) });
        rt(ServerFrame::Lease(LeaseGrant { ttl_ms: u32::MAX, epoch: 0 }));
        rt(CoordMsg::LeaseAuth { commit_to: 0xDEAD_BEEF, age_ms: 86 });
    }

    #[test]
    fn txn_2pc_frames_round_trip() {
        rt(ZkRequest::CreatePath {
            path: "/a/b/c".into(),
            data: Bytes::from_static(b"v"),
            mode: CreateMode::Persistent,
        });
        rt(ZkRequest::TxnPrepare {
            txn_id: 0xfeed_f00d,
            ops: vec![
                MultiOp::Check { path: "/src".into(), version: Some(1) },
                MultiOp::Delete { path: "/src".into(), version: Some(1) },
            ],
            participants: vec![1, 2],
        });
        rt(ZkRequest::TxnPrepare { txn_id: 1, ops: vec![], participants: vec![] });
        rt(ZkRequest::TxnCommit { txn_id: 7 });
        rt(ZkRequest::TxnAbort { txn_id: u64::MAX });
        rt(ZkResponse::Prepared);
        rt(ZkResponse::Committed);
        rt(ZkResponse::Aborted);
        rt(ZkResponse::TxnUnknown);
        rt(ZkResponse::Error(ZkError::TxnBusy));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(matches!(ZkRequest::from_wire(&[99]), Err(WireError::BadTag(99))));
        assert!(matches!(CoordMsg::from_wire(&[0]), Err(WireError::BadTag(0))));
    }
}
