//! One-shot watches, server-local (exactly ZooKeeper's model: a watch lives
//! on the server where the read that set it was served, and fires at most
//! once).

use std::collections::{HashMap, HashSet};

use dufs_zkstore::ChangeEvent;

/// What a watch waits for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WatchKind {
    /// Data changes or deletion of the node (`zoo_get` watch).
    Data,
    /// Creation, deletion or data change (`zoo_exists` watch).
    Exists,
    /// Child-list changes or deletion (`zoo_get_children` watch).
    Children,
}

/// Notification delivered to a client when a watch fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchNotification {
    /// The watched path.
    pub path: String,
    /// What happened.
    pub event: WatchEventKind,
}

/// The namespace change that triggered the watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// Node created.
    Created,
    /// Node deleted.
    Deleted,
    /// Node data changed.
    DataChanged,
    /// Node's children changed.
    ChildrenChanged,
}

/// Server-local watch table: `(path, kind)` → watching clients. `C` is the
/// runtime's client-handle type.
#[derive(Debug)]
pub struct WatchManager<C> {
    watches: HashMap<(String, WatchKind), HashSet<C>>,
}

impl<C: Copy + Eq + std::hash::Hash> Default for WatchManager<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Copy + Eq + std::hash::Hash> WatchManager<C> {
    /// An empty table.
    pub fn new() -> Self {
        WatchManager { watches: HashMap::new() }
    }

    /// Register a one-shot watch.
    pub fn register(&mut self, path: &str, kind: WatchKind, client: C) {
        self.watches.entry((path.to_string(), kind)).or_default().insert(client);
    }

    /// Number of registered (path, kind) entries (for tests).
    pub fn len(&self) -> usize {
        self.watches.len()
    }

    /// Whether no watches are registered.
    pub fn is_empty(&self) -> bool {
        self.watches.is_empty()
    }

    /// Match a store change against the table, removing (one-shot) and
    /// returning the notifications to send.
    pub fn fire(&mut self, change: &ChangeEvent) -> Vec<(C, WatchNotification)> {
        let (path, event, kinds): (&str, WatchEventKind, &[WatchKind]) = match change {
            ChangeEvent::Created(p) => (p, WatchEventKind::Created, &[WatchKind::Exists]),
            ChangeEvent::Deleted(p) => (
                p,
                WatchEventKind::Deleted,
                &[WatchKind::Data, WatchKind::Exists, WatchKind::Children],
            ),
            ChangeEvent::DataChanged(p) => {
                (p, WatchEventKind::DataChanged, &[WatchKind::Data, WatchKind::Exists])
            }
            ChangeEvent::ChildrenChanged(p) => {
                (p, WatchEventKind::ChildrenChanged, &[WatchKind::Children])
            }
        };
        let mut out = Vec::new();
        for &kind in kinds {
            if let Some(clients) = self.watches.remove(&(path.to_string(), kind)) {
                for c in clients {
                    out.push((c, WatchNotification { path: path.to_string(), event }));
                }
            }
        }
        out
    }

    /// Drop all watches belonging to `client` (session close).
    pub fn drop_client(&mut self, client: C) {
        self.watches.retain(|_, clients| {
            clients.remove(&client);
            !clients.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_watch_fires_once_on_change() {
        let mut w: WatchManager<u32> = WatchManager::new();
        w.register("/a", WatchKind::Data, 1);
        let fired = w.fire(&ChangeEvent::DataChanged("/a".into()));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 1);
        assert_eq!(fired[0].1.event, WatchEventKind::DataChanged);
        // One-shot: second change fires nothing.
        assert!(w.fire(&ChangeEvent::DataChanged("/a".into())).is_empty());
    }

    #[test]
    fn exists_watch_fires_on_create() {
        let mut w: WatchManager<u32> = WatchManager::new();
        w.register("/new", WatchKind::Exists, 5);
        let fired = w.fire(&ChangeEvent::Created("/new".into()));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1.event, WatchEventKind::Created);
    }

    #[test]
    fn delete_fires_all_kinds() {
        let mut w: WatchManager<u32> = WatchManager::new();
        w.register("/a", WatchKind::Data, 1);
        w.register("/a", WatchKind::Exists, 2);
        w.register("/a", WatchKind::Children, 3);
        let mut fired: Vec<u32> =
            w.fire(&ChangeEvent::Deleted("/a".into())).iter().map(|f| f.0).collect();
        fired.sort_unstable();
        assert_eq!(fired, vec![1, 2, 3]);
        assert!(w.is_empty());
    }

    #[test]
    fn child_watch_ignores_data_changes() {
        let mut w: WatchManager<u32> = WatchManager::new();
        w.register("/d", WatchKind::Children, 1);
        assert!(w.fire(&ChangeEvent::DataChanged("/d".into())).is_empty());
        assert_eq!(w.fire(&ChangeEvent::ChildrenChanged("/d".into())).len(), 1);
    }

    #[test]
    fn watches_are_per_path() {
        let mut w: WatchManager<u32> = WatchManager::new();
        w.register("/a", WatchKind::Data, 1);
        assert!(w.fire(&ChangeEvent::DataChanged("/b".into())).is_empty());
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn drop_client_removes_everywhere() {
        let mut w: WatchManager<u32> = WatchManager::new();
        w.register("/a", WatchKind::Data, 1);
        w.register("/b", WatchKind::Data, 1);
        w.register("/b", WatchKind::Data, 2);
        w.drop_client(1);
        assert_eq!(w.len(), 1);
        assert_eq!(w.fire(&ChangeEvent::DataChanged("/b".into())).len(), 1);
    }

    #[test]
    fn multiple_clients_same_watch() {
        let mut w: WatchManager<u32> = WatchManager::new();
        w.register("/a", WatchKind::Exists, 1);
        w.register("/a", WatchKind::Exists, 2);
        assert_eq!(w.fire(&ChangeEvent::Created("/a".into())).len(), 2);
    }
}
