//! `coord_server` — one coordination-ensemble member as a real OS process.
//!
//! This is the out-of-process deployment of [`dufs_coord::tcp::TcpServer`]: the
//! kill-9 recovery harness spawns three of these, SIGKILLs them mid-workload,
//! respawns them over the same WAL directories, and checks the namespace
//! digest against an uncrashed control. It is deliberately thin — every
//! interesting behaviour lives in the library so the in-process
//! `TcpCluster` tests cover the same code.
//!
//! ```text
//! coord_server --me 0 --peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//!              [--wal-dir /var/lib/dufs/server-0] [--snap-chunk-bytes N]
//! ```
//!
//! Runs until killed. Prints one `READY <addr>` line on stdout once the
//! listener is bound (the harness waits for it before dialing).

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::exit;

use dufs_coord::tcp::{TcpServer, TcpServerConfig};
use dufs_net::{Listener, NetConfig};
use dufs_zab::{PeerId, ZabConfig};

fn usage() -> ! {
    eprintln!(
        "usage: coord_server --me N --peers ADDR,ADDR,... \
         [--wal-dir DIR] [--snap-chunk-bytes N]"
    );
    exit(2);
}

fn main() {
    let mut me: Option<u32> = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut wal_dir: Option<PathBuf> = None;
    let mut zab = ZabConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("coord_server: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--me" => {
                me = Some(val("--me").parse().unwrap_or_else(|_| {
                    eprintln!("coord_server: --me must be an integer");
                    usage()
                }))
            }
            "--peers" => {
                peers = val("--peers")
                    .split(',')
                    .map(|a| {
                        a.parse().unwrap_or_else(|_| {
                            eprintln!("coord_server: bad peer address {a:?}");
                            usage()
                        })
                    })
                    .collect()
            }
            "--wal-dir" => wal_dir = Some(PathBuf::from(val("--wal-dir"))),
            "--snap-chunk-bytes" => {
                zab = zab.with_snap_chunk_bytes(val("--snap-chunk-bytes").parse().unwrap_or_else(
                    |_| {
                        eprintln!("coord_server: --snap-chunk-bytes must be an integer");
                        usage()
                    },
                ))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("coord_server: unknown argument {other:?}");
                usage()
            }
        }
    }

    let Some(me) = me else { usage() };
    if peers.is_empty() || (me as usize) >= peers.len() {
        eprintln!("coord_server: --me must index into --peers");
        usage();
    }

    let listener = Listener::bind(peers[me as usize]).unwrap_or_else(|e| {
        eprintln!("coord_server: bind {}: {e}", peers[me as usize]);
        exit(1);
    });
    let addr = listener.local_addr();

    let voters = peers.len();
    let server = TcpServer::spawn(
        listener,
        TcpServerConfig {
            me: PeerId(me),
            peer_addrs: peers,
            voters,
            zab,
            net: NetConfig::default(),
            wal_dir,
        },
    );

    // The harness (and humans) wait for this line before dialing.
    println!("READY {addr}");

    server.run(); // until killed
}
