//! Out-of-process crash recovery for the data path: real `store_server`
//! processes, real `SIGKILL` mid-write, no in-process shortcuts.
//!
//! The invariant under `--fsync group` is the WAL's: **an acked write is
//! durable**. The harness streams striped writes from a client thread,
//! recording each FID's CRC the moment its write is acknowledged;
//! SIGKILLs one server mid-stream (whatever write is in flight is allowed
//! to vanish — it was never acked); respawns a server over the *same*
//! target directory on a fresh port (the durable identity is the
//! directory, not the address); and asserts every acked FID reads back
//! with its CRC intact.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dufs_core::Fid;
use dufs_store::{crc32, StoreClient, StoreError};

// ------------------------------------------------------------ process tools

/// `n` distinct free loopback ports (held simultaneously while probing so
/// they cannot collide with each other).
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let held: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("probe port")).collect();
    held.iter().map(|l| l.local_addr().unwrap()).collect()
}

/// Spawn one `store_server` and wait for its `READY` line.
fn spawn_server(dir: &Path, addr: SocketAddr, fsync: &str) -> Child {
    let mut child = Command::new(env!("CARGO_BIN_EXE_store_server"))
        .arg("--dir")
        .arg(dir)
        .arg("--listen")
        .arg(addr.to_string())
        .arg("--fsync")
        .arg(fsync)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn store_server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("READY line");
    assert!(line.starts_with("READY "), "unexpected banner: {line:?}");
    child
}

/// SIGKILL — no shutdown hooks, no flushes, the real failure mode.
fn kill9(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// Retry `f` until it succeeds or the deadline passes; transport errors
/// are expected while a server is down or restarting.
fn until_ok<T>(mut f: impl FnMut() -> Result<T, StoreError>) -> T {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match f() {
            Ok(v) => return v,
            Err(e) => {
                assert!(Instant::now() < deadline, "deadline expired, last error: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn target_dirs(tag: &str, n: usize) -> Vec<PathBuf> {
    (0..n)
        .map(|t| {
            let d = std::env::temp_dir()
                .join(format!("dufs-store-kill9-{tag}-{}-{t}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            d
        })
        .collect()
}

/// Deterministic per-FID contents so verification needs no shared state.
fn contents(fid: Fid, len: usize) -> Vec<u8> {
    let mut state = fid.0 as u64 ^ (fid.0 >> 64) as u64 ^ 0x9E37_79B9_7F4A_7C15;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

const TARGETS: usize = 2;
const STRIPE: usize = 64;

#[test]
fn sigkill_mid_write_loses_no_acked_data() {
    let dirs = target_dirs("midwrite", TARGETS);
    let addrs = free_addrs(TARGETS);
    let mut children: Vec<Child> =
        dirs.iter().zip(&addrs).map(|(d, &a)| spawn_server(d, a, "group")).collect();

    // Stream writes, recording (fid -> crc) only once acked. The writer
    // runs in its own thread so the kill genuinely lands mid-stream; the
    // shared counter lets the main thread time the kill after a real
    // stream exists instead of guessing with a sleep.
    let progress = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let w_progress = std::sync::Arc::clone(&progress);
    let w_addrs = addrs.clone();
    let writer = std::thread::spawn(move || {
        let mut acked: HashMap<u64, u32> = HashMap::new();
        let mut client = match StoreClient::tcp(&w_addrs, STRIPE, 1) {
            Ok(c) => c,
            Err(_) => return acked,
        };
        for i in 0.. {
            let fid = Fid::new(1, i);
            let data = contents(fid, 200 + (i as usize % 5) * 90);
            match client.write(fid, 0, &data) {
                Ok(()) => {
                    acked.insert(i, crc32(&data));
                    w_progress.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
                // First transport error = the kill landed. Everything
                // acked so far is the durable obligation.
                Err(_) => break,
            }
        }
        acked
    });

    // Wait for a real stream of acks, then SIGKILL target 0 mid-write.
    let deadline = Instant::now() + Duration::from_secs(30);
    while progress.load(std::sync::atomic::Ordering::SeqCst) < 25 {
        assert!(Instant::now() < deadline, "writer made no progress");
        std::thread::sleep(Duration::from_millis(10));
    }
    kill9(&mut children[0]);
    let acked = writer.join().expect("writer thread");
    assert!(
        acked.len() > 10,
        "harness needs a real stream before the kill (got {} acked writes)",
        acked.len()
    );

    // Restart over the SAME directory on a fresh port.
    let new_addr = free_addrs(1)[0];
    children[0] = spawn_server(&dirs[0], new_addr, "group");
    let mut addrs2 = addrs.clone();
    addrs2[0] = new_addr;

    let mut client = until_ok(|| StoreClient::tcp(&addrs2, STRIPE, 2));
    for (&i, &crc) in &acked {
        let fid = Fid::new(1, i);
        let expect = contents(fid, 200 + (i as usize % 5) * 90);
        let extent = until_ok(|| client.written_extent(fid)) as usize;
        assert_eq!(extent, expect.len(), "acked fid {i} lost bytes");
        let mut back = vec![0u8; extent];
        until_ok(|| client.read_into(fid, 0, &mut back));
        assert_eq!(crc32(&back), crc, "acked fid {i} corrupt after recovery");
        assert_eq!(back, expect);
    }

    for c in &mut children {
        kill9(c);
    }
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn sigkill_whole_fleet_then_restart_recovers() {
    let dirs = target_dirs("fleet", TARGETS);
    let addrs = free_addrs(TARGETS);
    let mut children: Vec<Child> =
        dirs.iter().zip(&addrs).map(|(d, &a)| spawn_server(d, a, "group")).collect();

    let mut client = until_ok(|| StoreClient::tcp(&addrs, STRIPE, 1));
    let mut acked: HashMap<u64, u32> = HashMap::new();
    for i in 0..60u64 {
        let fid = Fid::new(2, i);
        let data = contents(fid, 150 + (i as usize % 7) * 40);
        client.write(fid, 0, &data).unwrap();
        acked.insert(i, crc32(&data));
    }
    // Kill everything at once — no orderly shutdown anywhere.
    for c in &mut children {
        kill9(c);
    }

    let new_addrs = free_addrs(TARGETS);
    let _children: Vec<Child> =
        dirs.iter().zip(&new_addrs).map(|(d, &a)| spawn_server(d, a, "group")).collect();
    let mut client = until_ok(|| StoreClient::tcp(&new_addrs, STRIPE, 2));
    for (&i, &crc) in &acked {
        let fid = Fid::new(2, i);
        let extent = until_ok(|| client.written_extent(fid)) as usize;
        let mut back = vec![0u8; extent];
        until_ok(|| client.read_into(fid, 0, &mut back));
        assert_eq!(crc32(&back), crc, "fid {i} corrupt after whole-fleet restart");
    }

    let mut children = _children;
    for c in &mut children {
        kill9(c);
    }
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}
