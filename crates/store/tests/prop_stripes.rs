//! Property tests over stripe-layout edge cases: misaligned offsets,
//! sparse writes, zero-length files, truncate-then-read — every engine
//! checked for round-trip equality against a flat `Vec<u8>` model of the
//! file, and the durable engine additionally checked to survive reopen.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dufs_backendfs::{StorageEngine, StripedStore};
use dufs_store::{FileEngine, FsyncPolicy};
use proptest::prelude::*;

/// One step of a data-path history.
#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, data: Vec<u8> },
    Truncate { new_size: u64 },
    Read { offset: u64, len: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The shim's `prop_oneof!` is unweighted; repeating the write arm
    // biases histories toward writes.
    prop_oneof![
        (0u64..200, proptest::collection::vec(any::<u8>(), 0..90))
            .prop_map(|(offset, data)| Op::Write { offset, data }),
        (0u64..200, proptest::collection::vec(any::<u8>(), 0..90))
            .prop_map(|(offset, data)| Op::Write { offset, data }),
        (0u64..220).prop_map(|new_size| Op::Truncate { new_size }),
        (0u64..220, 0usize..120).prop_map(|(offset, len)| Op::Read { offset, len }),
    ]
}

/// Flat reference model: the file is one `Vec<u8>`; `size` tracks the
/// logical length (truncate-up holes included).
#[derive(Default)]
struct Model {
    bytes: Vec<u8>,
    size: u64,
}

impl Model {
    fn write(&mut self, offset: u64, data: &[u8]) {
        let end = offset as usize + data.len();
        if self.bytes.len() < end {
            self.bytes.resize(end, 0);
        }
        self.bytes[offset as usize..end].copy_from_slice(data);
        self.size = self.size.max(end as u64);
    }

    fn truncate(&mut self, new_size: u64) {
        self.bytes.truncate(new_size as usize);
        self.size = new_size;
    }

    /// Read as the store sees it: zero-fill everything, the store only
    /// materializes written bytes.
    fn read(&self, offset: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let off = offset as usize;
        if off < self.bytes.len() {
            let n = (self.bytes.len() - off).min(len);
            out[..n].copy_from_slice(&self.bytes[off..off + n]);
        }
        out
    }
}

/// Drive the same history through a striped store and the model.
fn check_history<E: StorageEngine>(store: &mut StripedStore<E>, ops: &[Op], obj: u128) {
    let mut model = Model::default();
    for op in ops {
        match op {
            Op::Write { offset, data } => {
                store.write(obj, *offset, data).unwrap();
                model.write(*offset, data);
            }
            Op::Truncate { new_size } => {
                store.truncate_data(obj, *new_size).unwrap();
                model.truncate(*new_size);
            }
            Op::Read { offset, len } => {
                let mut got = vec![0u8; *len];
                store.read_into(obj, *offset, &mut got).unwrap();
                assert_eq!(got, model.read(*offset, *len), "read mismatch at {offset}+{len}");
            }
        }
    }
    // Final full-file check. The store's written extent may exceed the
    // model size only via truncate-up (which stores nothing), never the
    // other way.
    let extent = store.written_extent(obj);
    assert!(extent <= model.bytes.len() as u64, "extent {extent} > model {}", model.bytes.len());
    let mut full = vec![0u8; model.bytes.len()];
    store.read_into(obj, 0, &mut full).unwrap();
    assert_eq!(full, model.bytes);
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn file_dirs(n: usize) -> Vec<PathBuf> {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    (0..n)
        .map(|t| {
            let d = std::env::temp_dir()
                .join(format!("dufs-store-prop-{}-{case}-{t}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            d
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mem_engine_matches_flat_model(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        n_targets in 1usize..5,
        stripe in 1usize..33,
    ) {
        let mut store = StripedStore::in_memory(n_targets, stripe);
        check_history(&mut store, &ops, 0xF1D0);
    }

    #[test]
    fn file_engine_matches_flat_model_and_survives_reopen(
        ops in proptest::collection::vec(op_strategy(), 0..24),
        n_targets in 1usize..4,
        stripe in 1usize..33,
    ) {
        let dirs = file_dirs(n_targets);
        let engines: Vec<FileEngine> = dirs
            .iter()
            .map(|d| FileEngine::open(d, FsyncPolicy::None).unwrap())
            .collect();
        let mut store = StripedStore::new(engines, stripe);
        check_history(&mut store, &ops, 0xF1D0);
        store.sync().unwrap();

        // Reopen every target from disk: the recovered index must read
        // back the identical byte image.
        let extent = store.written_extent(0xF1D0) as usize;
        let mut before = vec![0u8; extent];
        store.read_into(0xF1D0, 0, &mut before).unwrap();
        drop(store);

        let engines: Vec<FileEngine> = dirs
            .iter()
            .map(|d| FileEngine::open(d, FsyncPolicy::None).unwrap())
            .collect();
        let mut reopened = StripedStore::new(engines, stripe);
        prop_assert_eq!(reopened.written_extent(0xF1D0) as usize, extent);
        let mut after = vec![0u8; extent];
        reopened.read_into(0xF1D0, 0, &mut after).unwrap();
        prop_assert_eq!(before, after);
        for d in &dirs {
            std::fs::remove_dir_all(d).unwrap();
        }
    }

    #[test]
    fn engines_agree_with_each_other(
        ops in proptest::collection::vec(op_strategy(), 0..24),
        stripe in 1usize..17,
    ) {
        let dirs = file_dirs(2);
        let engines: Vec<FileEngine> = dirs
            .iter()
            .map(|d| FileEngine::open(d, FsyncPolicy::None).unwrap())
            .collect();
        let mut durable = StripedStore::new(engines, stripe);
        let mut mem = StripedStore::in_memory(2, stripe);
        let obj = 0xABu128;
        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    durable.write(obj, *offset, data).unwrap();
                    mem.write(obj, *offset, data).unwrap();
                }
                Op::Truncate { new_size } => {
                    durable.truncate_data(obj, *new_size).unwrap();
                    mem.truncate_data(obj, *new_size).unwrap();
                }
                Op::Read { offset, len } => {
                    let mut a = vec![0u8; *len];
                    let mut b = vec![0u8; *len];
                    durable.read_into(obj, *offset, &mut a).unwrap();
                    mem.read_into(obj, *offset, &mut b).unwrap();
                    prop_assert_eq!(a, b);
                }
            }
        }
        prop_assert_eq!(durable.written_extent(obj), mem.written_extent(obj));
        prop_assert_eq!(durable.bytes_per_target(), mem.bytes_per_target());
        for d in &dirs {
            std::fs::remove_dir_all(d).unwrap();
        }
    }
}

#[test]
fn zero_length_file_round_trips() {
    let mut s = StripedStore::in_memory(3, 8);
    s.write(1, 0, b"").unwrap();
    assert_eq!(s.written_extent(1), 0);
    let mut empty: Vec<u8> = Vec::new();
    s.read_into(1, 0, &mut empty).unwrap();

    let dir = std::env::temp_dir().join(format!("dufs-store-zero-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut e = FileEngine::open(&dir, FsyncPolicy::None).unwrap();
    e.write(1, 0, 0, b"").unwrap();
    assert_eq!(e.last_stripe(1), Some((0, 0)));
    let mut buf = [0u8; 4];
    assert_eq!(e.read(1, 0, 0, &mut buf).unwrap(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
