//! End-to-end data path: a `StoreClient` over real TCP `StoreServer`s
//! must behave byte-for-byte like one over in-process `LocalTarget`s, and
//! per-FID content CRCs must agree across the two delivery paths.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;

use dufs_backendfs::MemEngine;
use dufs_core::Fid;
use dufs_store::{crc32, FileEngine, FsyncPolicy, StoreClient, StoreServer};
use parking_lot::Mutex;

fn tmp_dirs(tag: &str, n: usize) -> Vec<PathBuf> {
    (0..n)
        .map(|t| {
            let d = std::env::temp_dir()
                .join(format!("dufs-store-e2e-{tag}-{}-{t}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            d
        })
        .collect()
}

fn spawn_servers(dirs: &[PathBuf], policy: FsyncPolicy) -> (Vec<StoreServer>, Vec<SocketAddr>) {
    let servers: Vec<StoreServer> = dirs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let engine = FileEngine::open(d, policy).unwrap();
            StoreServer::spawn("127.0.0.1:0".parse().unwrap(), engine, policy, i as u64 + 1)
                .unwrap()
        })
        .collect();
    let addrs = servers.iter().map(|s| s.addr()).collect();
    (servers, addrs)
}

/// Deterministic content for a FID (mirrors the mdtest data workload).
fn contents(fid: Fid, len: usize) -> Vec<u8> {
    let mut state = fid.0 as u64 ^ (fid.0 >> 64) as u64 ^ 0x9E37_79B9_7F4A_7C15;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

#[test]
fn tcp_matches_local_including_digests() {
    let dirs = tmp_dirs("parity", 3);
    let (servers, addrs) = spawn_servers(&dirs, FsyncPolicy::Group);
    let mut tcp = StoreClient::tcp(&addrs, 32, 7).unwrap();

    let engines: Vec<Arc<Mutex<MemEngine>>> =
        (0..3).map(|_| Arc::new(Mutex::new(MemEngine::new()))).collect();
    let mut local = StoreClient::local(&engines, 32);

    let fids: Vec<Fid> = (0..20).map(|i| Fid::new(1, i)).collect();
    for (i, &fid) in fids.iter().enumerate() {
        let data = contents(fid, 50 + i * 13);
        tcp.write(fid, 0, &data).unwrap();
        local.write(fid, 0, &data).unwrap();
        // A misaligned overwrite crossing a stripe boundary.
        tcp.write(fid, 17, b"overlap-crossing").unwrap();
        local.write(fid, 17, b"overlap-crossing").unwrap();
    }
    tcp.sync().unwrap();

    let mut tcp_digest = 0u64;
    let mut local_digest = 0u64;
    for &fid in &fids {
        let n_tcp = tcp.written_extent(fid).unwrap();
        let n_local = local.written_extent(fid).unwrap();
        assert_eq!(n_tcp, n_local, "extent parity for {fid:?}");
        let mut a = vec![0u8; n_tcp as usize];
        let mut b = vec![0u8; n_local as usize];
        tcp.read_into(fid, 0, &mut a).unwrap();
        local.read_into(fid, 0, &mut b).unwrap();
        assert_eq!(a, b, "contents parity for {fid:?}");
        tcp_digest = tcp_digest.wrapping_add((fid.0 as u64) ^ crc32(&a) as u64);
        local_digest = local_digest.wrapping_add((fid.0 as u64) ^ crc32(&b) as u64);
    }
    assert_eq!(tcp_digest, local_digest);

    // Delete parity.
    assert!(tcp.delete(fids[0]).unwrap());
    assert!(local.delete(fids[0]).unwrap());
    assert_eq!(tcp.written_extent(fids[0]).unwrap(), 0);
    assert_eq!(local.written_extent(fids[0]).unwrap(), 0);

    for s in servers {
        s.stop();
    }
    for d in &dirs {
        std::fs::remove_dir_all(d).unwrap();
    }
}

#[test]
fn durable_contents_survive_server_restart() {
    let dirs = tmp_dirs("restart", 2);
    let fid = Fid::new(9, 1);
    let data = contents(fid, 1000);
    let crc_before;
    {
        let (servers, addrs) = spawn_servers(&dirs, FsyncPolicy::Group);
        let mut c = StoreClient::tcp(&addrs, 64, 1).unwrap();
        c.write(fid, 0, &data).unwrap();
        crc_before = crc32(&data);
        for s in servers {
            s.stop();
        }
    }
    // New servers (fresh ports) over the same target directories.
    let (servers, addrs) = spawn_servers(&dirs, FsyncPolicy::Group);
    let mut c = StoreClient::tcp(&addrs, 64, 2).unwrap();
    assert_eq!(c.written_extent(fid).unwrap(), 1000);
    let mut back = vec![0u8; 1000];
    c.read_into(fid, 0, &mut back).unwrap();
    assert_eq!(crc32(&back), crc_before);
    assert_eq!(back, data);
    for s in servers {
        s.stop();
    }
    for d in &dirs {
        std::fs::remove_dir_all(d).unwrap();
    }
}

#[test]
fn concurrent_clients_share_targets() {
    let dirs = tmp_dirs("concurrent", 2);
    let (servers, addrs) = spawn_servers(&dirs, FsyncPolicy::None);
    let handles: Vec<_> = (0..4u64)
        .map(|w| {
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let mut c = StoreClient::tcp(&addrs, 16, 10 + w).unwrap();
                for i in 0..25 {
                    let fid = Fid::new(w + 1, i);
                    let data = contents(fid, 100);
                    c.write(fid, 0, &data).unwrap();
                    let mut back = vec![0u8; 100];
                    c.read_into(fid, 0, &mut back).unwrap();
                    assert_eq!(back, data);
                }
                c.sync().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for s in servers {
        s.stop();
    }
    for d in &dirs {
        std::fs::remove_dir_all(d).unwrap();
    }
}

#[test]
fn free_port_helper_is_honest() {
    // Sanity for the harness idiom used by kill9_store: grabbing a port
    // via a bound listener and releasing it leaves it dialable.
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = l.local_addr().unwrap();
    drop(l);
    let engine = MemEngine::new();
    let s = StoreServer::spawn(addr, engine, FsyncPolicy::None, 1).unwrap();
    assert_eq!(s.addr(), addr);
    s.stop();
}
