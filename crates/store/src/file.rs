//! File-backed storage engine: one directory per storage target.
//!
//! ## On-disk layout
//!
//! Each target directory holds two files:
//!
//! * `extents.dat` — an append-only extent log. 8-byte magic `DUFSSTO1`,
//!   then records framed exactly like the WAL and the wire protocol:
//!   `len: u32 LE | crc32: u32 LE | payload`. The payload's first byte is
//!   a tag — `1` Put, `2` Delete, `3` Truncate — followed by the record
//!   fields; a Put carries the stripe-chunk bytes inline, and reads later
//!   `pread` them straight off the log (data is written once and never
//!   copied into the heap index).
//! * `index.bin` — a checkpoint of the in-memory allocation index (which
//!   byte spans of which records make up each chunk), framed with the same
//!   `len|crc` discipline and replaced atomically (tmp file + rename +
//!   directory fsync, the WAL snapshot idiom). It records how many extent
//!   bytes it covers; open() replays only the tail past the checkpoint.
//!
//! ## Recovery
//!
//! On open the engine loads the checkpoint if present and intact, then
//! scans `extents.dat` from the covered offset. The first torn or corrupt
//! frame ends the scan and the file is truncated back to the last good
//! record — a torn final write (the only kind of damage a crash can leave
//! on an append-only log) is discarded, never misread. A stale or damaged
//! checkpoint degrades to a full log scan, never to wrong data.
//!
//! ## Durability knob
//!
//! [`FsyncPolicy`] decides when appended records are forced down:
//! `PerWrite` fsyncs inside every [`StorageEngine::write`]; `Group` and
//! `None` leave syncing to explicit [`StorageEngine::sync`] calls — the
//! store server turns that into WAL-style group commit (one fsync per
//! drained batch, acks after).
//!
//! The log is purely log-structured: overwrites and deletes append; space
//! is reclaimed only by recreating the target (acceptable for benchmark
//! lifetimes, noted in DESIGN.md).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use dufs_backendfs::StorageEngine;
use dufs_net::crc32;

const MAGIC: &[u8; 8] = b"DUFSSTO1";
const INDEX_MAGIC: &[u8; 8] = b"DUFSSIX1";
const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_TRUNCATE: u8 = 3;
/// Frame-size sanity bound, matching the transport's `MAX_FRAME`.
const MAX_RECORD: u32 = 64 << 20;
/// Bytes of new extent data between automatic index checkpoints.
const CHECKPOINT_EVERY: u64 = 8 << 20;
/// Byte offset of a Put record's chunk data inside its payload:
/// tag(1) + obj(16) + stripe(8) + within(4).
const PUT_HDR: u64 = 29;

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` inside every write — strongest, slowest.
    PerWrite,
    /// Sync only on [`StorageEngine::sync`]; the server calls it once per
    /// drained request batch before acking (WAL-style group commit), so an
    /// acked write is still always durable.
    Group,
    /// Sync only on explicit client `Sync` requests. Acked writes since
    /// the last barrier can be lost to a crash — the documented trade-off.
    None,
}

impl FromStr for FsyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "per-write" => Ok(FsyncPolicy::PerWrite),
            "group" => Ok(FsyncPolicy::Group),
            "none" => Ok(FsyncPolicy::None),
            other => Err(format!("unknown fsync policy '{other}' (per-write|group|none)")),
        }
    }
}

/// One byte span of a chunk, resolved to its location in `extents.dat`.
#[derive(Debug, Clone, Copy)]
struct Span {
    within: u32,
    len: u32,
    /// Absolute file offset of the span's first data byte.
    off: u64,
}

/// Index entry for one stripe chunk: logical length plus the ordered spans
/// (later spans overlay earlier ones, append order).
#[derive(Debug, Clone, Default)]
struct Chunk {
    len: u32,
    spans: Vec<Span>,
}

/// Durable [`StorageEngine`] over one target directory.
#[derive(Debug)]
pub struct FileEngine {
    dir: PathBuf,
    log: File,
    /// Current end of `extents.dat` (next append offset).
    log_len: u64,
    /// Extent bytes appended since the last index checkpoint.
    since_checkpoint: u64,
    policy: FsyncPolicy,
    chunks: BTreeMap<(u128, u64), Chunk>,
    bytes: u64,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u128(buf: &mut Vec<u8>, v: u128) {
    put_u64(buf, (v >> 64) as u64);
    put_u64(buf, v as u64);
}

/// Little scanning cursor over a byte slice; `None` means torn/short.
struct Rd<'a>(&'a [u8]);
impl Rd<'_> {
    fn u8(&mut self) -> Option<u8> {
        let (&b, rest) = self.0.split_first()?;
        self.0 = rest;
        Some(b)
    }
    fn u32(&mut self) -> Option<u32> {
        let (head, rest) = self.0.split_at_checked(4)?;
        self.0 = rest;
        Some(u32::from_le_bytes(head.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.0.split_at_checked(8)?;
        self.0 = rest;
        Some(u64::from_le_bytes(head.try_into().unwrap()))
    }
    fn u128(&mut self) -> Option<u128> {
        let hi = self.u64()? as u128;
        let lo = self.u64()? as u128;
        Some((hi << 64) | lo)
    }
}

impl FileEngine {
    /// Open (or create) the target directory, recover the index, and trim
    /// any torn tail off the extent log.
    pub fn open(dir: impl AsRef<Path>, policy: FsyncPolicy) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let log_path = dir.join("extents.dat");
        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        let mut file_len = log.metadata()?.len();
        if file_len < MAGIC.len() as u64 {
            // Fresh target (or a crash tore the very first write): start over.
            log.set_len(0)?;
            log.write_all(MAGIC)?;
            log.sync_data()?;
            sync_dir(&dir)?;
            file_len = MAGIC.len() as u64;
        } else {
            let mut magic = [0u8; 8];
            log.read_exact_at(&mut magic, 0)?;
            if &magic != MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: bad extent-log magic", log_path.display()),
                ));
            }
        }

        let mut eng = FileEngine {
            dir,
            log,
            log_len: file_len,
            since_checkpoint: 0,
            policy,
            chunks: BTreeMap::new(),
            bytes: 0,
        };

        let mut covered = MAGIC.len() as u64;
        if let Some((chunks, cov)) = eng.load_checkpoint()? {
            if cov <= file_len {
                eng.chunks = chunks;
                covered = cov;
            }
        }
        eng.replay_from(covered, file_len)?;
        eng.bytes = eng.chunks.values().map(|c| c.len as u64).sum();
        Ok(eng)
    }

    /// The target directory this engine stores into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Replay extent records in `[from, to)`, truncating at the first torn
    /// or corrupt frame.
    fn replay_from(&mut self, from: u64, to: u64) -> io::Result<()> {
        let mut pos = from;
        // A cloned handle for the scan so `self` stays free for index
        // mutation; both handles share the file offset's underlying file.
        let mut scan = self.log.try_clone()?;
        scan.seek(SeekFrom::Start(pos))?;
        let mut rd = io::BufReader::new(scan);
        loop {
            if pos + 8 > to {
                break;
            }
            let mut head = [0u8; 8];
            if rd.read_exact(&mut head).is_err() {
                break;
            }
            let len = u32::from_le_bytes(head[0..4].try_into().unwrap());
            let crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
            if len == 0 || len > MAX_RECORD || pos + 8 + len as u64 > to {
                break;
            }
            let mut payload = vec![0u8; len as usize];
            if rd.read_exact(&mut payload).is_err() {
                break;
            }
            if crc32(&payload) != crc {
                break;
            }
            if !self.apply_record(&payload, pos) {
                break;
            }
            pos += 8 + len as u64;
        }
        if pos < to {
            // Torn tail: cut the log back to the last intact record.
            self.log.set_len(pos)?;
            self.log.sync_data()?;
        }
        self.log_len = pos;
        Ok(())
    }

    /// Apply one decoded record to the in-memory index. `record_off` is the
    /// file offset of the record's length header. Returns false on a
    /// malformed payload (treated like a torn frame by the caller).
    fn apply_record(&mut self, payload: &[u8], record_off: u64) -> bool {
        let mut rd = Rd(payload);
        match rd.u8() {
            Some(TAG_PUT) => {
                let (Some(obj), Some(stripe), Some(within)) = (rd.u128(), rd.u64(), rd.u32())
                else {
                    return false;
                };
                let data_len = rd.0.len() as u32;
                self.index_put(obj, stripe, within, data_len, record_off + 8 + PUT_HDR);
                true
            }
            Some(TAG_DELETE) => {
                let Some(obj) = rd.u128() else { return false };
                self.index_delete(obj);
                true
            }
            Some(TAG_TRUNCATE) => {
                let (Some(obj), Some(keep), Some(has_trim)) = (rd.u128(), rd.u64(), rd.u8()) else {
                    return false;
                };
                let trim = if has_trim != 0 {
                    let (Some(s), Some(l)) = (rd.u64(), rd.u32()) else { return false };
                    Some((s, l))
                } else {
                    None
                };
                self.index_truncate(obj, keep, trim);
                true
            }
            _ => false,
        }
    }

    fn index_put(&mut self, obj: u128, stripe: u64, within: u32, len: u32, data_off: u64) {
        let chunk = self.chunks.entry((obj, stripe)).or_default();
        let end = within + len;
        if end > chunk.len {
            self.bytes += (end - chunk.len) as u64;
            chunk.len = end;
        }
        if len > 0 {
            chunk.spans.push(Span { within, len, off: data_off });
        }
    }

    fn index_delete(&mut self, obj: u128) {
        let doomed: Vec<(u128, u64)> =
            self.chunks.range((obj, 0)..=(obj, u64::MAX)).map(|(&k, _)| k).collect();
        for k in doomed {
            if let Some(c) = self.chunks.remove(&k) {
                self.bytes -= c.len as u64;
            }
        }
    }

    fn index_truncate(&mut self, obj: u128, keep: u64, trim: Option<(u64, u32)>) {
        let doomed: Vec<(u128, u64)> =
            self.chunks.range((obj, keep)..=(obj, u64::MAX)).map(|(&k, _)| k).collect();
        for k in doomed {
            if let Some(c) = self.chunks.remove(&k) {
                self.bytes -= c.len as u64;
            }
        }
        if let Some((stripe, new_len)) = trim {
            if let Some(c) = self.chunks.get_mut(&(obj, stripe)) {
                if c.len > new_len {
                    self.bytes -= (c.len - new_len) as u64;
                    c.len = new_len;
                    // Cut spans so a later re-extend cannot resurrect
                    // truncated bytes.
                    c.spans.retain_mut(|s| {
                        if s.within >= new_len {
                            return false;
                        }
                        s.len = s.len.min(new_len - s.within);
                        true
                    });
                }
            }
        }
    }

    /// Append one framed record and return the file offset of its header.
    fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let off = self.log_len;
        let mut rec = Vec::with_capacity(8 + payload.len());
        put_u32(&mut rec, payload.len() as u32);
        put_u32(&mut rec, crc32(payload));
        rec.extend_from_slice(payload);
        self.log.seek(SeekFrom::Start(off))?;
        self.log.write_all(&rec)?;
        self.log_len += rec.len() as u64;
        self.since_checkpoint += rec.len() as u64;
        if self.policy == FsyncPolicy::PerWrite {
            self.log.sync_data()?;
        }
        Ok(off)
    }

    // ------------------------------------------------------------------
    // Index checkpointing
    // ------------------------------------------------------------------

    /// Atomically checkpoint the in-memory index so the next open replays
    /// only the log tail. tmp + rename + dir fsync, the WAL snapshot idiom.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let mut body = Vec::new();
        put_u64(&mut body, self.log_len);
        put_u64(&mut body, self.chunks.len() as u64);
        for (&(obj, stripe), chunk) in &self.chunks {
            put_u128(&mut body, obj);
            put_u64(&mut body, stripe);
            put_u32(&mut body, chunk.len);
            put_u32(&mut body, chunk.spans.len() as u32);
            for s in &chunk.spans {
                put_u32(&mut body, s.within);
                put_u32(&mut body, s.len);
                put_u64(&mut body, s.off);
            }
        }
        let mut out = Vec::with_capacity(16 + body.len());
        out.extend_from_slice(INDEX_MAGIC);
        put_u32(&mut out, body.len() as u32);
        put_u32(&mut out, crc32(&body));
        out.extend_from_slice(&body);

        let tmp = self.dir.join("index.tmp");
        let final_path = self.dir.join("index.bin");
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
        std::fs::rename(&tmp, &final_path)?;
        sync_dir(&self.dir)?;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// Load `index.bin` if present and intact. Returns the chunk index and
    /// the extent-log offset it covers; `None` (never an error) on any
    /// damage — recovery then falls back to a full log scan.
    #[allow(clippy::type_complexity)]
    fn load_checkpoint(&self) -> io::Result<Option<(BTreeMap<(u128, u64), Chunk>, u64)>> {
        let raw = match std::fs::read(self.dir.join("index.bin")) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let Some((magic, rest)) = raw.split_at_checked(8) else { return Ok(None) };
        if magic != INDEX_MAGIC {
            return Ok(None);
        }
        let Some((head, body)) = rest.split_at_checked(8) else { return Ok(None) };
        let len = u32::from_le_bytes(head[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
        if body.len() != len || crc32(body) != crc {
            return Ok(None);
        }
        let mut rd = Rd(body);
        let (Some(covered), Some(n_chunks)) = (rd.u64(), rd.u64()) else { return Ok(None) };
        let mut chunks = BTreeMap::new();
        for _ in 0..n_chunks {
            let (Some(obj), Some(stripe), Some(len), Some(n_spans)) =
                (rd.u128(), rd.u64(), rd.u32(), rd.u32())
            else {
                return Ok(None);
            };
            let mut spans = Vec::with_capacity(n_spans as usize);
            for _ in 0..n_spans {
                let (Some(within), Some(slen), Some(off)) = (rd.u32(), rd.u32(), rd.u64()) else {
                    return Ok(None);
                };
                spans.push(Span { within, len: slen, off });
            }
            chunks.insert((obj, stripe), Chunk { len, spans });
        }
        Ok(Some((chunks, covered)))
    }
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

impl StorageEngine for FileEngine {
    fn write(&mut self, obj: u128, stripe: u64, within: u32, data: &[u8]) -> io::Result<()> {
        let mut payload = Vec::with_capacity(PUT_HDR as usize + data.len());
        payload.push(TAG_PUT);
        put_u128(&mut payload, obj);
        put_u64(&mut payload, stripe);
        put_u32(&mut payload, within);
        payload.extend_from_slice(data);
        let off = self.append(&payload)?;
        self.index_put(obj, stripe, within, data.len() as u32, off + 8 + PUT_HDR);
        Ok(())
    }

    fn read(&mut self, obj: u128, stripe: u64, within: u32, out: &mut [u8]) -> io::Result<usize> {
        let Some(chunk) = self.chunks.get(&(obj, stripe)) else { return Ok(0) };
        if within >= chunk.len {
            return Ok(0);
        }
        let have = ((chunk.len - within) as usize).min(out.len());
        let dst = &mut out[..have];
        dst.fill(0);
        let (lo, hi) = (within as u64, within as u64 + have as u64);
        for s in &chunk.spans {
            let (s_lo, s_hi) = (s.within as u64, s.within as u64 + s.len as u64);
            let ov_lo = lo.max(s_lo);
            let ov_hi = hi.min(s_hi);
            if ov_lo >= ov_hi {
                continue;
            }
            let file_off = s.off + (ov_lo - s_lo);
            let dst_range = &mut dst[(ov_lo - lo) as usize..(ov_hi - lo) as usize];
            self.log.read_exact_at(dst_range, file_off)?;
        }
        Ok(have)
    }

    fn truncate(
        &mut self,
        obj: u128,
        keep_stripes: u64,
        trim: Option<(u64, u32)>,
    ) -> io::Result<()> {
        let mut payload = Vec::with_capacity(30);
        payload.push(TAG_TRUNCATE);
        put_u128(&mut payload, obj);
        put_u64(&mut payload, keep_stripes);
        match trim {
            Some((s, l)) => {
                payload.push(1);
                put_u64(&mut payload, s);
                put_u32(&mut payload, l);
            }
            None => payload.push(0),
        }
        self.append(&payload)?;
        self.index_truncate(obj, keep_stripes, trim);
        Ok(())
    }

    fn delete(&mut self, obj: u128) -> io::Result<bool> {
        let existed = self.chunks.range((obj, 0)..=(obj, u64::MAX)).next().is_some();
        if existed {
            let mut payload = Vec::with_capacity(17);
            payload.push(TAG_DELETE);
            put_u128(&mut payload, obj);
            self.append(&payload)?;
            self.index_delete(obj);
        }
        Ok(existed)
    }

    fn last_stripe(&self, obj: u128) -> Option<(u64, u32)> {
        self.chunks.range((obj, 0)..=(obj, u64::MAX)).next_back().map(|(&(_, s), c)| (s, c.len))
    }

    fn bytes_stored(&self) -> u64 {
        self.bytes
    }

    fn sync(&mut self) -> io::Result<()> {
        self.log.sync_data()?;
        if self.since_checkpoint >= CHECKPOINT_EVERY {
            self.checkpoint()?;
        }
        Ok(())
    }

    fn objects(&self) -> Vec<u128> {
        let mut out: Vec<u128> = self.chunks.keys().map(|&(o, _)| o).collect();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufs_backendfs::StripedStore;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dufs-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_survives_reopen() {
        let dir = tmp("reopen");
        {
            let mut e = FileEngine::open(&dir, FsyncPolicy::Group).unwrap();
            e.write(7, 0, 0, b"hello").unwrap();
            e.write(7, 3, 2, b"world").unwrap();
            e.write(9, 1, 0, b"nine").unwrap();
            e.sync().unwrap();
        }
        let mut e = FileEngine::open(&dir, FsyncPolicy::Group).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(e.read(7, 0, 0, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(e.read(7, 3, 0, &mut buf).unwrap(), 7);
        assert_eq!(&buf[..7], b"\0\0world");
        assert_eq!(e.last_stripe(7), Some((3, 7)));
        assert_eq!(e.objects(), vec![7, 9]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overlapping_writes_overlay_in_order() {
        let dir = tmp("overlay");
        let mut e = FileEngine::open(&dir, FsyncPolicy::None).unwrap();
        e.write(1, 0, 0, b"aaaaaaaa").unwrap();
        e.write(1, 0, 2, b"bbb").unwrap();
        e.write(1, 0, 4, b"c").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(e.read(1, 0, 0, &mut buf).unwrap(), 8);
        assert_eq!(&buf, b"aabbcaaa");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_on_open() {
        let dir = tmp("torn");
        {
            let mut e = FileEngine::open(&dir, FsyncPolicy::Group).unwrap();
            e.write(1, 0, 0, b"durable!").unwrap();
            e.write(1, 1, 0, b"torn-victim").unwrap();
            e.sync().unwrap();
        }
        // Tear the final record mid-payload, as a crash mid-append would.
        let log = dir.join("extents.dat");
        let len = std::fs::metadata(&log).unwrap().len();
        OpenOptions::new().write(true).open(&log).unwrap().set_len(len - 5).unwrap();

        let mut e = FileEngine::open(&dir, FsyncPolicy::Group).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(e.read(1, 0, 0, &mut buf).unwrap(), 8);
        assert_eq!(&buf[..8], b"durable!");
        assert_eq!(e.read(1, 1, 0, &mut buf).unwrap(), 0, "torn write must vanish");
        // And the log is writable again right where the tear was cut.
        e.write(1, 1, 0, b"rewritten").unwrap();
        e.sync().unwrap();
        assert_eq!(e.read(1, 1, 0, &mut buf).unwrap(), 9);
        assert_eq!(&buf[..9], b"rewritten");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_mid_log_record_truncates_from_there() {
        let dir = tmp("bitflip");
        {
            let mut e = FileEngine::open(&dir, FsyncPolicy::Group).unwrap();
            e.write(1, 0, 0, b"first").unwrap();
            e.write(1, 1, 0, b"second").unwrap();
            e.sync().unwrap();
        }
        // Flip a byte inside the second record's payload.
        let log = dir.join("extents.dat");
        let mut raw = std::fs::read(&log).unwrap();
        let n = raw.len();
        raw[n - 3] ^= 0xFF;
        std::fs::write(&log, &raw).unwrap();

        let mut e = FileEngine::open(&dir, FsyncPolicy::Group).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(e.read(1, 0, 0, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"first");
        assert_eq!(e.read(1, 1, 0, &mut buf).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_skips_replay_and_tolerates_damage() {
        let dir = tmp("ckpt");
        {
            let mut e = FileEngine::open(&dir, FsyncPolicy::Group).unwrap();
            for i in 0..50u64 {
                e.write(1, i, 0, format!("stripe-{i}").as_bytes()).unwrap();
            }
            e.sync().unwrap();
            e.checkpoint().unwrap();
            e.write(1, 50, 0, b"after-checkpoint").unwrap();
            e.sync().unwrap();
        }
        {
            let mut e = FileEngine::open(&dir, FsyncPolicy::Group).unwrap();
            let mut buf = [0u8; 32];
            let n = e.read(1, 50, 0, &mut buf).unwrap();
            assert_eq!(&buf[..n], b"after-checkpoint");
            assert_eq!(e.last_stripe(1), Some((50, 16)));
        }
        // Corrupt the checkpoint: open() must fall back to a full scan.
        let idx = dir.join("index.bin");
        let mut raw = std::fs::read(&idx).unwrap();
        let n = raw.len();
        raw[n / 2] ^= 0x01;
        std::fs::write(&idx, &raw).unwrap();
        let mut e = FileEngine::open(&dir, FsyncPolicy::Group).unwrap();
        let mut buf = [0u8; 32];
        assert_eq!(e.read(1, 7, 0, &mut buf).unwrap(), 8);
        assert_eq!(&buf[..8], b"stripe-7");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn matches_mem_engine_through_striped_store() {
        let dirs: Vec<PathBuf> = (0..3).map(|t| tmp(&format!("parity-{t}"))).collect();
        let engines: Vec<FileEngine> =
            dirs.iter().map(|d| FileEngine::open(d, FsyncPolicy::None).unwrap()).collect();
        let mut durable = StripedStore::new(engines, 16);
        let mut model = StripedStore::in_memory(3, 16);

        let obj = 0xFEEDu128;
        let ops: &[(u64, &[u8])] = &[(0, b"abcdefgh"), (30, b"xyz"), (14, b"0123456789")];
        for &(off, data) in ops {
            durable.write(obj, off, data).unwrap();
            model.write(obj, off, data).unwrap();
        }
        durable.truncate_data(obj, 20).unwrap();
        model.truncate_data(obj, 20).unwrap();
        durable.write(obj, 25, b"tail").unwrap();
        model.write(obj, 25, b"tail").unwrap();

        let mut a = vec![0u8; 40];
        let mut b = vec![0u8; 40];
        durable.read_into(obj, 0, &mut a).unwrap();
        model.read_into(obj, 0, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(durable.written_extent(obj), model.written_extent(obj));
        for d in &dirs {
            std::fs::remove_dir_all(d).unwrap();
        }
    }

    #[test]
    fn delete_forgets_and_reports() {
        let dir = tmp("delete");
        let mut e = FileEngine::open(&dir, FsyncPolicy::None).unwrap();
        e.write(5, 0, 0, b"data").unwrap();
        assert!(e.delete(5).unwrap());
        assert!(!e.delete(5).unwrap());
        assert_eq!(e.last_stripe(5), None);
        assert_eq!(e.bytes_stored(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
