//! `StoreMsg` wire codecs — the request/reply vocabulary between
//! [`StoreClient`](crate::StoreClient) and a store server, carried as
//! `dufs-net` frame payloads.
//!
//! Every request carries a client-chosen `seq`; replies echo it. Requests
//! on one connection are answered in order (the server applies a drained
//! batch FIFO), so `seq` is a cross-check rather than a matching
//! necessity — a mismatch means a protocol bug and fails loudly.

use dufs_net::{put_blob, put_str, Wire, WireCursor, WireError};

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u128(buf: &mut Vec<u8>, v: u128) {
    put_u64(buf, (v >> 64) as u64);
    put_u64(buf, v as u64);
}
fn get_u128(c: &mut WireCursor<'_>) -> Result<u128, WireError> {
    let hi = c.u64()? as u128;
    let lo = c.u64()? as u128;
    Ok((hi << 64) | lo)
}

/// A request to one storage target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreReq {
    /// Store `data` at byte `within` of stripe `stripe` of object `obj`.
    Write {
        /// Client-chosen sequence number, echoed in the reply.
        seq: u64,
        /// Object (FID) the stripe belongs to.
        obj: u128,
        /// Global stripe index.
        stripe: u64,
        /// Byte offset inside the stripe chunk.
        within: u32,
        /// The bytes to store.
        data: Vec<u8>,
    },
    /// Read `len` bytes at byte `within` of stripe `stripe` of `obj`.
    Read {
        /// Echoed sequence number.
        seq: u64,
        /// Object (FID).
        obj: u128,
        /// Global stripe index.
        stripe: u64,
        /// Byte offset inside the stripe chunk.
        within: u32,
        /// Bytes to return (zero-filled where nothing is stored).
        len: u32,
    },
    /// Report the highest stored stripe of `obj` on this target.
    Stat {
        /// Echoed sequence number.
        seq: u64,
        /// Object (FID).
        obj: u128,
    },
    /// Drop every stripe of `obj` on this target.
    Delete {
        /// Echoed sequence number.
        seq: u64,
        /// Object (FID).
        obj: u128,
    },
    /// Durability barrier: force everything acked so far to stable
    /// storage (the explicit barrier under
    /// [`FsyncPolicy::None`](crate::FsyncPolicy::None)).
    Sync {
        /// Echoed sequence number.
        seq: u64,
    },
}

impl StoreReq {
    /// The request's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            StoreReq::Write { seq, .. }
            | StoreReq::Read { seq, .. }
            | StoreReq::Stat { seq, .. }
            | StoreReq::Delete { seq, .. }
            | StoreReq::Sync { seq } => *seq,
        }
    }

    /// Whether this request mutates the target (needs the group-commit
    /// sync before its ack under
    /// [`FsyncPolicy::Group`](crate::FsyncPolicy::Group)).
    pub fn is_mutation(&self) -> bool {
        matches!(self, StoreReq::Write { .. } | StoreReq::Delete { .. })
    }
}

/// A target's reply. Ordering matches the request order on the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreRep {
    /// Write applied (and durable, under per-write/group fsync).
    Written {
        /// Echo of the request `seq`.
        seq: u64,
    },
    /// Read result: exactly the requested length, zero-filled where the
    /// target stores nothing.
    Data {
        /// Echo of the request `seq`.
        seq: u64,
        /// The bytes.
        data: Vec<u8>,
    },
    /// Stat result.
    Statted {
        /// Echo of the request `seq`.
        seq: u64,
        /// Highest stored stripe and that chunk's length, if any.
        last_stripe: Option<(u64, u32)>,
    },
    /// Delete applied.
    Deleted {
        /// Echo of the request `seq`.
        seq: u64,
        /// Whether the target stored anything for the object.
        existed: bool,
    },
    /// Sync barrier reached: all prior acks are durable.
    Synced {
        /// Echo of the request `seq`.
        seq: u64,
    },
    /// The request failed server-side (I/O error); message is diagnostic.
    Err {
        /// Echo of the request `seq`.
        seq: u64,
        /// Human-readable cause.
        msg: String,
    },
}

impl StoreRep {
    /// The reply's echoed sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            StoreRep::Written { seq }
            | StoreRep::Data { seq, .. }
            | StoreRep::Statted { seq, .. }
            | StoreRep::Deleted { seq, .. }
            | StoreRep::Synced { seq }
            | StoreRep::Err { seq, .. } => *seq,
        }
    }
}

impl Wire for StoreReq {
    fn wire_encode(&self, buf: &mut Vec<u8>) {
        match self {
            StoreReq::Write { seq, obj, stripe, within, data } => {
                buf.push(1);
                put_u64(buf, *seq);
                put_u128(buf, *obj);
                put_u64(buf, *stripe);
                put_u32(buf, *within);
                put_blob(buf, data);
            }
            StoreReq::Read { seq, obj, stripe, within, len } => {
                buf.push(2);
                put_u64(buf, *seq);
                put_u128(buf, *obj);
                put_u64(buf, *stripe);
                put_u32(buf, *within);
                put_u32(buf, *len);
            }
            StoreReq::Stat { seq, obj } => {
                buf.push(3);
                put_u64(buf, *seq);
                put_u128(buf, *obj);
            }
            StoreReq::Delete { seq, obj } => {
                buf.push(4);
                put_u64(buf, *seq);
                put_u128(buf, *obj);
            }
            StoreReq::Sync { seq } => {
                buf.push(5);
                put_u64(buf, *seq);
            }
        }
    }

    fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, WireError> {
        Ok(match c.u8()? {
            1 => StoreReq::Write {
                seq: c.u64()?,
                obj: get_u128(c)?,
                stripe: c.u64()?,
                within: c.u32()?,
                data: c.blob()?.to_vec(),
            },
            2 => StoreReq::Read {
                seq: c.u64()?,
                obj: get_u128(c)?,
                stripe: c.u64()?,
                within: c.u32()?,
                len: c.u32()?,
            },
            3 => StoreReq::Stat { seq: c.u64()?, obj: get_u128(c)? },
            4 => StoreReq::Delete { seq: c.u64()?, obj: get_u128(c)? },
            5 => StoreReq::Sync { seq: c.u64()? },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for StoreRep {
    fn wire_encode(&self, buf: &mut Vec<u8>) {
        match self {
            StoreRep::Written { seq } => {
                buf.push(1);
                put_u64(buf, *seq);
            }
            StoreRep::Data { seq, data } => {
                buf.push(2);
                put_u64(buf, *seq);
                put_blob(buf, data);
            }
            StoreRep::Statted { seq, last_stripe } => {
                buf.push(3);
                put_u64(buf, *seq);
                match last_stripe {
                    Some((stripe, len)) => {
                        buf.push(1);
                        put_u64(buf, *stripe);
                        put_u32(buf, *len);
                    }
                    None => buf.push(0),
                }
            }
            StoreRep::Deleted { seq, existed } => {
                buf.push(4);
                put_u64(buf, *seq);
                buf.push(u8::from(*existed));
            }
            StoreRep::Synced { seq } => {
                buf.push(5);
                put_u64(buf, *seq);
            }
            StoreRep::Err { seq, msg } => {
                buf.push(6);
                put_u64(buf, *seq);
                put_str(buf, msg);
            }
        }
    }

    fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, WireError> {
        Ok(match c.u8()? {
            1 => StoreRep::Written { seq: c.u64()? },
            2 => StoreRep::Data { seq: c.u64()?, data: c.blob()?.to_vec() },
            3 => StoreRep::Statted {
                seq: c.u64()?,
                last_stripe: if c.bool()? { Some((c.u64()?, c.u32()?)) } else { None },
            },
            4 => StoreRep::Deleted { seq: c.u64()?, existed: c.bool()? },
            5 => StoreRep::Synced { seq: c.u64()? },
            6 => StoreRep::Err { seq: c.u64()?, msg: c.str()? },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(m: StoreReq) {
        assert_eq!(StoreReq::from_wire(&m.to_wire()).unwrap(), m);
    }
    fn round_trip_rep(m: StoreRep) {
        assert_eq!(StoreRep::from_wire(&m.to_wire()).unwrap(), m);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(StoreReq::Write {
            seq: 9,
            obj: u128::MAX - 7,
            stripe: 42,
            within: 100,
            data: vec![1, 2, 3],
        });
        round_trip_req(StoreReq::Read { seq: 0, obj: 1, stripe: 0, within: 0, len: 65536 });
        round_trip_req(StoreReq::Stat { seq: 3, obj: 0 });
        round_trip_req(StoreReq::Delete { seq: 4, obj: 77 });
        round_trip_req(StoreReq::Sync { seq: u64::MAX });
    }

    #[test]
    fn replies_round_trip() {
        round_trip_rep(StoreRep::Written { seq: 1 });
        round_trip_rep(StoreRep::Data { seq: 2, data: vec![0; 100] });
        round_trip_rep(StoreRep::Statted { seq: 3, last_stripe: Some((7, 1 << 20)) });
        round_trip_rep(StoreRep::Statted { seq: 3, last_stripe: None });
        round_trip_rep(StoreRep::Deleted { seq: 4, existed: true });
        round_trip_rep(StoreRep::Synced { seq: 5 });
        round_trip_rep(StoreRep::Err { seq: 6, msg: "disk on fire".into() });
    }

    #[test]
    fn truncated_and_trailing_fail_loudly() {
        let raw = StoreReq::Stat { seq: 3, obj: 12 }.to_wire();
        assert!(StoreReq::from_wire(&raw[..raw.len() - 1]).is_err());
        let mut long = raw.clone();
        long.push(0);
        assert!(StoreReq::from_wire(&long).is_err());
        assert!(StoreRep::from_wire(&[99]).is_err());
    }
}
