//! Standalone data server: one storage target, one process.
//!
//! ```text
//! store_server --dir /data/target0 --listen 127.0.0.1:0 [--fsync group] [--id 1]
//! ```
//!
//! Prints `READY <addr>` once serving (the kill -9 harness and scripts
//! parse this line), then runs until killed. Restarting over the same
//! `--dir` recovers the target: the extent log is replayed past the last
//! checkpoint and any torn tail from a crash mid-write is discarded.

use std::net::SocketAddr;
use std::process::exit;

use dufs_store::{FileEngine, FsyncPolicy, StoreServer};

fn usage() -> ! {
    eprintln!(
        "usage: store_server --dir <target-dir> --listen <addr> \
         [--fsync per-write|group|none] [--id <n>]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = None;
    let mut listen = None;
    let mut fsync = FsyncPolicy::Group;
    let mut id = 1u64;

    let mut i = 0;
    while i < args.len() {
        let val = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i).map(String::as_str).unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--dir" => dir = Some(val(&mut i).to_string()),
            "--listen" => listen = Some(val(&mut i).to_string()),
            "--fsync" => match val(&mut i).parse() {
                Ok(p) => fsync = p,
                Err(e) => {
                    eprintln!("store_server: {e}");
                    exit(2);
                }
            },
            "--id" => match val(&mut i).parse() {
                Ok(n) => id = n,
                Err(_) => usage(),
            },
            _ => usage(),
        }
        i += 1;
    }
    let (Some(dir), Some(listen)) = (dir, listen) else { usage() };
    let addr: SocketAddr = match listen.parse() {
        Ok(a) => a,
        Err(_) => {
            eprintln!("store_server: bad --listen address '{listen}'");
            exit(2);
        }
    };

    let engine = match FileEngine::open(&dir, fsync) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("store_server: open {dir}: {e}");
            exit(1);
        }
    };
    let server = match StoreServer::spawn(addr, engine, fsync, id) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("store_server: bind {addr}: {e}");
            exit(1);
        }
    };
    println!("READY {}", server.addr());

    // Serve until killed; the harness SIGKILLs us mid-write on purpose.
    loop {
        std::thread::park();
    }
}
