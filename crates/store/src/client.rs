//! The client half of the data path.
//!
//! [`StoreClient`] turns byte-range I/O on a FID into per-target stripe
//! requests, the way a Lustre client moves data against OSTs after the MDS
//! hands it the object layout:
//!
//! * **Placement**: `MD5(fid) mod N` (the paper's mapping, via
//!   [`Md5Mapping`]) picks the FID's *starting* target; stripe `s` then
//!   lands on `(start + s) mod N` — round-robin exactly like
//!   `backendfs::ObjectStore`, but rotated per FID so object 0-stripes
//!   spread over all targets instead of piling onto target 0.
//! * **Pipelining**: a striped transfer submits every chunk request to
//!   every target *before* collecting any reply, so all N targets work the
//!   transfer concurrently; per-target FIFO ordering makes matching
//!   trivial and is cross-checked by the echoed `seq`.
//!
//! Targets are pluggable via [`StoreTarget`]: [`LocalTarget`] applies
//! requests to a shared in-process engine (simulation, benches),
//! [`TcpTarget`] speaks `StoreMsg` frames to a `store_server` process.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Receiver;
use dufs_backendfs::StorageEngine;
use dufs_core::{BackendMapper, Fid, Md5Mapping};
use dufs_net::{connect, Conn, EndpointKind, Hello, NetConfig, NetError, NetStats, Wire};
use parking_lot::Mutex;

use crate::msg::{StoreRep, StoreReq};
use crate::server::apply_req;

/// How long a [`TcpTarget`] waits for a reply before declaring the server
/// gone. Generous: a group-commit batch under fsync pressure is slow, a
/// dead server is detected by the transport long before this.
const RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// Data-path client error.
#[derive(Debug)]
pub enum StoreError {
    /// Transport failure (server dead, connection torn).
    Net(NetError),
    /// The server answered [`StoreRep::Err`].
    Remote(String),
    /// A reply that violates the protocol (bad decode, seq mismatch).
    Protocol(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Net(e) => write!(f, "store transport: {e}"),
            StoreError::Remote(m) => write!(f, "store server error: {m}"),
            StoreError::Protocol(m) => write!(f, "store protocol violation: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<NetError> for StoreError {
    fn from(e: NetError) -> Self {
        StoreError::Net(e)
    }
}

/// One storage target from the client's point of view: submit requests,
/// collect replies in the same order.
pub trait StoreTarget: Send {
    /// Queue a request; must not block on the reply.
    fn submit(&mut self, req: StoreReq) -> Result<(), StoreError>;
    /// Next reply, FIFO with respect to submitted requests.
    fn recv(&mut self) -> Result<StoreRep, StoreError>;
}

/// An in-process target over a shared engine. The mutex makes one target
/// one unit of parallelism — exactly the contention profile a per-target
/// server process has — so benches over [`LocalTarget`]s measure real
/// fan-out.
pub struct LocalTarget<E> {
    engine: Arc<Mutex<E>>,
    pending: VecDeque<StoreRep>,
}

impl<E: StorageEngine> LocalTarget<E> {
    /// A target applying requests to `engine`.
    pub fn new(engine: Arc<Mutex<E>>) -> Self {
        LocalTarget { engine, pending: VecDeque::new() }
    }
}

impl<E: StorageEngine> StoreTarget for LocalTarget<E> {
    fn submit(&mut self, req: StoreReq) -> Result<(), StoreError> {
        let rep = apply_req(&mut *self.engine.lock(), &req);
        self.pending.push_back(rep);
        Ok(())
    }

    fn recv(&mut self) -> Result<StoreRep, StoreError> {
        self.pending
            .pop_front()
            .ok_or_else(|| StoreError::Protocol("recv with no request outstanding".into()))
    }
}

/// A networked target: one pipelined `dufs-net` connection to a
/// `store_server` process.
pub struct TcpTarget {
    conn: Conn,
    rx: Receiver<Vec<u8>>,
}

impl TcpTarget {
    /// Dial a store server. `id` identifies this client in the handshake.
    pub fn connect(addr: SocketAddr, id: u64) -> Result<Self, StoreError> {
        let (conn, rx) = connect(
            addr,
            Hello { kind: EndpointKind::Client, id },
            &NetConfig::default(),
            &NetStats::default(),
        )?;
        Ok(TcpTarget { conn, rx })
    }
}

impl StoreTarget for TcpTarget {
    fn submit(&mut self, req: StoreReq) -> Result<(), StoreError> {
        Ok(self.conn.send(req.to_wire())?)
    }

    fn recv(&mut self) -> Result<StoreRep, StoreError> {
        let raw = self.rx.recv_timeout(RECV_TIMEOUT).map_err(|_| NetError::Closed)?;
        StoreRep::from_wire(&raw).map_err(|e| StoreError::Protocol(e.to_string()))
    }
}

/// Striping data-path client over `N` targets.
pub struct StoreClient {
    targets: Vec<Box<dyn StoreTarget>>,
    stripe_size: usize,
    mapping: Md5Mapping,
    seq: u64,
}

impl StoreClient {
    /// A client striping `stripe_size`-byte stripes over `targets`.
    pub fn new(targets: Vec<Box<dyn StoreTarget>>, stripe_size: usize) -> Self {
        assert!(!targets.is_empty(), "need at least one target");
        assert!(stripe_size >= 1, "stripe size must be positive");
        let n = targets.len();
        StoreClient { targets, stripe_size, mapping: Md5Mapping::new(n), seq: 0 }
    }

    /// A client over in-process engines (they may be shared with other
    /// clients — per-target mutexes arbitrate).
    pub fn local<E: StorageEngine + 'static>(
        engines: &[Arc<Mutex<E>>],
        stripe_size: usize,
    ) -> Self {
        let targets = engines
            .iter()
            .map(|e| Box::new(LocalTarget::new(Arc::clone(e))) as Box<dyn StoreTarget>)
            .collect();
        Self::new(targets, stripe_size)
    }

    /// A client dialing one `store_server` per address.
    pub fn tcp(addrs: &[SocketAddr], stripe_size: usize, id: u64) -> Result<Self, StoreError> {
        let targets = addrs
            .iter()
            .map(|&a| Ok(Box::new(TcpTarget::connect(a, id)?) as Box<dyn StoreTarget>))
            .collect::<Result<Vec<_>, StoreError>>()?;
        Ok(Self::new(targets, stripe_size))
    }

    /// Number of storage targets.
    pub fn n_targets(&self) -> usize {
        self.targets.len()
    }

    /// The configured stripe size in bytes.
    pub fn stripe_size(&self) -> usize {
        self.stripe_size
    }

    /// Which target stripe `stripe` of `fid` lives on: `MD5(fid) mod N`
    /// picks the start, stripes walk round-robin from there.
    pub fn target_of(&self, fid: Fid, stripe: u64) -> usize {
        let start = self.mapping.backend_of(fid) as u64;
        ((start + stripe) % self.targets.len() as u64) as usize
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Split `[offset, offset+len)` into per-stripe chunks:
    /// `(target, stripe, within, range-in-buffer)`.
    fn chunks(&self, fid: Fid, offset: u64, len: usize) -> Vec<(usize, u64, u32, Range<usize>)> {
        let ss = self.stripe_size as u64;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < len {
            let abs = offset + pos as u64;
            let stripe = abs / ss;
            let within = (abs % ss) as u32;
            let take = (self.stripe_size - within as usize).min(len - pos);
            out.push((self.target_of(fid, stripe), stripe, within, pos..pos + take));
            pos += take;
        }
        out
    }

    /// Collect one reply per expectation, per target in FIFO order, and
    /// hand each to `sink`. `expect[t]` holds the seqs submitted to `t`.
    fn collect(
        &mut self,
        expect: Vec<VecDeque<u64>>,
        mut sink: impl FnMut(u64, StoreRep) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        for (t, mut seqs) in expect.into_iter().enumerate() {
            while let Some(want) = seqs.pop_front() {
                let rep = self.targets[t].recv()?;
                if rep.seq() != want {
                    return Err(StoreError::Protocol(format!(
                        "target {t}: got seq {} want {want}",
                        rep.seq()
                    )));
                }
                if let StoreRep::Err { msg, .. } = rep {
                    return Err(StoreError::Remote(msg));
                }
                sink(want, rep)?;
            }
        }
        Ok(())
    }

    /// Striped write: submit every chunk to its target, then await all
    /// acks. Under per-write/group fsync, returning `Ok` means durable.
    pub fn write(&mut self, fid: Fid, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        let mut expect: Vec<VecDeque<u64>> = vec![VecDeque::new(); self.targets.len()];
        for (t, stripe, within, range) in self.chunks(fid, offset, data.len()) {
            let seq = self.next_seq();
            self.targets[t].submit(StoreReq::Write {
                seq,
                obj: fid.0,
                stripe,
                within,
                data: data[range].to_vec(),
            })?;
            expect[t].push_back(seq);
        }
        self.collect(expect, |_, rep| match rep {
            StoreRep::Written { .. } => Ok(()),
            other => Err(StoreError::Protocol(format!("want Written, got {other:?}"))),
        })
    }

    /// Striped read into `out` (no allocation beyond reply frames): every
    /// chunk request is in flight before the first reply is awaited.
    /// Ranges no target stores come back as zeros; clamping to a file's
    /// logical size is the metadata layer's job.
    pub fn read_into(&mut self, fid: Fid, offset: u64, out: &mut [u8]) -> Result<(), StoreError> {
        let chunks = self.chunks(fid, offset, out.len());
        let mut expect: Vec<VecDeque<u64>> = vec![VecDeque::new(); self.targets.len()];
        let mut ranges: Vec<(u64, Range<usize>)> = Vec::with_capacity(chunks.len());
        for (t, stripe, within, range) in chunks {
            let seq = self.next_seq();
            self.targets[t].submit(StoreReq::Read {
                seq,
                obj: fid.0,
                stripe,
                within,
                len: range.len() as u32,
            })?;
            expect[t].push_back(seq);
            ranges.push((seq, range));
        }
        let mut by_seq: std::collections::HashMap<u64, Range<usize>> = ranges.into_iter().collect();
        let mut scatter: Vec<(Range<usize>, Vec<u8>)> = Vec::new();
        self.collect(expect, |seq, rep| {
            let StoreRep::Data { data, .. } = rep else {
                return Err(StoreError::Protocol("want Data".into()));
            };
            let range = by_seq.remove(&seq).expect("collect checked seq");
            if data.len() != range.len() {
                return Err(StoreError::Protocol(format!(
                    "read reply length {} want {}",
                    data.len(),
                    range.len()
                )));
            }
            scatter.push((range, data));
            Ok(())
        })?;
        for (range, data) in scatter {
            out[range].copy_from_slice(&data);
        }
        Ok(())
    }

    /// The written extent of `fid`: max over targets of the per-target
    /// EOF. 0 when nothing is stored. (Logical file size lives in the
    /// metadata service; this is the data-side ground truth.)
    pub fn written_extent(&mut self, fid: Fid) -> Result<u64, StoreError> {
        let ss = self.stripe_size as u64;
        let mut expect: Vec<VecDeque<u64>> = vec![VecDeque::new(); self.targets.len()];
        for (t, exp) in expect.iter_mut().enumerate() {
            let seq = self.seq + 1;
            self.seq = seq;
            self.targets[t].submit(StoreReq::Stat { seq, obj: fid.0 })?;
            exp.push_back(seq);
        }
        let mut extent = 0u64;
        self.collect(expect, |_, rep| {
            let StoreRep::Statted { last_stripe, .. } = rep else {
                return Err(StoreError::Protocol("want Statted".into()));
            };
            if let Some((stripe, len)) = last_stripe {
                extent = extent.max(stripe * ss + len as u64);
            }
            Ok(())
        })?;
        Ok(extent)
    }

    /// Delete `fid`'s data on every target. Returns whether any target
    /// stored it.
    pub fn delete(&mut self, fid: Fid) -> Result<bool, StoreError> {
        let mut expect: Vec<VecDeque<u64>> = vec![VecDeque::new(); self.targets.len()];
        for (t, exp) in expect.iter_mut().enumerate() {
            let seq = self.seq + 1;
            self.seq = seq;
            self.targets[t].submit(StoreReq::Delete { seq, obj: fid.0 })?;
            exp.push_back(seq);
        }
        let mut existed = false;
        self.collect(expect, |_, rep| {
            let StoreRep::Deleted { existed: e, .. } = rep else {
                return Err(StoreError::Protocol("want Deleted".into()));
            };
            existed |= e;
            Ok(())
        })?;
        Ok(existed)
    }

    /// Durability barrier on every target: when it returns, everything
    /// previously acked is on stable storage regardless of fsync policy.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let mut expect: Vec<VecDeque<u64>> = vec![VecDeque::new(); self.targets.len()];
        for (t, exp) in expect.iter_mut().enumerate() {
            let seq = self.seq + 1;
            self.seq = seq;
            self.targets[t].submit(StoreReq::Sync { seq })?;
            exp.push_back(seq);
        }
        self.collect(expect, |_, rep| match rep {
            StoreRep::Synced { .. } => Ok(()),
            other => Err(StoreError::Protocol(format!("want Synced, got {other:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufs_backendfs::MemEngine;

    fn mem_client(n: usize, stripe: usize) -> StoreClient {
        let engines: Vec<Arc<Mutex<MemEngine>>> =
            (0..n).map(|_| Arc::new(Mutex::new(MemEngine::new()))).collect();
        StoreClient::local(&engines, stripe)
    }

    #[test]
    fn striped_write_read_roundtrip() {
        let mut c = mem_client(4, 8);
        let fid = Fid::new(1, 1);
        let data: Vec<u8> = (0..100u8).collect();
        c.write(fid, 0, &data).unwrap();
        let mut back = vec![0u8; 100];
        c.read_into(fid, 0, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(c.written_extent(fid).unwrap(), 100);

        let mut mid = vec![0u8; 10];
        c.read_into(fid, 45, &mut mid).unwrap();
        assert_eq!(mid, &data[45..55]);
    }

    #[test]
    fn md5_start_rotates_round_robin() {
        let c = mem_client(4, 8);
        let fid = Fid::new(2, 9);
        let start = c.target_of(fid, 0);
        for s in 0..8 {
            assert_eq!(c.target_of(fid, s), (start + s as usize) % 4);
        }
        // Different FIDs land on different starting targets eventually.
        let starts: std::collections::HashSet<usize> =
            (0..32).map(|i| c.target_of(Fid::new(3, i), 0)).collect();
        assert!(starts.len() > 1, "MD5 placement should spread starts");
    }

    #[test]
    fn holes_read_zero_and_extent_tracks_max() {
        let mut c = mem_client(3, 16);
        let fid = Fid::new(1, 2);
        c.write(fid, 40, b"end").unwrap();
        let mut buf = vec![0xAA; 43];
        c.read_into(fid, 0, &mut buf).unwrap();
        assert_eq!(&buf[..40], &[0u8; 40]);
        assert_eq!(&buf[40..], b"end");
        assert_eq!(c.written_extent(fid).unwrap(), 43);
    }

    #[test]
    fn delete_spans_targets() {
        let mut c = mem_client(2, 4);
        let fid = Fid::new(1, 3);
        c.write(fid, 0, &[5u8; 64]).unwrap();
        assert!(c.delete(fid).unwrap());
        assert!(!c.delete(fid).unwrap());
        assert_eq!(c.written_extent(fid).unwrap(), 0);
    }

    #[test]
    fn sync_reaches_all_targets() {
        let mut c = mem_client(3, 8);
        c.write(Fid::new(1, 4), 0, b"x").unwrap();
        c.sync().unwrap();
    }
}
