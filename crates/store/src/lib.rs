#![warn(missing_docs)]

//! # dufs-store — the durable data path
//!
//! DUFS decouples metadata from data: the metadata service hands out FIDs,
//! and `MD5(fid) mod N` picks which back-end stores the file's bytes. In
//! the simulator that back end is `backendfs::ObjectStore`, a purely
//! in-memory model. This crate makes the data half real:
//!
//! * [`FileEngine`] — a crash-safe, file-backed
//!   [`StorageEngine`](dufs_backendfs::StorageEngine): one directory per
//!   storage target, stripe chunks appended to a CRC32-framed extent log
//!   (`extents.dat`) with a small checkpointed index (`index.bin`),
//!   torn-write recovery on open, and a configurable [`FsyncPolicy`]
//!   reusing `dufs-wal`'s group-fsync discipline.
//! * [`StoreServer`] / the `store_server` binary — one process per target,
//!   speaking [`StoreReq`]/[`StoreRep`] codecs over `dufs-net` frames in
//!   the demux delivery mode.
//! * [`StoreClient`] — routes `MD5(fid) mod N` to a starting target,
//!   stripes writes round-robin from there exactly like `ObjectStore`
//!   does, and pipelines per-target requests so a striped transfer keeps
//!   every target busy at once.
//!
//! The shape follows Lustre's MDS/OST split (Braam, *The Lustre Storage
//! Architecture*): clients learn object identity from metadata, then move
//! bytes directly against the storage targets.

pub mod client;
pub mod file;
pub mod msg;
pub mod server;

pub use client::{LocalTarget, StoreClient, StoreError, StoreTarget, TcpTarget};
pub use file::{FileEngine, FsyncPolicy};
pub use msg::{StoreRep, StoreReq};
pub use server::{apply_req, StoreServer};

// Re-exported so digest helpers in mdtest/bench can CRC contents without
// depending on dufs-net directly.
pub use dufs_net::crc32;
