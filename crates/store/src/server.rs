//! The store server: one storage target served over `dufs-net` frames.
//!
//! A [`StoreServer`] owns one [`StorageEngine`] and a demux accept loop
//! (PR 7's `ConnEvent` delivery): a single owner thread services every
//! client connection, draining whatever requests have arrived, applying
//! them in arrival order, and answering on the originating connection.
//!
//! Durability follows the engine's [`FsyncPolicy`]: under `Group` the
//! drained batch is applied, then ONE `engine.sync()` runs, and only then
//! are the batch's replies sent — WAL-style group commit, so an acked
//! mutation is always durable at the cost of one fsync per batch rather
//! than one per write. `PerWrite` engines sync internally; `None` syncs
//! only when a client sends an explicit `Sync` barrier.

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::RecvTimeoutError;
use dufs_backendfs::StorageEngine;
use dufs_net::{ConnEvent, EndpointKind, Hello, Listener, NetConfig, NetStats, Wire};

use crate::file::FsyncPolicy;
use crate::msg::{StoreRep, StoreReq};

/// Apply one request to an engine and build the reply. Shared by the
/// networked server and the in-process
/// [`LocalTarget`](crate::LocalTarget), so every delivery path has
/// identical semantics.
pub fn apply_req<E: StorageEngine>(engine: &mut E, req: &StoreReq) -> StoreRep {
    let seq = req.seq();
    let fail = |e: io::Error| StoreRep::Err { seq, msg: e.to_string() };
    match req {
        StoreReq::Write { obj, stripe, within, data, .. } => {
            match engine.write(*obj, *stripe, *within, data) {
                Ok(()) => StoreRep::Written { seq },
                Err(e) => fail(e),
            }
        }
        StoreReq::Read { obj, stripe, within, len, .. } => {
            let mut data = vec![0u8; *len as usize];
            match engine.read(*obj, *stripe, *within, &mut data) {
                // Short fills stay zero — the reply is always `len` bytes.
                Ok(_) => StoreRep::Data { seq, data },
                Err(e) => fail(e),
            }
        }
        StoreReq::Stat { obj, .. } => {
            StoreRep::Statted { seq, last_stripe: engine.last_stripe(*obj) }
        }
        StoreReq::Delete { obj, .. } => match engine.delete(*obj) {
            Ok(existed) => StoreRep::Deleted { seq, existed },
            Err(e) => fail(e),
        },
        StoreReq::Sync { .. } => match engine.sync() {
            Ok(()) => StoreRep::Synced { seq },
            Err(e) => fail(e),
        },
    }
}

/// A running store server: accept loop + owner thread around one engine.
pub struct StoreServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<dufs_net::AcceptHandle>,
    thread: Option<JoinHandle<()>>,
}

impl StoreServer {
    /// Bind `addr` (port 0 picks a free port) and serve `engine` under
    /// `policy` until [`StoreServer::stop`] or drop. `id` goes into the
    /// server's `Hello` for diagnostics.
    pub fn spawn<E: StorageEngine + 'static>(
        addr: SocketAddr,
        engine: E,
        policy: FsyncPolicy,
        id: u64,
    ) -> io::Result<StoreServer> {
        let listener = Listener::bind(addr)?;
        let addr = listener.local_addr();
        let stats = NetStats::default();
        let (accept, events) = listener.spawn_accept_demux(
            Hello { kind: EndpointKind::Server, id },
            NetConfig::default(),
            stats,
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name(format!("store-server-{id}"))
            .spawn(move || serve(engine, policy, events, stop2))
            .expect("spawn store-server thread");
        Ok(StoreServer { addr, stop, accept: Some(accept), thread: Some(thread) })
    }

    /// The bound address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the owner thread, drop every connection.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(accept) = self.accept.take() {
            accept.stop();
        }
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// The owner loop: drain events, apply the batch in order, group-sync,
/// then ack. Replies to connections that died mid-batch are dropped.
fn serve<E: StorageEngine>(
    mut engine: E,
    policy: FsyncPolicy,
    events: crossbeam::channel::Receiver<ConnEvent>,
    stop: Arc<AtomicBool>,
) {
    let mut conns: HashMap<u64, dufs_net::Conn> = HashMap::new();
    let mut batch: Vec<(u64, StoreReq)> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Block briefly for the first event, then drain whatever else is
        // already queued — that drained set is the group-commit batch.
        let first = match events.recv_timeout(Duration::from_millis(50)) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        batch.clear();
        let ingest = |ev: ConnEvent,
                      conns: &mut HashMap<u64, dufs_net::Conn>,
                      batch: &mut Vec<(u64, StoreReq)>| {
            match ev {
                ConnEvent::Opened { id, conn } => {
                    conns.insert(id, conn);
                }
                ConnEvent::Closed { id } => {
                    conns.remove(&id);
                }
                ConnEvent::Frame { id, payload } => {
                    if let Ok(req) = StoreReq::from_wire(&payload) {
                        batch.push((id, req));
                    }
                    // Undecodable frames are dropped: the framing CRC
                    // already rules out corruption, so this is a protocol
                    // mismatch and the client's recv will time out loudly.
                }
            }
        };
        ingest(first, &mut conns, &mut batch);
        while let Ok(ev) = events.try_recv() {
            ingest(ev, &mut conns, &mut batch);
        }

        let mut replies: Vec<(u64, StoreRep)> = Vec::with_capacity(batch.len());
        let mut mutated = false;
        for (conn_id, req) in &batch {
            mutated |= req.is_mutation();
            replies.push((*conn_id, apply_req(&mut engine, req)));
        }
        // Group commit: one sync covers every mutation in the batch, and
        // no ack leaves before it. An fsync failure poisons all acks.
        if mutated && policy == FsyncPolicy::Group {
            if let Err(e) = engine.sync() {
                for r in &mut replies {
                    r.1 = StoreRep::Err { seq: r.1.seq(), msg: format!("group sync: {e}") };
                }
            }
        }
        for (conn_id, rep) in replies {
            if let Some(conn) = conns.get(&conn_id) {
                if conn.send(rep.to_wire()).is_err() {
                    conns.remove(&conn_id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufs_backendfs::MemEngine;

    #[test]
    fn apply_req_covers_every_variant() {
        let mut e = MemEngine::new();
        let w = StoreReq::Write { seq: 1, obj: 5, stripe: 0, within: 2, data: b"hi".to_vec() };
        assert_eq!(apply_req(&mut e, &w), StoreRep::Written { seq: 1 });

        let r = StoreReq::Read { seq: 2, obj: 5, stripe: 0, within: 0, len: 6 };
        let StoreRep::Data { seq: 2, data } = apply_req(&mut e, &r) else { panic!("want data") };
        assert_eq!(data, b"\0\0hi\0\0", "fixed-length zero-filled reply");

        let s = StoreReq::Stat { seq: 3, obj: 5 };
        assert_eq!(apply_req(&mut e, &s), StoreRep::Statted { seq: 3, last_stripe: Some((0, 4)) });
        assert_eq!(
            apply_req(&mut e, &StoreReq::Stat { seq: 4, obj: 99 }),
            StoreRep::Statted { seq: 4, last_stripe: None }
        );
        assert_eq!(apply_req(&mut e, &StoreReq::Sync { seq: 5 }), StoreRep::Synced { seq: 5 });
        assert_eq!(
            apply_req(&mut e, &StoreReq::Delete { seq: 6, obj: 5 }),
            StoreRep::Deleted { seq: 6, existed: true }
        );
        assert_eq!(
            apply_req(&mut e, &StoreReq::Delete { seq: 7, obj: 5 }),
            StoreRep::Deleted { seq: 7, existed: false }
        );
    }
}
