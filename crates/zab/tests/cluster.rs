//! Randomized cluster harness for ZAB safety and liveness.
//!
//! Drives a set of [`ZabPeer`]s through a tiny millisecond-granular event
//! loop with random (but per-link FIFO) message delays, crashes, restarts
//! and partitions, and checks the agreement properties the DUFS paper's
//! consistency argument rests on:
//!
//! * **Agreement** — the applied transaction sequences of any two replicas
//!   are prefixes of one another.
//! * **Durability** — a transaction the leader reported committed survives
//!   leader crashes (as long as a quorum survives).
//! * **Single leadership** — at quiescence exactly one established leader.

use std::collections::{BinaryHeap, HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use dufs_zab::{EnsembleConfig, PeerId, ZabAction, ZabConfig, ZabMsg, ZabPeer, ZabTimer, Zxid};

type Txn = u64;

#[derive(PartialEq, Eq)]
enum Ev {
    Msg { from: PeerId, to: PeerId, msg: ZabMsg<Txn> },
    Timer { peer: PeerId, timer: ZabTimer, generation: u32 },
}

struct Cluster {
    peers: Vec<ZabPeer<Txn>>,
    alive: Vec<bool>,
    generation: Vec<u32>,
    /// (tick, seq) ordered event queue.
    queue: BinaryHeap<(std::cmp::Reverse<(u64, u64)>, usize)>,
    events: Vec<Option<Ev>>,
    link_clock: HashMap<(PeerId, PeerId), u64>,
    blocked: HashSet<(u32, u32)>,
    tick: u64,
    seq: u64,
    rng: StdRng,
    /// Applied (committed) sequence per peer, cleared on ResetState.
    applied: Vec<Vec<(Zxid, Txn)>>,
}

impl Cluster {
    fn new(n: usize, seed: u64) -> Self {
        Self::with_observers(n, 0, seed)
    }

    fn with_observers(n: usize, o: usize, seed: u64) -> Self {
        Self::with_config(n, o, seed, ZabConfig::default())
    }

    fn with_config(n: usize, o: usize, seed: u64, zcfg: ZabConfig) -> Self {
        let total = n + o;
        let cfg = EnsembleConfig::with_observers(n, o);
        let n = total;
        let mut c = Cluster {
            peers: Vec::new(),
            alive: vec![true; n],
            generation: vec![0; n],
            queue: BinaryHeap::new(),
            events: Vec::new(),
            link_clock: HashMap::new(),
            blocked: HashSet::new(),
            tick: 0,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            applied: vec![Vec::new(); n],
        };
        for i in 0..n {
            let (peer, acts) = ZabPeer::new_with_config(PeerId(i as u32), cfg.clone(), zcfg);
            c.peers.push(peer);
            c.handle_actions(PeerId(i as u32), acts);
        }
        c
    }

    fn push(&mut self, at: u64, ev: Ev) {
        let idx = self.events.len();
        self.events.push(Some(ev));
        self.queue.push((std::cmp::Reverse((at, self.seq)), idx));
        self.seq += 1;
    }

    fn handle_actions(&mut self, me: PeerId, acts: Vec<ZabAction<Txn>>) {
        for a in acts {
            match a {
                ZabAction::Send { to, msg } => {
                    if self.blocked.contains(&(me.0, to.0)) {
                        continue;
                    }
                    let delay = self.rng.random_range(1..15u64);
                    let mut at = self.tick + delay;
                    let clock = self.link_clock.entry((me, to)).or_insert(0);
                    at = at.max(*clock); // FIFO per link
                    *clock = at;
                    self.push(at, Ev::Msg { from: me, to, msg });
                }
                ZabAction::SetTimer { timer, after_ms } => {
                    let generation = self.generation[me.0 as usize];
                    self.push(self.tick + after_ms, Ev::Timer { peer: me, timer, generation });
                }
                ZabAction::Deliver { zxid, txn } => {
                    let log = &mut self.applied[me.0 as usize];
                    if let Some((last, _)) = log.last() {
                        assert!(zxid > *last, "{me}: deliveries must be zxid-ordered");
                    }
                    log.push((zxid, txn));
                }
                ZabAction::ResetState => self.applied[me.0 as usize].clear(),
                ZabAction::RestoreSnapshot { .. } => {
                    // This harness never installs snapshots; fault-injection
                    // coverage for snapshot sync lives in the coord tests.
                    unreachable!("no snapshots in this harness")
                }
                ZabAction::BecameLeader { .. }
                | ZabAction::BecameFollower { .. }
                | ZabAction::StartedElection => {}
                // Purely in-memory harness: the peer's own fields already
                // carry the durable state (no WAL to mirror it into).
                ZabAction::Persist(_) => {}
            }
        }
    }

    fn step(&mut self) -> bool {
        let Some((std::cmp::Reverse((at, _)), idx)) = self.queue.pop() else { return false };
        self.tick = self.tick.max(at);
        let ev = self.events[idx].take().expect("event consumed once");
        match ev {
            Ev::Msg { from, to, msg } => {
                if self.alive[to.0 as usize] && !self.blocked.contains(&(from.0, to.0)) {
                    let acts = self.peers[to.0 as usize].on_message(from, msg);
                    self.handle_actions(to, acts);
                }
            }
            Ev::Timer { peer, timer, generation } => {
                let i = peer.0 as usize;
                if self.alive[i] && generation == self.generation[i] {
                    let acts = self.peers[i].on_timer(timer);
                    self.handle_actions(peer, acts);
                }
            }
        }
        true
    }

    fn run_until(&mut self, tick: u64) {
        while let Some(&(std::cmp::Reverse((at, _)), _)) = self.queue.peek() {
            if at > tick {
                break;
            }
            self.step();
        }
        self.tick = self.tick.max(tick);
    }

    fn crash(&mut self, peer: usize) {
        assert!(self.alive[peer]);
        self.alive[peer] = false;
        self.generation[peer] += 1;
        self.peers[peer].on_crash();
        self.applied[peer].clear(); // volatile state machine is gone
    }

    fn restart(&mut self, peer: usize) {
        assert!(!self.alive[peer]);
        self.alive[peer] = true;
        let acts = self.peers[peer].on_restart();
        self.handle_actions(PeerId(peer as u32), acts);
    }

    /// All peers currently believing they are established leaders. More than
    /// one can exist *transiently* (an abdicating stale leader) — that is
    /// fine as long as committed histories agree, which `assert_agreement`
    /// checks; at quiescence tests assert there is exactly one.
    fn established_leaders(&self) -> Vec<usize> {
        (0..self.peers.len())
            .filter(|&i| self.alive[i] && self.peers[i].is_established_leader())
            .collect()
    }

    /// The leader with the highest epoch (the current regime).
    fn established_leader(&self) -> Option<usize> {
        self.established_leaders().into_iter().max_by_key(|&i| self.peers[i].epoch())
    }

    fn assert_single_leader(&self) -> usize {
        let leaders = self.established_leaders();
        assert_eq!(leaders.len(), 1, "expected exactly one leader at quiescence: {leaders:?}");
        leaders[0]
    }

    /// Propose through the established leader if there is one. Records the
    /// txn as committed once a Deliver for it is seen at the leader.
    fn try_propose(&mut self, txn: Txn) -> bool {
        let Some(l) = self.established_leader() else { return false };
        match self.peers[l].propose(txn) {
            Ok(acts) => {
                self.handle_actions(PeerId(l as u32), acts);
                true
            }
            Err(_) => false,
        }
    }

    fn assert_agreement(&self) {
        for i in 0..self.peers.len() {
            for j in (i + 1)..self.peers.len() {
                let (a, b) = (&self.applied[i], &self.applied[j]);
                let n = a.len().min(b.len());
                assert_eq!(&a[..n], &b[..n], "peers {i} and {j} disagree on a common prefix");
            }
        }
    }

    fn assert_alive_converged(&self) {
        let alive: Vec<usize> = (0..self.peers.len()).filter(|&i| self.alive[i]).collect();
        for w in alive.windows(2) {
            assert_eq!(
                self.applied[w[0]], self.applied[w[1]],
                "alive peers {} and {} have not converged",
                w[0], w[1]
            );
        }
    }
}

/// Settle: run generously past all election timeouts so the ensemble
/// quiesces.
const SETTLE_MS: u64 = 5_000;

#[test]
fn three_peers_elect_one_leader() {
    for seed in 0..10 {
        let mut c = Cluster::new(3, seed);
        c.run_until(SETTLE_MS);
        c.assert_single_leader();
    }
}

#[test]
fn replication_without_faults_applies_everywhere() {
    let mut c = Cluster::new(3, 42);
    c.run_until(SETTLE_MS);
    let mut accepted = 0;
    for i in 0..200u64 {
        if c.try_propose(i) {
            accepted += 1;
        }
        c.run_until(c.tick + 3);
    }
    assert_eq!(accepted, 200);
    c.run_until(c.tick + SETTLE_MS);
    c.assert_agreement();
    c.assert_alive_converged();
    assert_eq!(c.applied[0].len(), 200);
    let vals: Vec<Txn> = c.applied[0].iter().map(|(_, t)| *t).collect();
    assert_eq!(vals, (0..200).collect::<Vec<_>>(), "commit order == proposal order");
}

#[test]
fn five_peer_ensemble_replicates() {
    let mut c = Cluster::new(5, 7);
    c.run_until(SETTLE_MS);
    for i in 0..50u64 {
        assert!(c.try_propose(i));
        c.run_until(c.tick + 5);
    }
    c.run_until(c.tick + SETTLE_MS);
    c.assert_alive_converged();
    assert_eq!(c.applied[0].len(), 50);
}

#[test]
fn leader_crash_preserves_committed_history() {
    let mut c = Cluster::new(3, 1);
    c.run_until(SETTLE_MS);
    for i in 0..20u64 {
        assert!(c.try_propose(i));
        c.run_until(c.tick + 5);
    }
    c.run_until(c.tick + 500);
    let old_leader = c.established_leader().unwrap();
    let committed_before = c.applied[old_leader].clone();
    assert_eq!(committed_before.len(), 20);

    c.crash(old_leader);
    c.run_until(c.tick + SETTLE_MS);
    let new_leader = c.established_leader().expect("survivors elect a leader");
    assert_ne!(new_leader, old_leader);
    // Every committed txn survives on the new leader.
    assert!(c.applied[new_leader].len() >= 20);
    assert_eq!(&c.applied[new_leader][..20], &committed_before[..]);

    // The new regime accepts writes.
    assert!(c.try_propose(999));
    c.run_until(c.tick + SETTLE_MS);
    c.assert_agreement();
    assert_eq!(c.applied[new_leader].last().unwrap().1, 999);
}

#[test]
fn crashed_follower_catches_up_on_restart() {
    let mut c = Cluster::new(3, 5);
    c.run_until(SETTLE_MS);
    let leader = c.established_leader().unwrap();
    let follower = (0..3).find(|&i| i != leader).unwrap();
    c.crash(follower);
    for i in 0..30u64 {
        assert!(c.try_propose(i), "quorum of 2 keeps committing");
        c.run_until(c.tick + 5);
    }
    c.run_until(c.tick + 500);
    c.restart(follower);
    c.run_until(c.tick + SETTLE_MS);
    c.assert_alive_converged();
    assert_eq!(c.applied[follower].len(), 30, "restarted follower replayed everything");
}

#[test]
fn observers_replicate_without_joining_quorums() {
    // 3 voters + 2 observers.
    let mut c = Cluster::with_observers(3, 2, 17);
    c.run_until(SETTLE_MS);
    let leader = c.assert_single_leader();
    assert!(leader < 3, "an observer must never lead");
    for i in 0..40u64 {
        assert!(c.try_propose(i));
        c.run_until(c.tick + 5);
    }
    c.run_until(c.tick + SETTLE_MS);
    c.assert_alive_converged();
    // Observers applied the full committed stream.
    assert_eq!(c.applied[3].len(), 40);
    assert_eq!(c.applied[4].len(), 40);

    // Kill BOTH observers: commits continue (they are not in any quorum).
    c.crash(3);
    c.crash(4);
    for i in 40..60u64 {
        assert!(c.try_propose(i), "observers must not affect the write quorum");
        c.run_until(c.tick + 5);
    }
    c.run_until(c.tick + SETTLE_MS);
    assert_eq!(c.applied[0].len(), 60);

    // A restarted observer catches up.
    c.restart(3);
    c.run_until(c.tick + SETTLE_MS);
    assert_eq!(c.applied[3].len(), 60);
}

#[test]
fn observer_crash_of_voters_still_respects_quorum() {
    // 3 voters + 1 observer: killing 2 voters leaves 1 voter + observer —
    // NOT a quorum, so writes must stop even though 2 machines are up.
    let mut c = Cluster::with_observers(3, 1, 23);
    c.run_until(SETTLE_MS);
    let leader = c.assert_single_leader();
    let voters: Vec<usize> = (0..3).filter(|&i| i != leader).collect();
    c.crash(voters[0]);
    c.crash(voters[1]);
    c.run_until(c.tick + 2 * SETTLE_MS);
    // The leader abdicates (no voter quorum); nobody can commit.
    assert!(c.established_leaders().is_empty(), "1 voter + observer is not a quorum");
}

#[test]
fn minority_partition_cannot_commit() {
    let mut c = Cluster::new(3, 9);
    c.run_until(SETTLE_MS);
    let leader = c.established_leader().unwrap();
    let others: Vec<usize> = (0..3).filter(|&i| i != leader).collect();

    // Isolate the leader from both followers.
    for &o in &others {
        c.blocked.insert((leader as u32, o as u32));
        c.blocked.insert((o as u32, leader as u32));
    }
    c.run_until(c.tick + SETTLE_MS);

    // The majority side elected a fresh leader; the isolated old leader
    // must have abdicated (no established leader on the minority side).
    let new_leader = c.established_leader().expect("majority elects");
    assert!(others.contains(&new_leader));
    assert!(!c.peers[leader].is_established_leader(), "isolated leader abdicated");

    // Writes through the new leader commit; count them.
    for i in 0..10u64 {
        assert!(c.try_propose(100 + i));
        c.run_until(c.tick + 5);
    }
    c.run_until(c.tick + 1000);
    assert!(c.applied[new_leader].iter().any(|(_, t)| *t == 109));

    // Heal the partition: the old leader rejoins and converges.
    c.blocked.clear();
    c.run_until(c.tick + SETTLE_MS);
    c.assert_alive_converged();
}

fn run_fault_scenario(seed: u64) {
    {
        let n = 3 + (seed as usize % 2) * 2; // 3 or 5 peers
        let quorum = n / 2 + 1;
        // Mix write-path configurations across seeds: a third of the sweep
        // runs the classic one-txn-per-proposal protocol, the rest group
        // commit with different batch/flush shapes — every fault pattern is
        // exercised against both.
        let zcfg = match seed % 3 {
            0 => ZabConfig::default(),
            1 => ZabConfig::batched(4, 3),
            _ => ZabConfig::batched(16, 8),
        };
        let mut c = Cluster::with_config(n, 0, 1000 + seed, zcfg);
        c.run_until(SETTLE_MS);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next_txn = 0u64;
        for _ in 0..120 {
            match rng.random_range(0..12u32) {
                0 => {
                    // Crash someone while keeping a quorum.
                    let alive: Vec<usize> = (0..n).filter(|&i| c.alive[i]).collect();
                    if alive.len() > quorum {
                        let victim = alive[rng.random_range(0..alive.len())];
                        c.crash(victim);
                    }
                }
                1 => {
                    let dead: Vec<usize> = (0..n).filter(|&i| !c.alive[i]).collect();
                    if let Some(&p) = dead.first() {
                        c.restart(p);
                    }
                }
                2 => {
                    // Burst: several proposals land in the same batch window
                    // (no time passes between them), then sometimes crash
                    // the leader *mid-batch* — buffered or partially-acked
                    // transactions must die with the regime, never surface
                    // as a half-applied batch on any replica.
                    let burst = rng.random_range(2..6u32);
                    for _ in 0..burst {
                        if c.try_propose(next_txn) {
                            next_txn += 1;
                        }
                    }
                    if rng.random_range(0..3u32) == 0 {
                        if let Some(l) = c.established_leader() {
                            let alive = (0..n).filter(|&i| c.alive[i]).count();
                            if alive > quorum {
                                c.crash(l);
                            }
                        }
                    }
                }
                _ => {
                    if c.try_propose(next_txn) {
                        next_txn += 1;
                    }
                }
            }
            c.run_until(c.tick + rng.random_range(5..100u64));
            c.assert_agreement();
        }
        // Restart everyone and settle: all must converge.
        let dead: Vec<usize> = (0..n).filter(|&i| !c.alive[i]).collect();
        for p in dead {
            c.restart(p);
        }
        c.run_until(c.tick + 4 * SETTLE_MS);
        if std::env::var("ZAB_TRACE").is_ok() {
            eprintln!("seed {seed}: roles at end:");
            for (i, p) in c.peers.iter().enumerate() {
                eprintln!(
                    "  peer {i}: {:?} e{} z{} applied={} committed={}",
                    p.role(),
                    p.epoch(),
                    p.last_zxid(),
                    c.applied[i].len(),
                    p.committed()
                );
            }
        }
        c.assert_agreement();
        c.assert_alive_converged();
        c.assert_single_leader();
        // No duplicates or reordering: applied txns are unique and in
        // proposal order (gaps are fine — transactions buffered or
        // partially acked when a leader died are allowed to vanish, but
        // never to come back out of order).
        let vals: Vec<Txn> = c.applied[0].iter().map(|(_, t)| *t).collect();
        assert!(
            vals.windows(2).all(|w| w[0] < w[1]),
            "seed {seed}: duplicate or reordered delivery"
        );
    }
}

#[test]
fn batched_replication_commits_everything_in_order() {
    // Back-to-back proposals under group commit: batches form (the burst
    // outruns the 3 ms flush timer), and every transaction still commits
    // exactly once, in proposal order, on every replica.
    let mut c = Cluster::with_config(3, 0, 77, ZabConfig::batched(8, 3));
    c.run_until(SETTLE_MS);
    let mut proposed = 0u64;
    for round in 0..40u64 {
        for _ in 0..(1 + round % 5) {
            assert!(c.try_propose(proposed));
            proposed += 1;
        }
        c.run_until(c.tick + 4);
    }
    c.run_until(c.tick + SETTLE_MS);
    c.assert_agreement();
    c.assert_alive_converged();
    let vals: Vec<Txn> = c.applied[0].iter().map(|(_, t)| *t).collect();
    assert_eq!(vals, (0..proposed).collect::<Vec<_>>(), "commit order == proposal order");
}

#[test]
fn batched_observers_receive_grouped_informs() {
    // Observers under group commit: the committed stream reaches them
    // batched, complete and in order.
    let mut c = Cluster::with_config(3, 1, 31, ZabConfig::batched(8, 3));
    c.run_until(SETTLE_MS);
    let leader = c.assert_single_leader();
    assert!(leader < 3, "an observer must never lead");
    for i in 0..60u64 {
        assert!(c.try_propose(i));
        if i % 6 == 5 {
            c.run_until(c.tick + 4);
        }
    }
    c.run_until(c.tick + SETTLE_MS);
    c.assert_alive_converged();
    assert_eq!(c.applied[3].len(), 60, "observer applied the full batched stream");
}

#[test]
fn agreement_holds_under_random_crashes() {
    // A fuzz-style scenario sweep: random proposals interleaved with
    // crashes and restarts that always keep a quorum alive.
    for seed in 0..15u64 {
        run_fault_scenario(seed);
    }
}

/// Wide-sweep stress (run explicitly: `cargo test -- --ignored`).
#[test]
#[ignore]
fn agreement_stress_wide_sweep() {
    // ZAB_SEED=<n> runs one seed; ZAB_SEED=sweep runs 1000; default 200.
    let (lo, hi) = match std::env::var("ZAB_SEED").as_deref() {
        Ok("sweep") => (0, 1000),
        Ok(s) => {
            let v: u64 = s.parse().expect("ZAB_SEED must be a number or 'sweep'");
            (v, v + 1)
        }
        Err(_) => (0, 200),
    };
    for seed in lo..hi {
        let r = std::panic::catch_unwind(|| run_fault_scenario(seed));
        if let Err(e) = r {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            panic!("seed {seed} failed: {msg}");
        }
    }
}
// appended temporarily to cluster.rs for tracing
