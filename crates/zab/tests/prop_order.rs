//! Property tests for zxid arithmetic and vote ordering — the total orders
//! the whole protocol stands on.

use proptest::prelude::*;

use dufs_zab::msg::Vote;
use dufs_zab::{PeerId, Zxid};

proptest! {
    /// Zxid ordering is exactly lexicographic on (epoch, counter), and the
    /// u64 round trip is lossless.
    #[test]
    fn zxid_order_is_epoch_major(e1 in 0u32..1000, c1 in 0u32..1000, e2 in 0u32..1000, c2 in 0u32..1000) {
        let a = Zxid::new(e1, c1);
        let b = Zxid::new(e2, c2);
        prop_assert_eq!(a.cmp(&b), (e1, c1).cmp(&(e2, c2)));
        prop_assert_eq!(Zxid::from_u64(a.as_u64()), a);
        prop_assert_eq!((a.epoch(), a.counter()), (e1, c1));
    }

    /// `next()` is the successor within the epoch.
    #[test]
    fn zxid_next_is_successor(e in 0u32..1000, c in 0u32..100_000) {
        let z = Zxid::new(e, c);
        let n = z.next();
        prop_assert!(n > z);
        prop_assert_eq!(n.epoch(), e);
        prop_assert_eq!(n.counter(), c + 1);
        // No zxid strictly between z and next.
        prop_assert_eq!(Zxid::from_u64(z.as_u64() + 1), n);
    }

    /// Vote preference is a strict total order on distinct (zxid, id) pairs:
    /// antisymmetric and transitive, with history dominating the peer id.
    #[test]
    fn vote_preference_is_a_strict_order(
        trio in proptest::collection::vec((0u32..50, 0u32..50, 0u32..8), 3..4)
    ) {
        let votes: Vec<Vote> = trio
            .iter()
            .map(|&(e, c, id)| Vote {
                candidate: PeerId(id),
                candidate_zxid: Zxid::new(e, c),
                round: 1,
            })
            .collect();
        for a in &votes {
            prop_assert!(!a.beats(a), "irreflexive");
            for b in &votes {
                if (a.candidate_zxid, a.candidate) != (b.candidate_zxid, b.candidate) {
                    prop_assert_ne!(a.beats(b), b.beats(a), "antisymmetric");
                }
                if a.candidate_zxid > b.candidate_zxid {
                    prop_assert!(a.beats(b), "longer history always wins");
                }
                for c in &votes {
                    if a.beats(b) && b.beats(c) {
                        prop_assert!(a.beats(c), "transitive");
                    }
                }
            }
        }
    }
}
