//! The ZAB peer state machine.
//!
//! A [`ZabPeer`] is a pure state machine: feed it messages and timer fires,
//! execute the [`ZabAction`]s it returns. It never touches a clock, a
//! socket, or a thread, which is what lets the same code run under the
//! discrete-event simulator, the threaded runtime, and the randomized
//! safety-test harnesses.

use std::collections::{BTreeMap, HashMap, HashSet};

use bytes::Bytes;

use crate::config::{EnsembleConfig, PeerId, ZabConfig};
use crate::msg::{PersistEvent, Vote, ZabAction, ZabMsg, ZabTimer};
use crate::zxid::Zxid;

/// Default election retry period (milliseconds, virtual).
pub const ELECTION_TIMEOUT_MS: u64 = 150;
/// Leader heartbeat period.
pub const LEADER_PING_MS: u64 = 100;
/// Follower silence tolerance before re-election.
pub const WATCHDOG_MS: u64 = 450;
/// Consecutive heartbeat windows without follower quorum before a leader
/// abdicates.
const MAX_QUORUM_MISS_WINDOWS: u32 = 3;

/// A peer's role in the ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Electing: exchanging votes.
    Looking,
    /// Following `leader`; `synced` once the log synchronization handshake
    /// completed and broadcast traffic is accepted.
    Following {
        /// The leader this peer follows.
        leader: PeerId,
        /// Whether sync completed.
        synced: bool,
    },
    /// Won the election; `established` once a quorum has synchronized.
    Leading {
        /// Whether a quorum of followers acknowledged synchronization.
        established: bool,
    },
}

/// Error returned by [`ZabPeer::propose`] when this peer cannot accept
/// writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotLeader {
    /// Best current guess at who the leader is, for request forwarding.
    pub leader_hint: Option<PeerId>,
}

/// Durable state recovered from a write-ahead log, used by
/// [`ZabPeer::recover`] to rebuild a peer after a whole-process crash. The
/// commit watermark is deliberately absent: it need not be persisted —
/// leader establishment re-commits the elected history (ZAB's guarantee
/// that the winning quorum's log contains every committed entry).
#[derive(Debug, Clone, Default)]
pub struct DurableState<T> {
    /// The highest epoch this peer promised ([`PersistEvent::Epoch`]).
    pub epoch: u32,
    /// The newest decodable checkpoint, if any.
    pub snapshot: Option<(Zxid, Bytes)>,
    /// Log entries above the snapshot watermark, strictly ascending.
    pub log: Vec<(Zxid, T)>,
}

#[derive(Debug)]
struct LeaderState<T> {
    epoch: u32,
    next_counter: u32,
    /// Ack sets per outstanding proposal (leader's own ack is implicit).
    acks: BTreeMap<Zxid, HashSet<PeerId>>,
    /// Followers that completed sync and receive broadcast traffic.
    synced: HashSet<PeerId>,
    /// Log position each follower was synced up to when its SyncLog was
    /// built; an AckSync only covers entries at or below this point.
    sync_points: HashMap<PeerId, Zxid>,
    /// Pongs received in the current heartbeat window.
    pongs: HashSet<PeerId>,
    quorum_miss_windows: u32,
    /// Submitted-but-unproposed transactions awaiting group commit. No
    /// zxids are minted until flush, so losing the buffer on leadership
    /// loss is safe: the transactions were never acknowledged to anyone.
    buffer: Vec<T>,
}

/// In-progress assembly of a chunk-streamed SNAP transfer on a syncing
/// follower (see [`ZabMsg::SnapChunk`]). Chunks must arrive strictly in
/// order with consistent metadata; any deviation discards the buffer and
/// re-requests the sync.
#[derive(Debug)]
struct PendingSnap {
    epoch: u32,
    zxid: Zxid,
    total: u32,
    /// CRC32 of the complete blob, checked once assembly finishes.
    crc: u32,
    next_seq: u32,
    data: Vec<u8>,
}

impl PendingSnap {
    fn complete(&self) -> bool {
        self.next_seq == self.total
    }
}

/// The ZAB state machine for one ensemble member. `T` is the replicated
/// transaction type.
#[derive(Debug)]
pub struct ZabPeer<T> {
    id: PeerId,
    config: EnsembleConfig,
    /// Group-commit tuning (batch bound + flush timer). Default is
    /// batch-of-one: classic per-transaction rounds.
    zcfg: ZabConfig,

    // -- durable state (survives crashes) --
    log: Vec<(Zxid, T)>,
    committed: Zxid,
    accepted_epoch: u32,
    /// Checkpointed state machine covering everything up to its zxid; log
    /// entries at or below it have been compacted away (ZooKeeper's
    /// snapshot + log-truncation).
    snapshot: Option<(Zxid, Bytes)>,

    // -- volatile state --
    role: Role,
    round: u64,
    my_vote: Vote,
    votes: HashMap<PeerId, Vote>,
    leader_state: Option<LeaderState<T>>,
    heard_from_leader: bool,
    /// Index into `log` of the next entry to deliver to the state machine.
    applied_idx: usize,
    /// A leader we stopped hearing from: ignore `established` hints naming
    /// it until a new regime forms, so stale hints from still-synced peers
    /// cannot pull us back to a dead leader forever. Expires after
    /// `distrust_ttl` election periods — if the named leader is actually
    /// alive and the rest of the ensemble follows it, rejoining is correct.
    distrusted: Option<PeerId>,
    distrust_ttl: u8,
    /// Highest epoch observed anywhere (follower reports, syncs); future
    /// candidacies mint above it so stale-promise followers can rejoin.
    max_seen_epoch: u32,
    /// Observers replicate and serve reads but never vote, ack, or lead.
    is_observer: bool,
    /// Follower-side assembly buffer for a chunked SNAP transfer
    /// ([`ZabMsg::SnapChunk`]), consumed by the closing `SyncLog`.
    pending_snap: Option<PendingSnap>,
    /// Timer generations (see [`ZabTimer`]): stale duplicate fires are
    /// ignored so only one live chain exists per timer kind.
    election_gen: u64,
    ping_gen: u64,
    watchdog_gen: u64,
    batch_gen: u64,
}

impl<T: Clone> ZabPeer<T> {
    /// Create a peer and return its startup actions (its first election
    /// round, or immediate leadership for a single-peer ensemble). Uses the
    /// default [`ZabConfig`]: batch-of-one, i.e. classic ZAB.
    pub fn new(id: PeerId, config: EnsembleConfig) -> (Self, Vec<ZabAction<T>>) {
        Self::new_with_config(id, config, ZabConfig::default())
    }

    /// Create a peer with explicit group-commit tuning.
    pub fn new_with_config(
        id: PeerId,
        config: EnsembleConfig,
        zcfg: ZabConfig,
    ) -> (Self, Vec<ZabAction<T>>) {
        assert!(config.is_member(id), "peer must be an ensemble member");
        assert!(zcfg.max_batch >= 1, "a batch holds at least one transaction");
        let is_observer = config.is_observer(id);
        let mut peer = ZabPeer {
            id,
            config,
            zcfg,
            log: Vec::new(),
            committed: Zxid::ZERO,
            accepted_epoch: 0,
            snapshot: None,
            role: Role::Looking,
            round: 0,
            my_vote: Vote { candidate: id, candidate_zxid: Zxid::ZERO, round: 0 },
            votes: HashMap::new(),
            leader_state: None,
            heard_from_leader: false,
            applied_idx: 0,
            distrusted: None,
            distrust_ttl: 0,
            max_seen_epoch: 0,
            is_observer,
            pending_snap: None,
            election_gen: 0,
            ping_gen: 0,
            watchdog_gen: 0,
            batch_gen: 0,
        };
        let mut out = Vec::new();
        peer.start_election(&mut out);
        (peer, out)
    }

    /// Rebuild a peer from write-ahead-log state after a whole-process
    /// crash (cold start). The snapshot is restored into the state machine
    /// and the log tail above it is *retained but not yet delivered*: the
    /// commit watermark starts at the snapshot zxid, and the tail commits
    /// through the normal path — leader establishment (if this peer wins
    /// election, its whole history becomes committed) or follower sync.
    /// Entries at or below the snapshot watermark are discarded.
    pub fn recover(
        id: PeerId,
        config: EnsembleConfig,
        zcfg: ZabConfig,
        durable: DurableState<T>,
    ) -> (Self, Vec<ZabAction<T>>) {
        assert!(config.is_member(id), "peer must be an ensemble member");
        assert!(zcfg.max_batch >= 1, "a batch holds at least one transaction");
        let is_observer = config.is_observer(id);
        let snap_zxid = durable.snapshot.as_ref().map(|(z, _)| *z).unwrap_or(Zxid::ZERO);
        let mut log = durable.log;
        log.retain(|(z, _)| *z > snap_zxid);
        let mut peer = ZabPeer {
            id,
            config,
            zcfg,
            log,
            committed: snap_zxid,
            accepted_epoch: durable.epoch,
            snapshot: durable.snapshot,
            role: Role::Looking,
            round: 0,
            my_vote: Vote { candidate: id, candidate_zxid: Zxid::ZERO, round: 0 },
            votes: HashMap::new(),
            leader_state: None,
            heard_from_leader: false,
            applied_idx: 0,
            distrusted: None,
            distrust_ttl: 0,
            max_seen_epoch: durable.epoch,
            is_observer,
            pending_snap: None,
            election_gen: 0,
            ping_gen: 0,
            watchdog_gen: 0,
            batch_gen: 0,
        };
        let mut out = Vec::new();
        match &peer.snapshot {
            Some((z, blob)) => {
                out.push(ZabAction::RestoreSnapshot { zxid: *z, blob: blob.clone() })
            }
            None => out.push(ZabAction::ResetState),
        }
        peer.deliver_pending(&mut out);
        peer.start_election(&mut out);
        (peer, out)
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// This peer's id.
    pub fn id(&self) -> PeerId {
        self.id
    }
    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }
    /// True if this peer is the established leader.
    pub fn is_established_leader(&self) -> bool {
        matches!(self.role, Role::Leading { established: true })
    }
    /// Who this peer believes leads, if anyone (for request forwarding).
    pub fn leader_hint(&self) -> Option<PeerId> {
        match self.role {
            Role::Leading { .. } => Some(self.id),
            Role::Following { leader, .. } => Some(leader),
            Role::Looking => None,
        }
    }
    /// Last zxid in the history: the log tail, or the snapshot watermark if
    /// the log has been fully compacted (ZERO before any transaction).
    pub fn last_zxid(&self) -> Zxid {
        self.log.last().map(|(z, _)| *z).unwrap_or_else(|| self.snapshot_zxid())
    }

    /// The zxid covered by the installed snapshot (ZERO if none).
    pub fn snapshot_zxid(&self) -> Zxid {
        self.snapshot.as_ref().map(|(z, _)| *z).unwrap_or(Zxid::ZERO)
    }

    /// Install a checkpoint of the applied state machine at `zxid` (must
    /// not exceed the commit watermark) and compact the log prefix it
    /// covers. Bounds log memory — the concern §VII's future work raises.
    ///
    /// # Panics
    /// Panics if `zxid` exceeds the commit watermark (checkpointing
    /// uncommitted state would be unsound).
    pub fn install_snapshot(&mut self, zxid: Zxid, blob: Bytes) {
        assert!(zxid <= self.committed, "cannot checkpoint past the commit watermark");
        if zxid <= self.snapshot_zxid() {
            return; // stale checkpoint
        }
        let keep_from = self.log.partition_point(|(z, _)| *z <= zxid);
        // Only applied entries may be dropped; applied_idx counts from the
        // log start, so everything below keep_from must have been applied.
        let dropped = keep_from.min(self.applied_idx);
        self.log.drain(..dropped);
        self.applied_idx -= dropped;
        self.snapshot = Some((zxid, blob));
    }

    /// Current log length after compaction (tests/diagnostics).
    pub fn compacted_log_len(&self) -> usize {
        self.log.len()
    }
    /// Commit watermark.
    pub fn committed(&self) -> Zxid {
        self.committed
    }
    /// Log length (committed + in-flight).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }
    /// Epoch this peer last accepted.
    pub fn epoch(&self) -> u32 {
        self.accepted_epoch
    }
    /// Whether this peer is a non-voting observer.
    pub fn is_observer(&self) -> bool {
        self.is_observer
    }

    // ------------------------------------------------------------------
    // Inputs
    // ------------------------------------------------------------------

    /// Submit a transaction for replication. Only the established leader
    /// accepts; everyone else reports a forwarding hint.
    ///
    /// With group commit enabled (`max_batch > 1`), the transaction is
    /// buffered; the batch is proposed when full or when the flush timer
    /// fires. No zxid exists until then, so a buffered transaction lost to
    /// a crash was never promised to anyone. With the default batch-of-one
    /// the proposal goes out immediately, exactly as classic ZAB.
    pub fn propose(&mut self, txn: T) -> Result<Vec<ZabAction<T>>, NotLeader> {
        if !self.is_established_leader() {
            return Err(NotLeader { leader_hint: self.leader_hint() });
        }
        let mut out = Vec::new();
        let ls = self.leader_state.as_mut().expect("leading implies leader state");
        ls.buffer.push(txn);
        if ls.buffer.len() >= self.zcfg.max_batch {
            self.flush_batch(&mut out);
        } else if ls.buffer.len() == 1 {
            // First transaction of a fresh batch: arm the Nagle timer.
            self.batch_gen += 1;
            out.push(ZabAction::SetTimer {
                timer: ZabTimer::BatchFlush(self.batch_gen),
                after_ms: self.zcfg.flush_ms,
            });
        }
        Ok(out)
    }

    /// [`ZabPeer::propose`], but the batch — this transaction plus anything
    /// already buffered — is flushed immediately instead of waiting for the
    /// Nagle timer. Used for `sync` barriers, where group-commit latency
    /// would defeat the point of the barrier.
    pub fn propose_urgent(&mut self, txn: T) -> Result<Vec<ZabAction<T>>, NotLeader> {
        if !self.is_established_leader() {
            return Err(NotLeader { leader_hint: self.leader_hint() });
        }
        let mut out = Vec::new();
        let ls = self.leader_state.as_mut().expect("leading implies leader state");
        ls.buffer.push(txn);
        self.flush_batch(&mut out);
        Ok(out)
    }

    /// Propose the buffered batch: mint a contiguous zxid range, log every
    /// transaction atomically (so sync points always fall on batch
    /// boundaries), and run ONE quorum round for the whole range — the ack
    /// set is keyed by the batch's last zxid and a follower ack of that
    /// zxid covers the range.
    fn flush_batch(&mut self, out: &mut Vec<ZabAction<T>>) {
        self.batch_gen += 1; // invalidate any pending flush timer
        let Some(ls) = self.leader_state.as_mut() else { return };
        if ls.buffer.is_empty() {
            return;
        }
        let txns = std::mem::take(&mut ls.buffer);
        let first = Zxid::new(ls.epoch, ls.next_counter + 1);
        let mut minted = Vec::with_capacity(txns.len());
        for t in &txns {
            ls.next_counter += 1;
            minted.push((Zxid::new(ls.epoch, ls.next_counter), t.clone()));
        }
        self.log.extend(minted.iter().cloned());
        let last = Zxid::new(ls.epoch, ls.next_counter);
        ls.acks.insert(last, HashSet::new());
        // The leader's own (implicit) ack is only valid once the batch is
        // durable: persist before any Propose goes out or a commit forms.
        out.push(ZabAction::Persist(PersistEvent::Append { entries: minted }));
        let mut targets: Vec<PeerId> =
            ls.synced.iter().copied().filter(|&f| f != self.id).collect();
        targets.sort_unstable(); // deterministic send order
        for f in targets {
            if self.config.is_observer(f) {
                continue; // observers get one INFORM at commit time instead
            }
            out.push(ZabAction::Send {
                to: f,
                msg: ZabMsg::Propose { zxid: first, txns: txns.clone() },
            });
        }
        // Single-server ensembles (and quorums of one) commit immediately.
        self.try_advance_commit(out);
    }

    /// Handle a message from `from`.
    pub fn on_message(&mut self, from: PeerId, msg: ZabMsg<T>) -> Vec<ZabAction<T>> {
        let mut out = Vec::new();
        match msg {
            ZabMsg::Notification { vote, established } => {
                self.on_notification(from, vote, established, &mut out)
            }
            ZabMsg::FollowerInfo { last_zxid, accepted_epoch } => {
                self.on_follower_info(from, last_zxid, accepted_epoch, &mut out)
            }
            ZabMsg::SyncLog { epoch, snapshot, entries, commit_to, reset, snap_chunks } => self
                .on_sync_log(
                    from,
                    epoch,
                    snapshot,
                    entries,
                    commit_to,
                    reset,
                    snap_chunks,
                    &mut out,
                ),
            ZabMsg::SnapChunk { epoch, zxid, seq, total, crc, data } => {
                self.on_snap_chunk(from, epoch, zxid, seq, total, crc, data, &mut out)
            }
            ZabMsg::AckSync { epoch } => self.on_ack_sync(from, epoch, &mut out),
            ZabMsg::Propose { zxid, txns } => self.on_propose(from, zxid, txns, &mut out),
            ZabMsg::Ack { zxid } => self.on_ack(from, zxid, &mut out),
            ZabMsg::Commit { zxid } => self.on_commit(from, zxid, &mut out),
            ZabMsg::Inform { zxid, txns } => self.on_inform(from, zxid, txns, &mut out),
            ZabMsg::Ping { epoch, commit_to } => {
                if let Role::Following { leader, synced } = self.role {
                    if leader == from {
                        // Only a *synced* follower treats pings as proof of
                        // a live leadership: if sync never completes (e.g.
                        // the leader keeps yielding because our history is
                        // longer than its own), the watchdog must fire so a
                        // real election — where our history can win — runs.
                        if synced {
                            self.heard_from_leader = true;
                        }
                        out.push(ZabAction::Send { to: from, msg: ZabMsg::Pong });
                        if !synced || epoch != self.accepted_epoch {
                            // Either our FollowerInfo raced the leader's own
                            // election, or the leader started a new epoch
                            // since we last synced: re-run the handshake.
                            if epoch > self.accepted_epoch {
                                self.role = Role::Following { leader, synced: false };
                            }
                            out.push(ZabAction::Send {
                                to: from,
                                msg: ZabMsg::FollowerInfo {
                                    last_zxid: self.last_zxid(),
                                    accepted_epoch: self.accepted_epoch,
                                },
                            });
                        } else if commit_to > self.committed {
                            if commit_to <= self.last_zxid() {
                                // Piggybacked commit watermark: converge the
                                // tail even when broadcast traffic is quiet.
                                self.committed = commit_to;
                                self.deliver_pending(&mut out);
                            } else {
                                // The leader committed entries we never even
                                // logged (we synced in a race window and the
                                // proposals missed us): resync.
                                self.role = Role::Following { leader, synced: false };
                                out.push(ZabAction::Send {
                                    to: from,
                                    msg: ZabMsg::FollowerInfo {
                                        last_zxid: self.last_zxid(),
                                        accepted_epoch: self.accepted_epoch,
                                    },
                                });
                            }
                        }
                    }
                }
            }
            ZabMsg::Pong => {
                if let (Role::Leading { .. }, Some(ls)) = (self.role, self.leader_state.as_mut()) {
                    ls.pongs.insert(from);
                }
            }
        }
        out
    }

    /// Handle a timer fire.
    pub fn on_timer(&mut self, timer: ZabTimer) -> Vec<ZabAction<T>> {
        let mut out = Vec::new();
        match timer {
            ZabTimer::Election(gen) => {
                if gen == self.election_gen && self.role == Role::Looking {
                    // Distrust decays: after a few fruitless rounds, accept
                    // hints about the previously suspected leader again.
                    if self.distrusted.is_some() {
                        self.distrust_ttl = self.distrust_ttl.saturating_sub(1);
                        if self.distrust_ttl == 0 {
                            self.distrusted = None;
                        }
                    }
                    // Rebroadcast our vote and keep trying.
                    self.broadcast_vote(&mut out);
                    self.arm_election(&mut out);
                }
            }
            ZabTimer::LeaderPing(gen) => {
                if gen != self.ping_gen {
                    return out;
                }
                if let Role::Leading { .. } = self.role {
                    let quorum = self.config.quorum();
                    let config = &self.config;
                    let ls = self.leader_state.as_mut().expect("leader state");
                    let live = ls.pongs.iter().filter(|p| config.contains(**p)).count() + 1; // + self
                                                                                             // Both established and prospective leaders abdicate
                                                                                             // after sustained quorum loss — a prospective leader
                                                                                             // that never gathers followers must not squat forever.
                    if self.config.len() > 1 {
                        if live < quorum {
                            ls.quorum_miss_windows += 1;
                        } else {
                            ls.quorum_miss_windows = 0;
                        }
                        if ls.quorum_miss_windows >= MAX_QUORUM_MISS_WINDOWS {
                            // Lost contact with a quorum: abdicate so a
                            // majority partition can elect a live leader.
                            self.start_election(&mut out);
                            return out;
                        }
                    }
                    ls.pongs.clear();
                    let epoch = self.leader_state.as_ref().expect("leader state").epoch;
                    let commit_to = self.committed;
                    for p in self.config.all_others(self.id) {
                        out.push(ZabAction::Send { to: p, msg: ZabMsg::Ping { epoch, commit_to } });
                    }
                    self.arm_ping(&mut out);
                }
            }
            ZabTimer::FollowerWatchdog(gen) => {
                if gen != self.watchdog_gen {
                    return out;
                }
                if let Role::Following { leader, .. } = self.role {
                    if self.heard_from_leader {
                        self.heard_from_leader = false;
                        self.arm_watchdog(&mut out);
                    } else {
                        self.distrusted = Some(leader);
                        self.distrust_ttl = 4;
                        self.start_election(&mut out);
                    }
                }
            }
            ZabTimer::BatchFlush(gen) => {
                // One-shot Nagle flush; a stale generation means the batch
                // it was armed for already went out (filled up or an even
                // earlier fire flushed it).
                if gen == self.batch_gen && self.is_established_leader() {
                    self.flush_batch(&mut out);
                }
            }
        }
        out
    }

    /// The peer crashed: volatile state is lost; the log, commit watermark
    /// and accepted epoch survive (ZooKeeper checkpoints these to disk —
    /// paper §IV-I).
    pub fn on_crash(&mut self) {
        self.role = Role::Looking;
        self.votes.clear();
        self.leader_state = None;
        self.heard_from_leader = false;
        self.applied_idx = 0;
        self.distrusted = None;
    }

    /// The peer restarts after a crash: replay the committed prefix into the
    /// state machine, then rejoin the ensemble.
    pub fn on_restart(&mut self) -> Vec<ZabAction<T>> {
        let mut out = Vec::new();
        match &self.snapshot {
            Some((z, blob)) => {
                out.push(ZabAction::RestoreSnapshot { zxid: *z, blob: blob.clone() })
            }
            None => out.push(ZabAction::ResetState),
        }
        self.applied_idx = 0;
        self.deliver_pending(&mut out);
        self.start_election(&mut out);
        out
    }

    // ------------------------------------------------------------------
    // Election
    // ------------------------------------------------------------------

    fn arm_election(&mut self, out: &mut Vec<ZabAction<T>>) {
        self.election_gen += 1;
        out.push(ZabAction::SetTimer {
            timer: ZabTimer::Election(self.election_gen),
            after_ms: ELECTION_TIMEOUT_MS + self.id.0 as u64 * 7,
        });
    }

    fn arm_ping(&mut self, out: &mut Vec<ZabAction<T>>) {
        self.ping_gen += 1;
        out.push(ZabAction::SetTimer {
            timer: ZabTimer::LeaderPing(self.ping_gen),
            after_ms: LEADER_PING_MS,
        });
    }

    fn arm_watchdog(&mut self, out: &mut Vec<ZabAction<T>>) {
        self.watchdog_gen += 1;
        out.push(ZabAction::SetTimer {
            timer: ZabTimer::FollowerWatchdog(self.watchdog_gen),
            after_ms: WATCHDOG_MS,
        });
    }

    fn start_election(&mut self, out: &mut Vec<ZabAction<T>>) {
        self.role = Role::Looking;
        self.leader_state = None;
        self.heard_from_leader = false;
        self.pending_snap = None;
        self.round += 1;
        self.my_vote =
            Vote { candidate: self.id, candidate_zxid: self.last_zxid(), round: self.round };
        self.votes.clear();
        out.push(ZabAction::StartedElection);
        if self.is_observer {
            // Observers never vote or lead: probe the voters for the
            // established leader and retry until one answers.
            self.broadcast_vote(out);
            self.arm_election(out);
            return;
        }
        self.votes.insert(self.id, self.my_vote);
        if self.config.len() == 1 {
            self.become_leader(out);
            return;
        }
        self.broadcast_vote(out);
        self.arm_election(out);
    }

    fn broadcast_vote(&self, out: &mut Vec<ZabAction<T>>) {
        let established = self.leader_hint();
        for p in self.config.others(self.id) {
            out.push(ZabAction::Send {
                to: p,
                msg: ZabMsg::Notification { vote: self.my_vote, established },
            });
        }
    }

    fn on_notification(
        &mut self,
        from: PeerId,
        vote: Vote,
        established: Option<PeerId>,
        out: &mut Vec<ZabAction<T>>,
    ) {
        if !self.config.is_member(from) {
            return;
        }
        if self.config.is_observer(from) {
            // An observer probing for the leader: answer with our view (if
            // settled); its "vote" must never be tallied.
            if self.leader_hint().is_some() {
                out.push(ZabAction::Send {
                    to: from,
                    msg: ZabMsg::Notification {
                        vote: self.my_vote,
                        established: self.leader_hint(),
                    },
                });
            }
            return;
        }
        match self.role {
            Role::Looking => {
                if let Some(leader) = established {
                    if leader == self.id {
                        // The sender already follows (or awaits) us: that is
                        // a vote for our own candidacy. Normalize its round
                        // so the tally below can count it.
                        self.votes.insert(
                            from,
                            Vote {
                                candidate: self.id,
                                candidate_zxid: vote.candidate_zxid,
                                round: self.round,
                            },
                        );
                        let support = self
                            .votes
                            .values()
                            .filter(|v| {
                                v.candidate == self.my_vote.candidate && v.round == self.round
                            })
                            .count();
                        if self.my_vote.candidate == self.id && self.config.is_quorum(support) {
                            self.become_leader(out);
                        }
                        return;
                    }
                    if self.distrusted == Some(leader) {
                        // We recently timed out on this "leader"; treat the
                        // hint as an ordinary (weak) vote instead of joining.
                        if vote.round == self.round {
                            self.votes.insert(from, vote);
                        }
                        return;
                    }
                    // The sender knows another operating leader: join it.
                    self.join_leader(leader, out);
                    return;
                }
                if vote.round > self.round {
                    // Fast-forward to the newer round, keeping the better
                    // candidate between ours and theirs.
                    self.round = vote.round;
                    self.votes.clear();
                    let mine = Vote {
                        candidate: self.id,
                        candidate_zxid: self.last_zxid(),
                        round: self.round,
                    };
                    self.my_vote = if vote.beats(&mine) { vote } else { mine };
                    self.my_vote.round = self.round;
                    self.votes.insert(self.id, self.my_vote);
                    self.broadcast_vote(out);
                } else if vote.round < self.round {
                    // Help the laggard catch up.
                    out.push(ZabAction::Send {
                        to: from,
                        msg: ZabMsg::Notification { vote: self.my_vote, established: None },
                    });
                    return;
                } else if vote.beats(&self.my_vote) {
                    self.my_vote = vote;
                    self.votes.insert(self.id, self.my_vote);
                    self.broadcast_vote(out);
                }
                self.votes.insert(from, vote);
                // Tally support for our current candidate.
                let support = self
                    .votes
                    .values()
                    .filter(|v| v.candidate == self.my_vote.candidate && v.round == self.round)
                    .count();
                if self.config.is_quorum(support) {
                    if self.my_vote.candidate == self.id {
                        self.become_leader(out);
                    } else {
                        self.join_leader(self.my_vote.candidate, out);
                    }
                }
            }
            Role::Following { .. } | Role::Leading { .. } => {
                // Tell the asker who leads — but only an actual asker
                // (`established: None`). A notification that itself asserts
                // an established leader is another settled peer's view, not
                // a question: answering it makes two settled peers echo
                // hints at each other forever (fatal when the views
                // disagree, e.g. a follower cycle with no live leader —
                // that state must drain via the follower watchdog and a
                // real election, not via hint ping-pong).
                if established.is_some() {
                    return;
                }
                out.push(ZabAction::Send {
                    to: from,
                    msg: ZabMsg::Notification {
                        vote: self.my_vote,
                        established: self.leader_hint(),
                    },
                });
            }
        }
    }

    fn become_leader(&mut self, out: &mut Vec<ZabAction<T>>) {
        self.distrusted = None;
        // Epochs must be globally unique across leaders, or two successive
        // leaders that never saw each other's regime could mint *different*
        // transactions under *identical* zxids — which defeats divergence
        // detection during sync and forks the history. Real ZAB negotiates
        // the epoch through a quorum round; we get the same uniqueness by
        // composing a monotone counter with the leader id in the low bits
        // (so no two leaders can ever produce the same epoch), while
        // ordering still advances: any peer that saw epoch e only votes for
        // candidates whose history it cannot beat.
        let base = (self.accepted_epoch >> 8)
            .max(self.last_zxid().epoch() >> 8)
            .max(self.max_seen_epoch >> 8)
            + 1;
        assert!(self.id.0 < 256, "peer ids must fit the epoch low byte");
        let epoch = (base << 8) | self.id.0;
        self.accepted_epoch = epoch;
        // The epoch promise must survive a crash (a restarted leader must
        // never mint zxids under an epoch it already used).
        out.push(ZabAction::Persist(PersistEvent::Epoch(epoch)));
        self.role = Role::Leading { established: false };
        let mut synced = HashSet::new();
        synced.insert(self.id);
        self.leader_state = Some(LeaderState {
            epoch,
            next_counter: 0,
            acks: BTreeMap::new(),
            synced,
            sync_points: HashMap::new(),
            pongs: HashSet::new(),
            quorum_miss_windows: 0,
            buffer: Vec::new(),
        });
        if self.config.is_quorum(1) {
            self.establish(out);
        }
        if self.config.len() > 1 {
            self.arm_ping(out);
        }
    }

    fn establish(&mut self, out: &mut Vec<ZabAction<T>>) {
        let epoch = self.leader_state.as_ref().expect("leader state").epoch;
        self.role = Role::Leading { established: true };
        // The new leader's entire history becomes committed (ZAB: the
        // elected history is the authoritative one).
        self.committed = self.last_zxid();
        self.deliver_pending(out);
        out.push(ZabAction::BecameLeader { epoch });
    }

    fn join_leader(&mut self, leader: PeerId, out: &mut Vec<ZabAction<T>>) {
        self.distrusted = None;
        self.role = Role::Following { leader, synced: false };
        self.leader_state = None;
        self.heard_from_leader = true;
        self.my_vote = Vote { candidate: leader, candidate_zxid: Zxid::ZERO, round: self.round };
        out.push(ZabAction::Send {
            to: leader,
            msg: ZabMsg::FollowerInfo {
                last_zxid: self.last_zxid(),
                accepted_epoch: self.accepted_epoch,
            },
        });
        self.arm_watchdog(out);
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    fn on_follower_info(
        &mut self,
        from: PeerId,
        f_last: Zxid,
        f_epoch: u32,
        out: &mut Vec<ZabAction<T>>,
    ) {
        if !matches!(self.role, Role::Leading { .. }) {
            return;
        }
        self.max_seen_epoch = self.max_seen_epoch.max(f_epoch);
        let epoch = self.leader_state.as_ref().expect("leader state").epoch;
        if f_epoch > epoch {
            // The follower promised a higher epoch (a failed candidacy
            // somewhere); it will reject everything we send. Step down and
            // re-elect — the next candidacy mints above `max_seen_epoch`,
            // letting the whole ensemble rejoin one regime.
            self.start_election(out);
            return;
        }
        if f_last > self.last_zxid() {
            // The follower's history is LONGER than ours: it may hold
            // committed transactions we lack (it can reach us through an
            // `established` hint without ever voting). Truncating it could
            // destroy a committed entry — instead our leadership is
            // illegitimate: yield and re-elect, where its longer history
            // wins the vote comparison.
            self.max_seen_epoch = self.max_seen_epoch.max(f_last.epoch());
            self.start_election(out);
            return;
        }
        let my_last = self.last_zxid();
        let snap_zxid = self.snapshot_zxid();
        // Decide between an incremental suffix, a snapshot + suffix, and a
        // full reset.
        #[allow(clippy::type_complexity)] // (reset?, snapshot?, suffix) — one decision, three parts
        let (reset, snapshot, entries): (bool, Option<(Zxid, Bytes)>, Vec<(Zxid, T)>) =
            if f_last == snap_zxid {
                // Exactly at the snapshot point (incl. both ZERO): suffix.
                (false, None, self.log.clone())
            } else if f_last < snap_zxid {
                // The prefix the follower needs was compacted away: ship the
                // snapshot plus the whole remaining log (SNAP sync).
                (true, self.snapshot.clone(), self.log.clone())
            } else if !self.log_contains(f_last) {
                // Divergent history (same or lower length — the longer case
                // was handled above by yielding): the follower's tail holds
                // uncommitted leftovers; replace it wholesale.
                (true, self.snapshot.clone(), self.log.clone())
            } else {
                let pos = self.log.iter().position(|(z, _)| *z == f_last).expect("checked");
                (false, None, self.log[pos + 1..].to_vec())
            };
        // Remember how far this follower will be once it applies the sync:
        // its eventual AckSync covers exactly this prefix, nothing later.
        if let Some(ls) = self.leader_state.as_mut() {
            ls.sync_points.insert(from, my_last);
        }
        // A snapshot blob above the chunking threshold is streamed ahead of
        // the SyncLog as fixed-size SnapChunk frames; the SyncLog then
        // carries `snap_chunks` instead of the inline blob, and the follower
        // refuses to apply it unless the full verified stream arrived.
        let mut snapshot = snapshot;
        let mut snap_chunks = 0u32;
        if let Some((snap_z, blob)) = &snapshot {
            let cap = self.zcfg.snap_chunk_bytes;
            if cap > 0 && blob.len() > cap {
                let total = blob.len().div_ceil(cap) as u32;
                let crc = dufs_net::crc32(blob);
                for (seq, part) in blob.chunks(cap).enumerate() {
                    out.push(ZabAction::Send {
                        to: from,
                        msg: ZabMsg::SnapChunk {
                            epoch,
                            zxid: *snap_z,
                            seq: seq as u32,
                            total,
                            crc,
                            data: Bytes::copy_from_slice(part),
                        },
                    });
                }
                snap_chunks = total;
                snapshot = None;
            }
        }
        out.push(ZabAction::Send {
            to: from,
            msg: ZabMsg::SyncLog {
                epoch,
                snapshot,
                entries,
                commit_to: self.committed,
                reset,
                snap_chunks,
            },
        });
    }

    fn log_contains(&self, zxid: Zxid) -> bool {
        self.log.binary_search_by_key(&zxid, |(z, _)| *z).is_ok()
    }

    #[allow(clippy::too_many_arguments)]
    fn on_sync_log(
        &mut self,
        from: PeerId,
        epoch: u32,
        snapshot: Option<(Zxid, Bytes)>,
        entries: Vec<(Zxid, T)>,
        commit_to: Zxid,
        reset: bool,
        snap_chunks: u32,
        out: &mut Vec<ZabAction<T>>,
    ) {
        let Role::Following { leader, .. } = self.role else { return };
        if leader != from || epoch < self.accepted_epoch {
            return;
        }
        // A chunk-streamed snapshot: substitute the assembled (and already
        // CRC-verified) buffer for the missing inline blob. If the stream
        // never completed — chunks lost on a flapping link, or we joined it
        // mid-transfer — applying the SyncLog anyway would install a hole in
        // our history, so re-request the whole sync instead of acking.
        let snapshot = if snap_chunks > 0 {
            debug_assert!(snapshot.is_none(), "chunked sync carries no inline snapshot");
            match self.pending_snap.take() {
                Some(p) if p.epoch == epoch && p.total == snap_chunks && p.complete() => {
                    Some((p.zxid, Bytes::from(p.data)))
                }
                _ => {
                    self.request_resync(from, out);
                    return;
                }
            }
        } else {
            self.pending_snap = None; // any buffered stream is now stale
            snapshot
        };
        let epoch_advanced = epoch != self.accepted_epoch;
        self.accepted_epoch = epoch;
        self.max_seen_epoch = self.max_seen_epoch.max(epoch);
        self.heard_from_leader = true;
        if reset {
            self.log.clear();
            self.applied_idx = 0;
            match snapshot {
                Some((z, blob)) => {
                    self.committed = z;
                    self.snapshot = Some((z, blob.clone()));
                    out.push(ZabAction::RestoreSnapshot { zxid: z, blob });
                }
                None => {
                    self.committed = Zxid::ZERO;
                    self.snapshot = None;
                    out.push(ZabAction::ResetState);
                }
            }
        }
        let mut appended = Vec::new();
        for (z, t) in entries {
            if z > self.last_zxid() {
                self.log.push((z, t.clone()));
                appended.push((z, t));
            }
        }
        // Durability before the AckSync below: on reset the whole
        // replacement history is re-logged under the new regime; otherwise
        // the appended suffix (and the epoch promise, if it advanced).
        if reset {
            out.push(ZabAction::Persist(PersistEvent::Reset {
                epoch,
                snapshot: self.snapshot.clone(),
                entries: self.log.clone(),
            }));
        } else {
            if epoch_advanced {
                out.push(ZabAction::Persist(PersistEvent::Epoch(epoch)));
            }
            if !appended.is_empty() {
                out.push(ZabAction::Persist(PersistEvent::Append { entries: appended }));
            }
        }
        self.committed = self.committed.max(commit_to.min(self.last_zxid()));
        self.deliver_pending(out);
        self.role = Role::Following { leader, synced: true };
        out.push(ZabAction::Send { to: from, msg: ZabMsg::AckSync { epoch } });
        out.push(ZabAction::BecameFollower { leader, epoch });
        self.arm_watchdog(out);
    }

    /// Follower side of a chunked SNAP transfer: chunks must arrive in
    /// strict `seq` order with consistent metadata; the final chunk triggers
    /// the whole-blob CRC check (the "digest frame"). Any gap, mismatch, or
    /// digest failure discards the buffer and re-requests the sync — that
    /// is also how a follower that joined mid-stream (first chunk seen has
    /// `seq > 0`) recovers.
    #[allow(clippy::too_many_arguments)]
    fn on_snap_chunk(
        &mut self,
        from: PeerId,
        epoch: u32,
        zxid: Zxid,
        seq: u32,
        total: u32,
        crc: u32,
        data: Bytes,
        out: &mut Vec<ZabAction<T>>,
    ) {
        let Role::Following { leader, .. } = self.role else { return };
        if leader != from || epoch < self.accepted_epoch || total == 0 {
            return;
        }
        self.heard_from_leader = true;
        if seq == 0 {
            self.pending_snap =
                Some(PendingSnap { epoch, zxid, total, crc, next_seq: 0, data: Vec::new() });
        }
        let ok = match self.pending_snap.as_mut() {
            Some(p)
                if p.epoch == epoch
                    && p.zxid == zxid
                    && p.total == total
                    && p.crc == crc
                    && p.next_seq == seq =>
            {
                p.data.extend_from_slice(&data);
                p.next_seq += 1;
                // Final chunk doubles as the digest frame: verify the
                // assembled blob before the closing SyncLog trusts it.
                !p.complete() || dufs_net::crc32(&p.data) == crc
            }
            _ => false,
        };
        if !ok {
            self.pending_snap = None;
            self.request_resync(from, out);
        }
    }

    /// Drop back to unsynced and re-run the FollowerInfo handshake with the
    /// current leader (a sync transfer arrived damaged or incomplete).
    fn request_resync(&mut self, leader: PeerId, out: &mut Vec<ZabAction<T>>) {
        self.role = Role::Following { leader, synced: false };
        out.push(ZabAction::Send {
            to: leader,
            msg: ZabMsg::FollowerInfo {
                last_zxid: self.last_zxid(),
                accepted_epoch: self.accepted_epoch,
            },
        });
    }

    fn on_ack_sync(&mut self, from: PeerId, epoch: u32, out: &mut Vec<ZabAction<T>>) {
        let Role::Leading { established } = self.role else { return };
        let quorum = self.config.quorum();
        let ls = self.leader_state.as_mut().expect("leader state");
        if epoch != ls.epoch {
            // A leftover ack from one of our previous regimes: the follower
            // has not synced into *this* epoch and must not receive its
            // broadcast stream.
            return;
        }
        ls.synced.insert(from);
        if self.config.is_observer(from) {
            // Observers receive the broadcast stream but contribute nothing
            // to establishment or commit quorums.
            return;
        }
        // A freshly synced follower has implicitly acknowledged exactly the
        // prefix its SyncLog contained — proposals made after that snapshot
        // never reached it and MUST NOT be counted (counting them lets a
        // leader commit an entry that exists on no quorum).
        let sync_point = ls.sync_points.get(&from).copied().unwrap_or(Zxid::ZERO);
        for (zxid, ackers) in ls.acks.iter_mut() {
            if *zxid <= sync_point {
                ackers.insert(from);
            }
        }
        let synced_voters = ls.synced.iter().filter(|p| self.config.contains(**p)).count();
        if !established && synced_voters >= quorum {
            self.establish(out);
        }
        self.try_advance_commit(out);
    }

    // ------------------------------------------------------------------
    // Broadcast
    // ------------------------------------------------------------------

    fn on_propose(&mut self, from: PeerId, zxid: Zxid, txns: Vec<T>, out: &mut Vec<ZabAction<T>>) {
        let Role::Following { leader, synced } = self.role else { return };
        if leader != from || !synced || txns.is_empty() {
            return;
        }
        self.heard_from_leader = true;
        let expected = self.last_zxid();
        let last = Zxid::new(zxid.epoch(), zxid.counter() + txns.len() as u32 - 1);
        if last <= expected {
            return; // duplicate batch
        }
        // Continuity, checked on the batch's FIRST zxid: within an epoch,
        // counters must advance by one; the first proposal we see from a
        // newer epoch must be that epoch's counter 1 (anything else means
        // we missed its earlier entries). Batches are appended atomically,
        // so our tail is always batch-aligned and a partially overlapping
        // batch fails this check into the resync path.
        let continuous = if zxid.epoch() == expected.epoch() {
            expected == Zxid::ZERO || zxid.counter() == expected.counter() + 1
        } else {
            zxid.counter() == 1
        };
        if !continuous || zxid.epoch() != self.accepted_epoch {
            // Gap, or traffic from an epoch we never promised: resync.
            self.role = Role::Following { leader, synced: false };
            out.push(ZabAction::Send {
                to: leader,
                msg: ZabMsg::FollowerInfo {
                    last_zxid: expected,
                    accepted_epoch: self.accepted_epoch,
                },
            });
            return;
        }
        let appended: Vec<(Zxid, T)> = txns
            .into_iter()
            .enumerate()
            .map(|(i, t)| (Zxid::new(zxid.epoch(), zxid.counter() + i as u32), t))
            .collect();
        self.log.extend(appended.iter().cloned());
        // Persist-before-ack: the ack promises this batch survives a crash.
        out.push(ZabAction::Persist(PersistEvent::Append { entries: appended }));
        // One ack (of the batch's last zxid) covers the whole range.
        out.push(ZabAction::Send { to: from, msg: ZabMsg::Ack { zxid: last } });
    }

    fn on_ack(&mut self, from: PeerId, zxid: Zxid, out: &mut Vec<ZabAction<T>>) {
        if !matches!(self.role, Role::Leading { .. }) {
            return;
        }
        if self.config.is_observer(from) {
            return; // observers never contribute to commit quorums
        }
        let ls = self.leader_state.as_mut().expect("leader state");
        if let Some(ackers) = ls.acks.get_mut(&zxid) {
            ackers.insert(from);
        }
        self.try_advance_commit(out);
    }

    fn try_advance_commit(&mut self, out: &mut Vec<ZabAction<T>>) {
        if !self.is_established_leader() {
            return;
        }
        let quorum = self.config.quorum();
        let ls = self.leader_state.as_mut().expect("leader state");
        let mut new_commit = self.committed;
        while let Some((&zxid, ackers)) = ls.acks.first_key_value() {
            // +1: the leader's own (implicit) ack.
            if ackers.len() + 1 >= quorum {
                new_commit = zxid;
                ls.acks.pop_first();
            } else {
                break;
            }
        }
        if new_commit > self.committed {
            let old_commit = self.committed;
            self.committed = new_commit;
            let mut targets: Vec<PeerId> =
                ls.synced.iter().copied().filter(|&p| p != self.id).collect();
            targets.sort_unstable(); // deterministic send order
                                     // Newly committed entries, for observer INFORMs.
            let informed: Vec<(Zxid, T)> = self
                .log
                .iter()
                .filter(|(z, _)| *z > old_commit && *z <= new_commit)
                .cloned()
                .collect();
            // Newly committed entries are contiguous within the leader's
            // epoch (establishment committed everything earlier before any
            // observer synced), so one batched INFORM covers them all.
            let inform_first = informed.first().map(|(z, _)| *z);
            let inform_txns: Vec<T> = informed.into_iter().map(|(_, t)| t).collect();
            for p in targets {
                if self.config.is_observer(p) {
                    if let Some(first) = inform_first {
                        out.push(ZabAction::Send {
                            to: p,
                            msg: ZabMsg::Inform { zxid: first, txns: inform_txns.clone() },
                        });
                    }
                } else {
                    out.push(ZabAction::Send { to: p, msg: ZabMsg::Commit { zxid: new_commit } });
                }
            }
            self.deliver_pending(out);
        }
    }

    fn on_commit(&mut self, from: PeerId, zxid: Zxid, out: &mut Vec<ZabAction<T>>) {
        let Role::Following { leader, synced } = self.role else { return };
        if leader != from || !synced {
            return;
        }
        self.heard_from_leader = true;
        if zxid > self.last_zxid() {
            // Commit for an entry we never logged: our pipe lost something.
            self.role = Role::Following { leader, synced: false };
            out.push(ZabAction::Send {
                to: leader,
                msg: ZabMsg::FollowerInfo {
                    last_zxid: self.last_zxid(),
                    accepted_epoch: self.accepted_epoch,
                },
            });
            return;
        }
        if zxid > self.committed {
            self.committed = zxid;
            self.deliver_pending(out);
        }
    }

    /// Observer-side INFORM: append the committed batch and deliver it.
    /// Continuity rules mirror `on_propose`; a gap triggers resync. Unlike
    /// proposals, an INFORM range can reach back before our sync point
    /// (sync ships the leader's *log*, including then-uncommitted entries,
    /// while informs start after the old commit watermark), so the prefix
    /// we already hold is trimmed rather than treated as a gap.
    fn on_inform(
        &mut self,
        from: PeerId,
        zxid: Zxid,
        mut txns: Vec<T>,
        out: &mut Vec<ZabAction<T>>,
    ) {
        let Role::Following { leader, synced } = self.role else { return };
        if leader != from || !synced || !self.is_observer || txns.is_empty() {
            return;
        }
        self.heard_from_leader = true;
        let expected = self.last_zxid();
        let last = Zxid::new(zxid.epoch(), zxid.counter() + txns.len() as u32 - 1);
        if last <= expected {
            return; // everything already held: duplicate
        }
        let mut first = zxid;
        if zxid.epoch() == expected.epoch() && zxid <= expected {
            let skip = (expected.counter() - zxid.counter() + 1) as usize;
            txns.drain(..skip);
            first = Zxid::new(expected.epoch(), expected.counter() + 1);
        }
        let continuous = if first.epoch() == expected.epoch() {
            expected == Zxid::ZERO || first.counter() == expected.counter() + 1
        } else {
            first.counter() == 1
        };
        if !continuous || first.epoch() != self.accepted_epoch {
            self.role = Role::Following { leader, synced: false };
            out.push(ZabAction::Send {
                to: leader,
                msg: ZabMsg::FollowerInfo {
                    last_zxid: expected,
                    accepted_epoch: self.accepted_epoch,
                },
            });
            return;
        }
        let appended: Vec<(Zxid, T)> = txns
            .into_iter()
            .enumerate()
            .map(|(i, t)| (Zxid::new(first.epoch(), first.counter() + i as u32), t))
            .collect();
        self.log.extend(appended.iter().cloned());
        out.push(ZabAction::Persist(PersistEvent::Append { entries: appended }));
        self.committed = last;
        self.deliver_pending(out);
    }

    fn deliver_pending(&mut self, out: &mut Vec<ZabAction<T>>) {
        while self.applied_idx < self.log.len() {
            let (z, t) = &self.log[self.applied_idx];
            if *z > self.committed {
                break;
            }
            out.push(ZabAction::Deliver { zxid: *z, txn: t.clone() });
            self.applied_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type P = ZabPeer<u32>;

    fn single() -> (P, Vec<ZabAction<u32>>) {
        ZabPeer::new(PeerId(0), EnsembleConfig::of_size(1))
    }

    #[test]
    fn single_peer_leads_immediately() {
        let (p, acts) = single();
        assert!(p.is_established_leader());
        // First epoch of peer 0: base 1 composed with the id low byte.
        assert!(acts.iter().any(|a| matches!(a, ZabAction::BecameLeader { epoch: 256 })));
    }

    #[test]
    fn single_peer_commits_immediately() {
        let (mut p, _) = single();
        let acts = p.propose(42).unwrap();
        assert!(acts.iter().any(|a| matches!(a, ZabAction::Deliver { txn: 42, .. })));
        assert_eq!(p.committed(), Zxid::new(256, 1));
        let acts = p.propose(43).unwrap();
        assert!(acts.iter().any(|a| matches!(a, ZabAction::Deliver { txn: 43, .. })));
    }

    #[test]
    fn non_leader_rejects_proposals() {
        let (mut p, _) = ZabPeer::<u32>::new(PeerId(0), EnsembleConfig::of_size(3));
        assert_eq!(p.propose(1).unwrap_err(), NotLeader { leader_hint: None });
    }

    #[test]
    fn startup_broadcasts_votes() {
        let (_, acts) = ZabPeer::<u32>::new(PeerId(1), EnsembleConfig::of_size(3));
        let sends = acts
            .iter()
            .filter(|a| matches!(a, ZabAction::Send { msg: ZabMsg::Notification { .. }, .. }))
            .count();
        assert_eq!(sends, 2, "one notification per other peer");
        assert!(acts.iter().any(|a| matches!(a, ZabAction::StartedElection)));
    }

    #[test]
    fn adopts_better_vote() {
        let (mut p, _) = ZabPeer::<u32>::new(PeerId(0), EnsembleConfig::of_size(3));
        let better = Vote { candidate: PeerId(2), candidate_zxid: Zxid::new(1, 5), round: 1 };
        let acts =
            p.on_message(PeerId(2), ZabMsg::Notification { vote: better, established: None });
        // Re-broadcasts the adopted vote.
        let rebroadcast = acts.iter().any(|a| {
            matches!(a, ZabAction::Send { msg: ZabMsg::Notification { vote, .. }, .. }
                if vote.candidate == PeerId(2))
        });
        assert!(rebroadcast);
    }

    #[test]
    fn quorum_of_votes_elects_self() {
        // Peer 2 has the highest id; votes from 0 and 1 for candidate 2 give
        // it a quorum (2 of 3 + own vote).
        let (mut p, _) = ZabPeer::<u32>::new(PeerId(2), EnsembleConfig::of_size(3));
        let v = Vote { candidate: PeerId(2), candidate_zxid: Zxid::ZERO, round: 1 };
        let acts = p.on_message(PeerId(0), ZabMsg::Notification { vote: v, established: None });
        assert!(
            matches!(p.role(), Role::Leading { .. }),
            "role={:?} acts={}",
            p.role(),
            acts.len()
        );
    }

    #[test]
    fn established_peer_redirects_new_joiner() {
        let (mut leader, _) = single();
        // A notification arrives from a peer outside the ensemble: ignored.
        let v = Vote { candidate: PeerId(5), candidate_zxid: Zxid::ZERO, round: 1 };
        assert!(leader
            .on_message(PeerId(5), ZabMsg::Notification { vote: v, established: None })
            .is_empty());
    }

    #[test]
    fn crash_preserves_log_and_commit() {
        let (mut p, _) = single();
        p.propose(7).unwrap();
        let committed = p.committed();
        p.on_crash();
        assert_eq!(p.log_len(), 1);
        assert_eq!(p.committed(), committed);
        assert_eq!(p.role(), Role::Looking);
        let acts = p.on_restart();
        // Replays the committed entry into the state machine.
        assert!(acts.iter().any(|a| matches!(a, ZabAction::ResetState)));
        assert!(acts.iter().any(|a| matches!(a, ZabAction::Deliver { txn: 7, .. })));
        // Single-node ensemble: leads again with a higher epoch.
        assert!(p.is_established_leader());
        assert_eq!(p.epoch(), 512, "epoch base advanced, id preserved in the low byte");
    }

    #[test]
    fn follower_acks_in_order_proposals_and_rejects_gaps() {
        let cfg = EnsembleConfig::of_size(3);
        let (mut f, _) = ZabPeer::<u32>::new(PeerId(0), cfg);
        // Manually join a leader and sync an empty log.
        let leader = PeerId(2);
        let v = Vote { candidate: leader, candidate_zxid: Zxid::ZERO, round: 1 };
        f.on_message(PeerId(1), ZabMsg::Notification { vote: v, established: Some(leader) });
        assert_eq!(f.role(), Role::Following { leader, synced: false });
        f.on_message(
            leader,
            ZabMsg::SyncLog {
                epoch: 1,
                snapshot: None,
                entries: vec![],
                commit_to: Zxid::ZERO,
                reset: false,
                snap_chunks: 0,
            },
        );
        assert_eq!(f.role(), Role::Following { leader, synced: true });

        let acts = f.on_message(leader, ZabMsg::Propose { zxid: Zxid::new(1, 1), txns: vec![10] });
        assert!(acts.iter().any(|a| matches!(a, ZabAction::Send { msg: ZabMsg::Ack { .. }, .. })));
        // A gap (skip 1:2, get 1:3) triggers a resync request.
        let acts = f.on_message(leader, ZabMsg::Propose { zxid: Zxid::new(1, 3), txns: vec![30] });
        assert!(acts
            .iter()
            .any(|a| matches!(a, ZabAction::Send { msg: ZabMsg::FollowerInfo { .. }, .. })));
        assert_eq!(f.role(), Role::Following { leader, synced: false });
    }

    #[test]
    fn follower_delivers_on_commit_in_order() {
        let cfg = EnsembleConfig::of_size(3);
        let (mut f, _) = ZabPeer::<u32>::new(PeerId(0), cfg);
        let leader = PeerId(2);
        let v = Vote { candidate: leader, candidate_zxid: Zxid::ZERO, round: 1 };
        f.on_message(PeerId(1), ZabMsg::Notification { vote: v, established: Some(leader) });
        f.on_message(
            leader,
            ZabMsg::SyncLog {
                epoch: 1,
                snapshot: None,
                entries: vec![],
                commit_to: Zxid::ZERO,
                reset: false,
                snap_chunks: 0,
            },
        );
        f.on_message(leader, ZabMsg::Propose { zxid: Zxid::new(1, 1), txns: vec![10] });
        f.on_message(leader, ZabMsg::Propose { zxid: Zxid::new(1, 2), txns: vec![20] });
        let acts = f.on_message(leader, ZabMsg::Commit { zxid: Zxid::new(1, 2) });
        let delivered: Vec<u32> = acts
            .iter()
            .filter_map(|a| match a {
                ZabAction::Deliver { txn, .. } => Some(*txn),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![10, 20]);
    }

    #[test]
    fn watchdog_without_leader_contact_restarts_election() {
        let cfg = EnsembleConfig::of_size(3);
        let (mut f, _) = ZabPeer::<u32>::new(PeerId(0), cfg);
        let leader = PeerId(2);
        let v = Vote { candidate: leader, candidate_zxid: Zxid::ZERO, round: 1 };
        f.on_message(PeerId(1), ZabMsg::Notification { vote: v, established: Some(leader) });
        f.on_message(
            leader,
            ZabMsg::SyncLog {
                epoch: 1,
                snapshot: None,
                entries: vec![],
                commit_to: Zxid::ZERO,
                reset: false,
                snap_chunks: 0,
            },
        );
        // Generations: join armed gen 1, sync armed gen 2. A stale fire
        // (the duplicate from the join) must be a no-op.
        assert!(f.on_timer(ZabTimer::FollowerWatchdog(1)).is_empty(), "stale gen ignored");
        // First live watchdog: we heard from the leader (the sync); rearm
        // as gen 3.
        let acts = f.on_timer(ZabTimer::FollowerWatchdog(2));
        assert!(acts.iter().any(|a| matches!(
            a,
            ZabAction::SetTimer { timer: ZabTimer::FollowerWatchdog(3), .. }
        )));
        // Second live watchdog with silence: election.
        let acts = f.on_timer(ZabTimer::FollowerWatchdog(3));
        assert!(acts.iter().any(|a| matches!(a, ZabAction::StartedElection)));
        assert_eq!(f.role(), Role::Looking);
    }

    #[test]
    fn observer_never_votes_or_leads() {
        let cfg = EnsembleConfig::with_observers(1, 1);
        let (obs, acts) = ZabPeer::<u32>::new(PeerId(1), cfg.clone());
        assert!(obs.is_observer());
        assert_eq!(obs.role(), Role::Looking);
        assert!(
            !acts.iter().any(|a| matches!(a, ZabAction::BecameLeader { .. })),
            "observers never lead"
        );
        // A voter in a Looking state must not tally the observer's probe.
        let (mut voter, _) = ZabPeer::<u32>::new(PeerId(0), EnsembleConfig::with_observers(3, 1));
        let probe = Vote { candidate: PeerId(3), candidate_zxid: Zxid::ZERO, round: 1 };
        let acts =
            voter.on_message(PeerId(3), ZabMsg::Notification { vote: probe, established: None });
        assert_eq!(voter.role(), Role::Looking, "a probe is not a vote");
        assert!(acts.is_empty(), "unsettled voters stay silent to observers");
    }

    #[test]
    fn observer_joins_and_receives_informs() {
        let cfg = EnsembleConfig::with_observers(1, 1);
        // Peer 0 is the (single-voter) leader.
        let (mut leader, _) = ZabPeer::<u32>::new(PeerId(0), cfg.clone());
        assert!(leader.is_established_leader());
        let (mut obs, _) = ZabPeer::<u32>::new(PeerId(1), cfg);
        // Observer probes; leader replies with its establishment.
        let probe = Vote { candidate: PeerId(1), candidate_zxid: Zxid::ZERO, round: 1 };
        let reply =
            leader.on_message(PeerId(1), ZabMsg::Notification { vote: probe, established: None });
        let ZabAction::Send { msg: ZabMsg::Notification { vote, established }, .. } = &reply[0]
        else {
            panic!("expected a status reply, got {reply:?}");
        };
        // Observer joins and syncs.
        let acts = obs
            .on_message(PeerId(0), ZabMsg::Notification { vote: *vote, established: *established });
        assert!(acts
            .iter()
            .any(|a| matches!(a, ZabAction::Send { msg: ZabMsg::FollowerInfo { .. }, .. })));
        let fi_reply = leader.on_message(
            PeerId(1),
            ZabMsg::FollowerInfo { last_zxid: Zxid::ZERO, accepted_epoch: 0 },
        );
        let ZabAction::Send { msg: sync, .. } = &fi_reply[0] else { panic!() };
        obs.on_message(PeerId(0), sync.clone());
        assert_eq!(obs.role(), Role::Following { leader: PeerId(0), synced: true });
        leader.on_message(PeerId(1), ZabMsg::AckSync { epoch: leader.epoch() });

        // A proposal reaches the observer as a single INFORM.
        let acts = leader.propose(42).unwrap();
        let informs: Vec<_> = acts
            .iter()
            .filter(|a| matches!(a, ZabAction::Send { to: PeerId(1), msg: ZabMsg::Inform { .. } }))
            .collect();
        let proposes = acts
            .iter()
            .filter(|a| matches!(a, ZabAction::Send { msg: ZabMsg::Propose { .. }, .. }))
            .count();
        assert_eq!(informs.len(), 1, "exactly one INFORM per commit: {acts:?}");
        assert_eq!(proposes, 0, "observers get no propose/ack round");
        // And the observer applies it.
        let ZabAction::Send { msg, .. } = informs[0] else { unreachable!() };
        let acts = obs.on_message(PeerId(0), msg.clone());
        assert!(acts.iter().any(|a| matches!(a, ZabAction::Deliver { txn: 42, .. })));
    }

    #[test]
    fn compacted_leader_ships_snapshot_to_lagging_follower() {
        use bytes::Bytes;
        let (mut l, _) = single();
        for i in 0..5 {
            l.propose(i).unwrap();
        }
        l.install_snapshot(Zxid::new(256, 3), Bytes::from_static(b"checkpoint"));
        assert_eq!(l.compacted_log_len(), 2, "entries 1-3 compacted away");
        assert_eq!(l.last_zxid(), Zxid::new(256, 5));
        // A from-scratch follower can no longer get a plain suffix.
        let acts = l.on_message(
            PeerId(1),
            ZabMsg::FollowerInfo { last_zxid: Zxid::ZERO, accepted_epoch: 0 },
        );
        match &acts[0] {
            ZabAction::Send { msg: ZabMsg::SyncLog { snapshot, entries, reset, .. }, .. } => {
                assert!(reset);
                let (z, blob) = snapshot.as_ref().expect("snapshot shipped");
                assert_eq!(*z, Zxid::new(256, 3));
                assert_eq!(&blob[..], b"checkpoint");
                assert_eq!(entries.len(), 2, "plus the uncompacted tail");
            }
            other => panic!("expected snapshot SyncLog, got {other:?}"),
        }
        // A follower exactly at the snapshot point gets just the suffix.
        let acts = l.on_message(
            PeerId(1),
            ZabMsg::FollowerInfo { last_zxid: Zxid::new(256, 3), accepted_epoch: 256 },
        );
        match &acts[0] {
            ZabAction::Send { msg: ZabMsg::SyncLog { snapshot, entries, reset, .. }, .. } => {
                assert!(!reset);
                assert!(snapshot.is_none());
                assert_eq!(entries.len(), 2);
            }
            other => panic!("expected suffix SyncLog, got {other:?}"),
        }
    }

    #[test]
    fn follower_restores_from_snapshot_sync() {
        use bytes::Bytes;
        let cfg = EnsembleConfig::of_size(3);
        let (mut f, _) = ZabPeer::<u32>::new(PeerId(0), cfg);
        let leader = PeerId(2);
        let v = Vote { candidate: leader, candidate_zxid: Zxid::ZERO, round: 1 };
        f.on_message(PeerId(1), ZabMsg::Notification { vote: v, established: Some(leader) });
        let acts = f.on_message(
            leader,
            ZabMsg::SyncLog {
                epoch: 514,
                snapshot: Some((Zxid::new(514, 7), Bytes::from_static(b"state"))),
                entries: vec![(Zxid::new(514, 8), 42)],
                commit_to: Zxid::new(514, 8),
                reset: true,
                snap_chunks: 0,
            },
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            ZabAction::RestoreSnapshot { zxid, .. } if *zxid == Zxid::new(514, 7)
        )));
        assert!(acts.iter().any(|a| matches!(a, ZabAction::Deliver { txn: 42, .. })));
        assert_eq!(f.committed(), Zxid::new(514, 8));
        assert_eq!(f.snapshot_zxid(), Zxid::new(514, 7), "follower keeps the snapshot");
        // After a crash+restart the follower replays from its snapshot.
        f.on_crash();
        let acts = f.on_restart();
        assert!(acts.iter().any(|a| matches!(a, ZabAction::RestoreSnapshot { .. })));
        assert!(acts.iter().any(|a| matches!(a, ZabAction::Deliver { txn: 42, .. })));
    }

    /// A follower of `leader` that has adopted it via an established hint
    /// but not yet synced (for driving sync transfers by hand).
    fn adopted_follower(leader: PeerId) -> P {
        let (mut f, _) = ZabPeer::<u32>::new(PeerId(1), EnsembleConfig::of_size(3));
        let v = Vote { candidate: leader, candidate_zxid: Zxid::ZERO, round: 1 };
        f.on_message(PeerId(2), ZabMsg::Notification { vote: v, established: Some(leader) });
        assert_eq!(f.role(), Role::Following { leader, synced: false });
        f
    }

    #[test]
    fn large_snapshot_streams_in_chunks_and_follower_assembles() {
        use bytes::Bytes;
        let zcfg = ZabConfig::default().with_snap_chunk_bytes(8);
        let (mut l, _) = ZabPeer::new_with_config(PeerId(0), EnsembleConfig::of_size(1), zcfg);
        for i in 0..5 {
            l.propose(i).unwrap();
        }
        let blob: Vec<u8> = (0..20u8).collect(); // 20 bytes -> 3 chunks of <= 8
        l.install_snapshot(Zxid::new(256, 3), Bytes::from(blob.clone()));
        let acts = l.on_message(
            PeerId(1),
            ZabMsg::FollowerInfo { last_zxid: Zxid::ZERO, accepted_epoch: 0 },
        );
        let msgs: Vec<_> = acts
            .iter()
            .filter_map(|a| match a {
                ZabAction::Send { to: PeerId(1), msg } => Some(msg.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(msgs.len(), 4, "3 chunks + closing SyncLog: {msgs:?}");
        for (i, m) in msgs[..3].iter().enumerate() {
            match m {
                ZabMsg::SnapChunk { seq, total, zxid, data, .. } => {
                    assert_eq!(*seq, i as u32);
                    assert_eq!(*total, 3);
                    assert_eq!(*zxid, Zxid::new(256, 3));
                    assert_eq!(data.len(), if i < 2 { 8 } else { 4 });
                }
                other => panic!("expected SnapChunk, got {other:?}"),
            }
        }
        match &msgs[3] {
            ZabMsg::SyncLog { snapshot, reset, snap_chunks, .. } => {
                assert!(snapshot.is_none(), "blob travelled as chunks, not inline");
                assert!(reset);
                assert_eq!(*snap_chunks, 3);
            }
            other => panic!("expected closing SyncLog, got {other:?}"),
        }

        // The follower assembles the stream and installs the full blob.
        let mut f = adopted_follower(PeerId(0));
        let mut all = Vec::new();
        for m in msgs {
            all.extend(f.on_message(PeerId(0), m));
        }
        assert!(all.iter().any(|a| matches!(
            a,
            ZabAction::RestoreSnapshot { zxid, blob: b }
                if *zxid == Zxid::new(256, 3) && b[..] == blob[..]
        )));
        assert!(all
            .iter()
            .any(|a| matches!(a, ZabAction::Send { msg: ZabMsg::AckSync { .. }, .. })));
        assert_eq!(f.role(), Role::Following { leader: PeerId(0), synced: true });
        assert_eq!(f.snapshot_zxid(), Zxid::new(256, 3));
    }

    #[test]
    fn follower_joining_mid_stream_rerequests_sync() {
        use bytes::Bytes;
        let leader = PeerId(0);
        let mut f = adopted_follower(leader);
        let crc = dufs_net::crc32(&[1, 2, 3, 4]);
        // First chunk seen is seq 1: the start of the stream was missed.
        let acts = f.on_message(
            leader,
            ZabMsg::SnapChunk {
                epoch: 256,
                zxid: Zxid::new(256, 2),
                seq: 1,
                total: 2,
                crc,
                data: Bytes::from_static(&[3, 4]),
            },
        );
        assert!(
            acts.iter()
                .any(|a| matches!(a, ZabAction::Send { msg: ZabMsg::FollowerInfo { .. }, .. })),
            "mid-stream join must re-request the sync: {acts:?}"
        );
        // The leader re-sends from the top; this time the stream completes.
        for (seq, part) in [&[1u8, 2][..], &[3, 4][..]].iter().enumerate() {
            let acts = f.on_message(
                leader,
                ZabMsg::SnapChunk {
                    epoch: 256,
                    zxid: Zxid::new(256, 2),
                    seq: seq as u32,
                    total: 2,
                    crc,
                    data: Bytes::copy_from_slice(part),
                },
            );
            assert!(acts.is_empty(), "clean chunks produce no actions: {acts:?}");
        }
        let acts = f.on_message(
            leader,
            ZabMsg::SyncLog {
                epoch: 256,
                snapshot: None,
                entries: vec![],
                commit_to: Zxid::new(256, 2),
                reset: true,
                snap_chunks: 2,
            },
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            ZabAction::RestoreSnapshot { blob, .. } if blob[..] == [1, 2, 3, 4]
        )));
        assert_eq!(f.role(), Role::Following { leader, synced: true });
    }

    #[test]
    fn corrupt_or_incomplete_chunk_stream_never_applies() {
        use bytes::Bytes;
        let leader = PeerId(0);
        let mut f = adopted_follower(leader);
        let crc = dufs_net::crc32(&[1, 2, 3, 4]);
        f.on_message(
            leader,
            ZabMsg::SnapChunk {
                epoch: 256,
                zxid: Zxid::new(256, 2),
                seq: 0,
                total: 2,
                crc,
                data: Bytes::from_static(&[1, 2]),
            },
        );
        // Final chunk carries damaged bytes: the digest check must reject
        // the assembled blob and re-request the sync.
        let acts = f.on_message(
            leader,
            ZabMsg::SnapChunk {
                epoch: 256,
                zxid: Zxid::new(256, 2),
                seq: 1,
                total: 2,
                crc,
                data: Bytes::from_static(&[3, 9]),
            },
        );
        assert!(
            acts.iter()
                .any(|a| matches!(a, ZabAction::Send { msg: ZabMsg::FollowerInfo { .. }, .. })),
            "digest mismatch must re-request: {acts:?}"
        );
        // The closing SyncLog finds no assembled snapshot: it must NOT be
        // applied as a plain reset (that would install a hole); instead the
        // follower stays unsynced and asks again.
        let acts = f.on_message(
            leader,
            ZabMsg::SyncLog {
                epoch: 256,
                snapshot: None,
                entries: vec![],
                commit_to: Zxid::new(256, 2),
                reset: true,
                snap_chunks: 2,
            },
        );
        assert!(!acts
            .iter()
            .any(|a| matches!(a, ZabAction::ResetState | ZabAction::RestoreSnapshot { .. })));
        assert!(!acts
            .iter()
            .any(|a| matches!(a, ZabAction::Send { msg: ZabMsg::AckSync { .. }, .. })));
        assert!(acts
            .iter()
            .any(|a| matches!(a, ZabAction::Send { msg: ZabMsg::FollowerInfo { .. }, .. })));
        assert_eq!(f.role(), Role::Following { leader, synced: false });
    }

    #[test]
    fn install_snapshot_is_bounded_by_commit() {
        let (mut l, _) = single();
        l.propose(1).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            l.install_snapshot(Zxid::new(256, 9), bytes::Bytes::new())
        }));
        assert!(result.is_err(), "checkpointing past the commit watermark must panic");
    }

    #[test]
    fn leader_sends_suffix_sync_to_lagging_follower() {
        let (mut l, _) = single();
        l.propose(1).unwrap();
        l.propose(2).unwrap();
        l.propose(3).unwrap();
        // Simulate an out-of-ensemble question — use a 3-peer leader instead.
        // Rebuild as 3-peer: craft state by hand is messy; instead verify the
        // sync decision logic via a 1-peer leader answering FollowerInfo.
        // (Membership checks are on notifications, not FollowerInfo.)
        let acts = l.on_message(
            PeerId(1),
            ZabMsg::FollowerInfo { last_zxid: Zxid::new(256, 1), accepted_epoch: 256 },
        );
        match &acts[0] {
            ZabAction::Send { msg: ZabMsg::SyncLog { entries, reset, commit_to, .. }, .. } => {
                assert!(!reset);
                assert_eq!(entries.len(), 2, "only the missing suffix");
                assert_eq!(*commit_to, Zxid::new(256, 3));
            }
            other => panic!("expected SyncLog, got {other:?}"),
        }
        // A follower claiming a zxid we never issued gets a full reset.
        let acts = l.on_message(
            PeerId(1),
            ZabMsg::FollowerInfo { last_zxid: Zxid::new(9, 9), accepted_epoch: 9 },
        );
        match &acts[0] {
            ZabAction::Send { msg: ZabMsg::SyncLog { entries, reset, .. }, .. } => {
                assert!(reset);
                assert_eq!(entries.len(), 3, "the full authoritative history");
            }
            other => panic!("expected SyncLog, got {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Group commit
    // ------------------------------------------------------------------

    /// Attach a pseudo-follower to a single-voter leader so the broadcast
    /// traffic becomes visible (membership is only checked on votes; the
    /// quorum of one still commits without the extra peer's acks).
    fn attach_follower(l: &mut P, f: PeerId) {
        l.on_message(f, ZabMsg::FollowerInfo { last_zxid: l.last_zxid(), accepted_epoch: 0 });
        l.on_message(f, ZabMsg::AckSync { epoch: l.epoch() });
    }

    #[test]
    fn leader_coalesces_full_batch_into_one_propose() {
        let cfg = EnsembleConfig::of_size(1);
        let (mut l, _) = ZabPeer::new_with_config(PeerId(0), cfg, ZabConfig::batched(3, 5));
        attach_follower(&mut l, PeerId(1));

        // First txn arms the flush timer; nothing is proposed or minted.
        let acts = l.propose(1).unwrap();
        assert!(acts.iter().any(|a| matches!(
            a,
            ZabAction::SetTimer { timer: ZabTimer::BatchFlush(_), after_ms: 5 }
        )));
        assert!(!acts.iter().any(|a| matches!(a, ZabAction::Send { .. })));
        assert_eq!(l.log_len(), 0, "no zxid exists before flush");
        // Second txn just buffers.
        assert!(l.propose(2).unwrap().is_empty());
        // Third fills the batch: ONE Propose carrying the whole range.
        let acts = l.propose(3).unwrap();
        let (first, txns) = acts
            .iter()
            .find_map(|a| match a {
                ZabAction::Send { msg: ZabMsg::Propose { zxid, txns }, .. } => {
                    Some((*zxid, txns.clone()))
                }
                _ => None,
            })
            .expect("batch proposed");
        assert_eq!(first, Zxid::new(256, 1));
        assert_eq!(txns, vec![1, 2, 3]);
        // Quorum of one: the whole batch commits and delivers in order.
        assert_eq!(l.committed(), Zxid::new(256, 3));
        let delivered: Vec<u32> = acts
            .iter()
            .filter_map(|a| match a {
                ZabAction::Deliver { txn, .. } => Some(*txn),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![1, 2, 3]);
        // The now-stale flush timer fire is a no-op.
        assert!(l.on_timer(ZabTimer::BatchFlush(1)).is_empty());
    }

    #[test]
    fn flush_timer_proposes_partial_batch() {
        let cfg = EnsembleConfig::of_size(1);
        let (mut l, _) = ZabPeer::new_with_config(PeerId(0), cfg, ZabConfig::batched(8, 2));
        let acts = l.propose(7).unwrap();
        let armed_gen = acts
            .iter()
            .find_map(|a| match a {
                ZabAction::SetTimer { timer: ZabTimer::BatchFlush(g), .. } => Some(*g),
                _ => None,
            })
            .expect("flush timer armed");
        assert_eq!(l.committed(), Zxid::ZERO, "nothing minted while buffered");
        let acts = l.on_timer(ZabTimer::BatchFlush(armed_gen));
        assert!(acts.iter().any(|a| matches!(a, ZabAction::Deliver { txn: 7, .. })));
        assert_eq!(l.committed(), Zxid::new(256, 1));
        // Re-firing the consumed generation does nothing.
        assert!(l.on_timer(ZabTimer::BatchFlush(armed_gen)).is_empty());
    }

    #[test]
    fn urgent_propose_flushes_past_the_nagle_timer() {
        let cfg = EnsembleConfig::of_size(1);
        let (mut l, _) = ZabPeer::new_with_config(PeerId(0), cfg, ZabConfig::batched(8, 50));
        // A buffered transaction is waiting on the flush timer...
        let acts = l.propose(1).unwrap();
        assert!(!acts.iter().any(|a| matches!(a, ZabAction::Send { .. })));
        assert_eq!(l.committed(), Zxid::ZERO);
        // ...and an urgent proposal flushes it together with itself, now.
        let acts = l.propose_urgent(2).unwrap();
        let delivered: Vec<u32> = acts
            .iter()
            .filter_map(|a| match a {
                ZabAction::Deliver { txn, .. } => Some(*txn),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![1, 2], "urgent flush carries the buffered prefix");
        assert_eq!(l.committed(), Zxid::new(256, 2));
        // A non-leader still reports the forwarding hint.
        let cfg = EnsembleConfig::of_size(3);
        let (mut f, _) = ZabPeer::<u32>::new(PeerId(1), cfg);
        assert!(f.propose_urgent(9).is_err());
    }

    #[test]
    fn default_config_proposes_immediately_as_before() {
        let (mut l, _) = single();
        attach_follower(&mut l, PeerId(1));
        let acts = l.propose(42).unwrap();
        // Batch-of-one: no flush timer, an immediate single-entry Propose.
        assert!(!acts
            .iter()
            .any(|a| matches!(a, ZabAction::SetTimer { timer: ZabTimer::BatchFlush(_), .. })));
        assert!(acts.iter().any(|a| matches!(
            a,
            ZabAction::Send { msg: ZabMsg::Propose { zxid, txns }, .. }
                if *zxid == Zxid::new(256, 1) && txns.len() == 1
        )));
        assert_eq!(l.committed(), Zxid::new(256, 1));
    }

    #[test]
    fn follower_logs_batch_atomically_and_acks_last() {
        let cfg = EnsembleConfig::of_size(3);
        let (mut f, _) = ZabPeer::<u32>::new(PeerId(0), cfg);
        let leader = PeerId(2);
        let v = Vote { candidate: leader, candidate_zxid: Zxid::ZERO, round: 1 };
        f.on_message(PeerId(1), ZabMsg::Notification { vote: v, established: Some(leader) });
        f.on_message(
            leader,
            ZabMsg::SyncLog {
                epoch: 1,
                snapshot: None,
                entries: vec![],
                commit_to: Zxid::ZERO,
                reset: false,
                snap_chunks: 0,
            },
        );

        let batch = ZabMsg::Propose { zxid: Zxid::new(1, 1), txns: vec![10, 20, 30] };
        let acts = f.on_message(leader, batch.clone());
        assert!(
            acts.iter().any(|a| matches!(
                a,
                ZabAction::Send { msg: ZabMsg::Ack { zxid }, .. } if *zxid == Zxid::new(1, 3)
            )),
            "one ack, for the batch's last zxid: {acts:?}"
        );
        assert_eq!(f.log_len(), 3);
        // A replayed duplicate of the whole batch is ignored.
        assert!(f.on_message(leader, batch).is_empty());
        // Commit of the batch tail delivers the range in order.
        let acts = f.on_message(leader, ZabMsg::Commit { zxid: Zxid::new(1, 3) });
        let delivered: Vec<u32> = acts
            .iter()
            .filter_map(|a| match a {
                ZabAction::Deliver { txn, .. } => Some(*txn),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![10, 20, 30]);
        // A batch starting past our tail (missed 1:4) forces a resync.
        let acts =
            f.on_message(leader, ZabMsg::Propose { zxid: Zxid::new(1, 5), txns: vec![50, 60] });
        assert!(acts
            .iter()
            .any(|a| matches!(a, ZabAction::Send { msg: ZabMsg::FollowerInfo { .. }, .. })));
        assert_eq!(f.role(), Role::Following { leader, synced: false });
    }

    #[test]
    fn observer_receives_one_batched_inform() {
        let cfg = EnsembleConfig::with_observers(1, 1);
        let (mut l, _) = ZabPeer::new_with_config(PeerId(0), cfg.clone(), ZabConfig::batched(4, 2));
        let (mut obs, _) = ZabPeer::<u32>::new(PeerId(1), cfg);
        // Observer handshake (as in observer_joins_and_receives_informs).
        let probe = Vote { candidate: PeerId(1), candidate_zxid: Zxid::ZERO, round: 1 };
        let reply =
            l.on_message(PeerId(1), ZabMsg::Notification { vote: probe, established: None });
        let ZabAction::Send { msg: ZabMsg::Notification { vote, established }, .. } = &reply[0]
        else {
            panic!("expected a status reply");
        };
        obs.on_message(PeerId(0), ZabMsg::Notification { vote: *vote, established: *established });
        let fi_reply = l.on_message(
            PeerId(1),
            ZabMsg::FollowerInfo { last_zxid: Zxid::ZERO, accepted_epoch: 0 },
        );
        let ZabAction::Send { msg: sync, .. } = &fi_reply[0] else { panic!() };
        obs.on_message(PeerId(0), sync.clone());
        l.on_message(PeerId(1), ZabMsg::AckSync { epoch: l.epoch() });

        // Three buffered txns flushed by timer: ONE INFORM with the range.
        l.propose(1).unwrap();
        l.propose(2).unwrap();
        l.propose(3).unwrap();
        let acts = l.on_timer(ZabTimer::BatchFlush(1));
        let informs: Vec<_> = acts
            .iter()
            .filter_map(|a| match a {
                ZabAction::Send { to: PeerId(1), msg: ZabMsg::Inform { zxid, txns } } => {
                    Some((*zxid, txns.clone()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(informs.len(), 1, "one INFORM per commit round: {acts:?}");
        assert_eq!(informs[0].0, Zxid::new(256, 1));
        assert_eq!(informs[0].1, vec![1, 2, 3]);
        // The observer applies the whole range in order.
        let acts = l_inform_to(&mut obs, informs[0].clone());
        let delivered: Vec<u32> = acts
            .iter()
            .filter_map(|a| match a {
                ZabAction::Deliver { txn, .. } => Some(*txn),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![1, 2, 3]);
        assert_eq!(obs.committed(), Zxid::new(256, 3));
    }

    fn l_inform_to(obs: &mut P, (zxid, txns): (Zxid, Vec<u32>)) -> Vec<ZabAction<u32>> {
        obs.on_message(PeerId(0), ZabMsg::Inform { zxid, txns })
    }

    #[test]
    fn inform_overlapping_sync_point_is_trimmed_not_resynced() {
        // An observer that synced while entries 1:1..1:2 were still
        // uncommitted on the leader later receives an INFORM range starting
        // back at 1:1. It must append only the unseen tail.
        let cfg = EnsembleConfig::with_observers(1, 1);
        let (mut obs, _) = ZabPeer::<u32>::new(PeerId(1), cfg);
        let leader = PeerId(0);
        let v = Vote { candidate: leader, candidate_zxid: Zxid::ZERO, round: 1 };
        obs.on_message(leader, ZabMsg::Notification { vote: v, established: Some(leader) });
        obs.on_message(
            leader,
            ZabMsg::SyncLog {
                epoch: 256,
                snapshot: None,
                entries: vec![(Zxid::new(256, 1), 10), (Zxid::new(256, 2), 20)],
                commit_to: Zxid::new(256, 2),
                reset: false,
                snap_chunks: 0,
            },
        );
        assert_eq!(obs.committed(), Zxid::new(256, 2));
        let acts = obs.on_message(
            leader,
            ZabMsg::Inform { zxid: Zxid::new(256, 1), txns: vec![10, 20, 30, 40] },
        );
        assert!(
            !acts
                .iter()
                .any(|a| matches!(a, ZabAction::Send { msg: ZabMsg::FollowerInfo { .. }, .. })),
            "overlap is not a gap: {acts:?}"
        );
        let delivered: Vec<u32> = acts
            .iter()
            .filter_map(|a| match a {
                ZabAction::Deliver { txn, .. } => Some(*txn),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![30, 40], "already-held prefix skipped");
        assert_eq!(obs.committed(), Zxid::new(256, 4));
        assert_eq!(obs.log_len(), 4);
    }

    #[test]
    fn buffered_txns_die_with_leadership_not_with_acked_state() {
        let cfg = EnsembleConfig::of_size(1);
        let (mut l, _) = ZabPeer::new_with_config(PeerId(0), cfg, ZabConfig::batched(8, 2));
        l.propose(1).unwrap();
        l.propose(2).unwrap();
        assert_eq!(l.log_len(), 0, "buffered txns have no zxids");
        l.on_crash();
        assert_eq!(l.log_len(), 0, "nothing durable was lost — nothing was promised");
        assert_eq!(l.committed(), Zxid::ZERO);
        let _ = l.on_restart();
        assert!(l.is_established_leader());
        // The old regime's flush timer (gen 1, armed by propose(1)) fires
        // into the new regime: nothing is buffered, nothing happens.
        let acts = l.on_timer(ZabTimer::BatchFlush(1));
        assert!(acts.is_empty(), "old regime's flush timer is dead");
        // The new regime starts minting from its own epoch, counter 1.
        let acts = l.propose(3).unwrap();
        let gen = acts
            .iter()
            .find_map(|a| match a {
                ZabAction::SetTimer { timer: ZabTimer::BatchFlush(g), .. } => Some(*g),
                _ => None,
            })
            .expect("fresh batch arms a flush timer");
        let acts = l.on_timer(ZabTimer::BatchFlush(gen));
        assert!(acts.iter().any(|a| matches!(a, ZabAction::Deliver { txn: 3, .. })));
        assert_eq!(l.committed(), Zxid::new(512, 1));
    }
}
