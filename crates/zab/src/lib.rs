#![warn(missing_docs)]

//! # dufs-zab — ZAB-style atomic broadcast and leader election
//!
//! The replication layer of the coordination service. ZooKeeper's
//! correctness — which the DUFS paper leans on for all namespace metadata —
//! comes from the ZooKeeper Atomic Broadcast protocol (ZAB): a single
//! elected leader assigns every state mutation a monotonically increasing
//! transaction id (*zxid*), replicates it to a quorum before commit, and all
//! replicas apply committed transactions in identical zxid order. Reads are
//! served locally by any replica.
//!
//! This crate implements the protocol as **pure state machines**
//! ([`ZabPeer`]): every input (message, timer) returns a list of
//! [`ZabAction`]s for the hosting runtime to perform. The same code is
//! driven by the deterministic discrete-event simulator for the paper's
//! throughput figures, by a thread-per-server runtime for live use, and by
//! randomized in-crate harnesses for safety testing.
//!
//! ## Protocol phases
//!
//! 1. **Election** — peers in `Looking` state exchange votes carrying
//!    `(last_zxid, peer_id)`; everyone adopts the largest vote they see and
//!    a candidate wins once a quorum votes identically (a simplified Fast
//!    Leader Election).
//! 2. **Synchronization** — followers report their `last_zxid`; the leader
//!    sends the missing log suffix (or a full replacement if histories
//!    diverged), then declares its entire history committed. Because the
//!    winner has the highest zxid of any quorum and commits require quorum
//!    acknowledgement, every previously committed transaction survives.
//! 3. **Broadcast** — `PROPOSE` → quorum `ACK` → `COMMIT`, pipelined;
//!    commit order equals proposal order equals delivery order.
//!
//! Failure handling: leader heartbeats; followers fall back to election on
//! silence; a leader that loses contact with a quorum abdicates, which
//! prevents a minority partition from accepting writes.

pub mod config;
pub mod msg;
pub mod peer;
pub mod zxid;

pub use config::{EnsembleConfig, PeerId, ZabConfig};
pub use msg::{PersistEvent, Vote, ZabAction, ZabMsg, ZabTimer};
pub use peer::{DurableState, Role, ZabPeer};
pub use zxid::Zxid;
