//! Transaction identifiers.
//!
//! A zxid is a 64-bit pair `(epoch << 32) | counter`. The epoch changes with
//! every elected leader; the counter increases with every proposal within an
//! epoch. Total order on zxids is the total order of the replicated history.

use std::fmt;

/// A ZooKeeper-style transaction id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Zxid(u64);

impl Zxid {
    /// The zero zxid (before any transaction).
    pub const ZERO: Zxid = Zxid(0);

    /// Build from an epoch and a within-epoch counter.
    pub const fn new(epoch: u32, counter: u32) -> Self {
        Zxid(((epoch as u64) << 32) | counter as u64)
    }

    /// The leader epoch that issued this transaction.
    pub const fn epoch(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Position within the epoch.
    pub const fn counter(self) -> u32 {
        self.0 as u32
    }

    /// The next zxid within the same epoch.
    ///
    /// # Panics
    /// Panics on counter overflow (2^32 proposals in one epoch).
    pub fn next(self) -> Zxid {
        assert!(self.counter() != u32::MAX, "zxid counter overflow");
        Zxid(self.0 + 1)
    }

    /// First zxid of a new epoch.
    pub const fn first_of_epoch(epoch: u32) -> Zxid {
        Zxid::new(epoch, 1)
    }

    /// Raw 64-bit representation (what `dufs-zkstore` stores in `Stat`).
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuild from the raw representation.
    pub const fn from_u64(v: u64) -> Self {
        Zxid(v)
    }
}

impl fmt::Display for Zxid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.epoch(), self.counter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_counter_round_trip() {
        let z = Zxid::new(3, 17);
        assert_eq!(z.epoch(), 3);
        assert_eq!(z.counter(), 17);
        assert_eq!(Zxid::from_u64(z.as_u64()), z);
    }

    #[test]
    fn ordering_is_epoch_major() {
        assert!(Zxid::new(1, u32::MAX) < Zxid::new(2, 0));
        assert!(Zxid::new(2, 1) < Zxid::new(2, 2));
        assert!(Zxid::ZERO < Zxid::first_of_epoch(1));
    }

    #[test]
    fn next_increments_counter() {
        assert_eq!(Zxid::new(5, 9).next(), Zxid::new(5, 10));
    }

    #[test]
    fn display() {
        assert_eq!(Zxid::new(2, 40).to_string(), "2:40");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn next_panics_on_overflow() {
        let _ = Zxid::new(1, u32::MAX).next();
    }
}
