//! Ensemble membership and quorum arithmetic.

/// Identifies a peer within a replication ensemble. Distinct from the
/// simulator's node ids — the hosting runtime maps between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Tuning knobs for the broadcast phase: **group commit** in the write
/// path. The leader coalesces up to `max_batch` submitted transactions into
/// a single `Propose` sharing one contiguous zxid range and one quorum
/// ACK/COMMIT round; a partially filled batch is flushed `flush_ms` after
/// its first transaction arrives (Nagle-style).
///
/// The default (`max_batch == 1`) reproduces classic one-round-per-
/// transaction ZAB exactly — the configuration the paper measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZabConfig {
    /// Maximum transactions coalesced into one proposal. Must be ≥ 1;
    /// 1 disables batching (no flush timer is ever armed).
    pub max_batch: usize,
    /// Flush delay in (virtual) milliseconds for a partially filled batch,
    /// counted from the batch's first transaction.
    pub flush_ms: u64,
    /// SNAP-sync streaming threshold and chunk size: a snapshot blob
    /// larger than this is shipped to a syncing follower as fixed-size
    /// `SnapChunk` frames (each at most this many bytes) followed by a
    /// digest check, instead of one monolithic `SyncLog` — so catch-up of
    /// a large state doesn't stall the commit pipeline behind one giant
    /// frame. `0` disables chunking entirely.
    pub snap_chunk_bytes: usize,
}

impl Default for ZabConfig {
    fn default() -> Self {
        ZabConfig { max_batch: 1, flush_ms: 2, snap_chunk_bytes: 256 << 10 }
    }
}

impl ZabConfig {
    /// A batching configuration.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn batched(max_batch: usize, flush_ms: u64) -> Self {
        assert!(max_batch >= 1, "a batch holds at least one transaction");
        ZabConfig { max_batch, flush_ms, ..ZabConfig::default() }
    }

    /// Override the SNAP-sync chunking threshold.
    pub fn with_snap_chunk_bytes(mut self, bytes: usize) -> Self {
        self.snap_chunk_bytes = bytes;
        self
    }
}

/// Static membership of a replication ensemble: voting members plus
/// optional non-voting **observers** (ZooKeeper's read-scaling mechanism:
/// an observer receives the committed stream and serves reads, but never
/// votes or acks, so it adds no write-path cost at the leader's quorum).
///
/// The paper varies the ensemble between 1, 4 and 8 voting servers
/// (Figs 7 and 8); quorum is always a strict majority *of the voters*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleConfig {
    peers: Vec<PeerId>,
    observers: Vec<PeerId>,
}

impl EnsembleConfig {
    /// An ensemble of `n` voting peers with ids `0..n`.
    pub fn of_size(n: usize) -> Self {
        assert!(n >= 1, "an ensemble needs at least one peer");
        EnsembleConfig { peers: (0..n as u32).map(PeerId).collect(), observers: Vec::new() }
    }

    /// `n` voters (ids `0..n`) plus `o` observers (ids `n..n+o`).
    pub fn with_observers(n: usize, o: usize) -> Self {
        assert!(n >= 1, "an ensemble needs at least one voter");
        EnsembleConfig {
            peers: (0..n as u32).map(PeerId).collect(),
            observers: (n as u32..(n + o) as u32).map(PeerId).collect(),
        }
    }

    /// An ensemble with explicit voting membership (no observers).
    pub fn new(mut peers: Vec<PeerId>) -> Self {
        assert!(!peers.is_empty(), "an ensemble needs at least one peer");
        peers.sort_unstable();
        peers.dedup();
        EnsembleConfig { peers, observers: Vec::new() }
    }

    /// Voting member ids, sorted.
    pub fn peers(&self) -> &[PeerId] {
        &self.peers
    }

    /// Observer ids, sorted.
    pub fn observers(&self) -> &[PeerId] {
        &self.observers
    }

    /// Number of voting members.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True for the degenerate single-server ensemble.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Majority size over the voters: `⌊n/2⌋ + 1`.
    pub fn quorum(&self) -> usize {
        self.peers.len() / 2 + 1
    }

    /// Whether `count` voters/ackers form a quorum.
    pub fn is_quorum(&self, count: usize) -> bool {
        count >= self.quorum()
    }

    /// Whether `peer` is a voting member.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.peers.binary_search(&peer).is_ok()
    }

    /// Whether `peer` is an observer.
    pub fn is_observer(&self, peer: PeerId) -> bool {
        self.observers.binary_search(&peer).is_ok()
    }

    /// Whether `peer` is any kind of member.
    pub fn is_member(&self, peer: PeerId) -> bool {
        self.contains(peer) || self.is_observer(peer)
    }

    /// Voting members except `me` (election broadcast targets).
    pub fn others(&self, me: PeerId) -> impl Iterator<Item = PeerId> + '_ {
        self.peers.iter().copied().filter(move |&p| p != me)
    }

    /// Every member except `me`, observers included (leader ping targets).
    pub fn all_others(&self, me: PeerId) -> impl Iterator<Item = PeerId> + '_ {
        self.peers.iter().chain(self.observers.iter()).copied().filter(move |&p| p != me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes_match_zookeeper() {
        assert_eq!(EnsembleConfig::of_size(1).quorum(), 1);
        assert_eq!(EnsembleConfig::of_size(2).quorum(), 2);
        assert_eq!(EnsembleConfig::of_size(3).quorum(), 2);
        assert_eq!(EnsembleConfig::of_size(4).quorum(), 3);
        assert_eq!(EnsembleConfig::of_size(5).quorum(), 3);
        assert_eq!(EnsembleConfig::of_size(8).quorum(), 5);
    }

    #[test]
    fn is_quorum_boundary() {
        let c = EnsembleConfig::of_size(5);
        assert!(!c.is_quorum(2));
        assert!(c.is_quorum(3));
    }

    #[test]
    fn membership_and_others() {
        let c = EnsembleConfig::of_size(3);
        assert!(c.contains(PeerId(2)));
        assert!(!c.contains(PeerId(3)));
        let others: Vec<_> = c.others(PeerId(1)).collect();
        assert_eq!(others, vec![PeerId(0), PeerId(2)]);
    }

    #[test]
    fn explicit_membership_dedups_and_sorts() {
        let c = EnsembleConfig::new(vec![PeerId(4), PeerId(2), PeerId(4)]);
        assert_eq!(c.peers(), &[PeerId(2), PeerId(4)]);
        assert_eq!(c.quorum(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_ensemble_rejected() {
        EnsembleConfig::of_size(0);
    }
}
