//! Wire messages, timers, and output actions of the ZAB state machine.

use bytes::Bytes;

use crate::config::PeerId;
use crate::zxid::Zxid;

/// A vote in leader election: "`candidate` should lead; its history reaches
/// `candidate_zxid`". Votes are compared by `(candidate_zxid, candidate)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vote {
    /// Proposed leader.
    pub candidate: PeerId,
    /// The candidate's last logged zxid, as known by the voter.
    pub candidate_zxid: Zxid,
    /// Election round of the voter (latecomers fast-forward to the highest
    /// round they observe).
    pub round: u64,
}

impl Vote {
    /// Election preference order: higher history wins, peer id breaks ties.
    pub fn beats(&self, other: &Vote) -> bool {
        (self.candidate_zxid, self.candidate) > (other.candidate_zxid, other.candidate)
    }
}

/// Messages exchanged between peers. `T` is the replicated transaction type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZabMsg<T> {
    /// Election: the sender's current vote. `established` carries the
    /// sender's leader if it is already Following/Leading, letting a
    /// rejoining peer adopt an existing leader immediately.
    Notification {
        /// The sender's vote.
        vote: Vote,
        /// `Some(leader)` if the sender already follows an established
        /// leader (or is one).
        established: Option<PeerId>,
    },
    /// Follower → leader after election: "my log ends at `last_zxid`".
    FollowerInfo {
        /// The follower's last logged zxid.
        last_zxid: Zxid,
        /// The highest epoch the follower has promised. A leader whose
        /// regime epoch is lower cannot serve this follower and must step
        /// down so a fresh election mints a higher epoch.
        accepted_epoch: u32,
    },
    /// Leader → follower: log suffix after the follower's reported zxid.
    /// `reset` tells the follower to discard its state and replay from
    /// scratch (histories diverged). When the leader has compacted its log
    /// past the follower's position, `snapshot` carries the checkpointed
    /// state machine (an opaque blob the hosting layer encodes/decodes —
    /// ZooKeeper's SNAP sync).
    SyncLog {
        /// The leader's epoch.
        epoch: u32,
        /// State-machine snapshot to install first, with its zxid. `None`
        /// when the snapshot was streamed ahead of this message as
        /// [`ZabMsg::SnapChunk`] frames (see `snap_chunks`).
        snapshot: Option<(Zxid, Bytes)>,
        /// Entries to append after the snapshot/current position.
        entries: Vec<(Zxid, T)>,
        /// Everything up to here is committed.
        commit_to: Zxid,
        /// Whether the follower must discard its log and state first.
        reset: bool,
        /// Number of [`ZabMsg::SnapChunk`] frames that carried this sync's
        /// snapshot ahead of this message (0 = inline or no snapshot). A
        /// follower whose assembled chunk buffer doesn't match re-requests
        /// the sync instead of applying a partial state.
        snap_chunks: u32,
    },
    /// Leader → follower: one fixed-size chunk of a SNAP-sync snapshot too
    /// large for a single [`ZabMsg::SyncLog`] — streaming catch-up keeps a
    /// large transfer from occupying the link in one burst. Chunks arrive
    /// in `seq` order (0-based). Every chunk carries the CRC32 of the
    /// *complete* blob; the final chunk doubles as the digest frame — on
    /// its arrival the follower verifies the assembled blob against `crc`
    /// before the closing `SyncLog { snap_chunks > 0 }` consumes it.
    SnapChunk {
        /// The leader's epoch.
        epoch: u32,
        /// The snapshot's zxid watermark.
        zxid: Zxid,
        /// Chunk index, 0-based, strictly sequential.
        seq: u32,
        /// Total number of chunks in the transfer.
        total: u32,
        /// CRC32 of the complete assembled blob.
        crc: u32,
        /// This chunk's bytes.
        data: Bytes,
    },
    /// Follower → leader: sync applied, ready for broadcast. Carries the
    /// epoch being acknowledged so a stale ack from the leader's previous
    /// regime cannot leak followers into the new one.
    AckSync {
        /// The epoch whose sync is acknowledged.
        epoch: u32,
    },
    /// Leader → follower: replicate a **batch** of transactions sharing one
    /// contiguous zxid range and one quorum ACK/COMMIT round (group
    /// commit). `zxid` identifies the first transaction; entry `i` carries
    /// id `(zxid.epoch, zxid.counter + i)`. A batch of one is classic
    /// per-transaction ZAB.
    Propose {
        /// Id of the first transaction in the batch.
        zxid: Zxid,
        /// Payloads, in zxid order. Never empty.
        txns: Vec<T>,
    },
    /// Follower → leader: batch logged. Acknowledges the batch's *last*
    /// zxid — logging is atomic per batch, so one ack covers the range.
    Ack {
        /// Acknowledged transaction id (last of its batch).
        zxid: Zxid,
    },
    /// Leader → follower: deliver everything up to `zxid`.
    Commit {
        /// Commit watermark.
        zxid: Zxid,
    },
    /// Leader → observer: committed transactions (ZooKeeper's INFORM).
    /// Observers skip the propose/ack round entirely — one message per
    /// commit instead of three, keeping the leader's write-path cost flat
    /// as observers are added. Batched like [`ZabMsg::Propose`]: `zxid` is
    /// the first id of a contiguous committed range.
    Inform {
        /// Id of the first committed transaction in the batch.
        zxid: Zxid,
        /// The committed transactions, in zxid order. Never empty.
        txns: Vec<T>,
    },
    /// Leader heartbeat, carrying the leader's epoch (so a follower synced
    /// under an older regime of the same leader detects it must resync) and
    /// the commit watermark (so followers converge even when broadcast
    /// traffic goes quiet).
    Ping {
        /// The leader's current epoch.
        epoch: u32,
        /// The leader's committed zxid.
        commit_to: Zxid,
    },
    /// Follower heartbeat response.
    Pong,
}

/// Timers the state machine asks its runtime to arm. All are periodic
/// rearm-on-fire (the state machine re-requests as needed).
///
/// Each carries a *generation*: the peer bumps it every time it arms that
/// timer kind, and ignores fires whose generation is stale. Without this, a
/// duplicate arm (e.g. a watchdog armed at join *and* at sync) produces two
/// interleaved timer chains whose fires alias each other's liveness flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZabTimer {
    /// While Looking: resend notifications / advance the round.
    Election(u64),
    /// While Leading: send pings and check follower liveness.
    LeaderPing(u64),
    /// While Following: expect leader traffic before this fires.
    FollowerWatchdog(u64),
    /// While Leading with group commit enabled: flush a partially filled
    /// proposal batch (the Nagle timer of [`crate::config::ZabConfig`]).
    /// One-shot, armed when a batch's first transaction is buffered.
    BatchFlush(u64),
}

/// A durable-log mutation the hosting runtime must persist. Emitted as
/// [`ZabAction::Persist`] *before* any dependent [`ZabAction::Send`] in the
/// same action batch: the host must make the event durable (append to its
/// write-ahead log and fsync) before transmitting those later sends,
/// because they acknowledge the logged state to other peers. A host without
/// durability (pure simulation) may ignore these events entirely — the
/// in-memory fields of the peer carry the same information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistEvent<T> {
    /// Append these entries to the durable log, in order.
    Append {
        /// `(zxid, txn)` pairs, strictly ascending, contiguous with the
        /// durable tail.
        entries: Vec<(Zxid, T)>,
    },
    /// The accepted epoch advanced (a promise that must survive a crash —
    /// otherwise a restarted peer could ack a stale leader's traffic).
    Epoch(u32),
    /// The history was replaced wholesale (divergent-tail resync / SNAP
    /// sync): discard the durable log and snapshot, then store `snapshot`
    /// (if any) followed by `entries`, under `epoch`.
    Reset {
        /// The regime whose history this is.
        epoch: u32,
        /// Checkpointed state machine the new history starts from.
        snapshot: Option<(Zxid, Bytes)>,
        /// The complete replacement log suffix.
        entries: Vec<(Zxid, T)>,
    },
}

/// Outputs of the state machine; the hosting runtime executes them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZabAction<T> {
    /// Send `msg` to `to`.
    Send {
        /// Destination peer.
        to: PeerId,
        /// Message.
        msg: ZabMsg<T>,
    },
    /// Arm `timer` to fire after `after_ms` (virtual) milliseconds.
    SetTimer {
        /// Which timer.
        timer: ZabTimer,
        /// Delay in milliseconds.
        after_ms: u64,
    },
    /// Apply a committed transaction to the replicated state machine.
    /// Emitted in strictly increasing zxid order.
    Deliver {
        /// The transaction's id.
        zxid: Zxid,
        /// The transaction.
        txn: T,
    },
    /// Discard the applied state machine (a full resync follows as
    /// `Deliver`s). Emitted before replaying a replacement history.
    ResetState,
    /// Replace the applied state machine with a checkpointed snapshot
    /// (decode with the hosting layer's codec), then continue with
    /// `Deliver`s.
    RestoreSnapshot {
        /// The snapshot's zxid watermark.
        zxid: Zxid,
        /// The opaque snapshot blob.
        blob: Bytes,
    },
    /// This peer has become the established leader for `epoch`.
    BecameLeader {
        /// The new epoch.
        epoch: u32,
    },
    /// This peer now follows `leader` in `epoch` (sync complete).
    BecameFollower {
        /// The leader.
        leader: PeerId,
        /// The epoch.
        epoch: u32,
    },
    /// The peer lost its leader/leadership and re-entered election.
    StartedElection,
    /// Make `0` durable before executing any later `Send` in this batch
    /// (see [`PersistEvent`] for the ordering contract).
    Persist(PersistEvent<T>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_ordering_prefers_history_then_id() {
        let a = Vote { candidate: PeerId(0), candidate_zxid: Zxid::new(1, 5), round: 0 };
        let b = Vote { candidate: PeerId(9), candidate_zxid: Zxid::new(1, 4), round: 0 };
        assert!(a.beats(&b), "longer history wins over higher id");
        let c = Vote { candidate: PeerId(1), candidate_zxid: Zxid::new(1, 5), round: 0 };
        assert!(c.beats(&a), "equal history: higher id wins");
        assert!(!a.beats(&a), "a vote does not beat itself");
    }
}
