//! Storage backends for the write-ahead log.
//!
//! The [`Wal`](crate::Wal) core is generic over a byte-level [`LogStorage`]
//! so the identical recovery logic runs against real files, a deterministic
//! in-memory model (for the discrete-event simulator) and a fault-injecting
//! adversary (for the corruption/recovery test suite).
//!
//! The contract every backend upholds: bytes covered by a successful
//! [`LogStorage::sync`] survive [`LogStorage::crash`] unaltered; bytes not
//! yet covered may vanish, be truncated at an arbitrary point, or (for the
//! adversarial backend) be bit-flipped — but *only* those bytes.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Byte-level storage the WAL writes through.
///
/// Segments are identified by a monotonically increasing `u64`; snapshots by
/// the zxid they cover. All methods are synchronous; `sync` is the only
/// durability point for segment appends, while `write_snapshot` must be
/// durable on return (file backends write-then-rename).
pub trait LogStorage {
    /// Ids of all existing segments, ascending.
    fn list_segments(&self) -> io::Result<Vec<u64>>;
    /// Full contents of a segment (durable prefix plus any still-buffered
    /// suffix, when the backend distinguishes them).
    fn read_segment(&mut self, id: u64) -> io::Result<Vec<u8>>;
    /// Create a new, empty segment.
    fn create_segment(&mut self, id: u64) -> io::Result<()>;
    /// Append bytes to a segment (buffered until `sync`).
    fn append(&mut self, id: u64, data: &[u8]) -> io::Result<()>;
    /// Make every byte appended to `id` so far durable. On `Err` the durable
    /// suffix is *unknown* — the caller must treat itself as crashed rather
    /// than acknowledge anything.
    fn sync(&mut self, id: u64) -> io::Result<()>;
    /// Delete a segment.
    fn remove_segment(&mut self, id: u64) -> io::Result<()>;
    /// Cut a segment back to `len` bytes, durably. Recovery uses this to
    /// erase a torn tail so the segment is well-formed from then on.
    fn truncate_segment(&mut self, id: u64, len: u64) -> io::Result<()>;
    /// Zxids of all existing snapshots, ascending.
    fn list_snapshots(&self) -> io::Result<Vec<u64>>;
    /// Full contents of a snapshot.
    fn read_snapshot(&mut self, zxid: u64) -> io::Result<Vec<u8>>;
    /// Write a snapshot durably (atomic: either the complete blob exists
    /// afterwards or nothing does).
    fn write_snapshot(&mut self, zxid: u64, data: &[u8]) -> io::Result<()>;
    /// Delete a snapshot.
    fn remove_snapshot(&mut self, zxid: u64) -> io::Result<()>;
    /// Simulation hook: the machine dies now. Backends that model buffering
    /// drop (or corrupt) everything not covered by a successful `sync`.
    /// File backends do nothing — the kernel's page cache is out of scope.
    fn crash(&mut self) {}
}

// ---------------------------------------------------------------------------
// Real files
// ---------------------------------------------------------------------------

/// Directory-of-files backend: `seg-<id>.wal` plus `snap-<zxid>.bin`,
/// appends through cached handles, `fsync` via `File::sync_data`, snapshots
/// written to a temp file then renamed (with a directory fsync) so they are
/// atomic.
pub struct FileStorage {
    dir: PathBuf,
    handles: HashMap<u64, File>,
}

impl FileStorage {
    /// Open (creating if needed) a log directory.
    pub fn new(dir: impl AsRef<Path>) -> io::Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(FileStorage { dir: dir.as_ref().to_path_buf(), handles: HashMap::new() })
    }

    fn seg_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("seg-{id:016x}.wal"))
    }

    fn snap_path(&self, zxid: u64) -> PathBuf {
        self.dir.join(format!("snap-{zxid:016x}.bin"))
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Make directory entries (new/renamed files) durable.
        File::open(&self.dir)?.sync_all()
    }

    fn scan(&self, prefix: &str, suffix: &str) -> io::Result<Vec<u64>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(hex) = name.strip_prefix(prefix).and_then(|s| s.strip_suffix(suffix)) {
                if let Ok(id) = u64::from_str_radix(hex, 16) {
                    out.push(id);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

impl LogStorage for FileStorage {
    fn list_segments(&self) -> io::Result<Vec<u64>> {
        self.scan("seg-", ".wal")
    }

    fn read_segment(&mut self, id: u64) -> io::Result<Vec<u8>> {
        std::fs::read(self.seg_path(id))
    }

    fn create_segment(&mut self, id: u64) -> io::Result<()> {
        let f = OpenOptions::new().create(true).append(true).open(self.seg_path(id))?;
        self.handles.insert(id, f);
        self.sync_dir()
    }

    fn append(&mut self, id: u64, data: &[u8]) -> io::Result<()> {
        if !self.handles.contains_key(&id) {
            let f = OpenOptions::new().append(true).open(self.seg_path(id))?;
            self.handles.insert(id, f);
        }
        self.handles.get_mut(&id).unwrap().write_all(data)
    }

    fn sync(&mut self, id: u64) -> io::Result<()> {
        match self.handles.get_mut(&id) {
            Some(f) => f.sync_data(),
            None => Ok(()), // nothing appended through this handle yet
        }
    }

    fn remove_segment(&mut self, id: u64) -> io::Result<()> {
        self.handles.remove(&id);
        std::fs::remove_file(self.seg_path(id))
    }

    fn truncate_segment(&mut self, id: u64, len: u64) -> io::Result<()> {
        self.handles.remove(&id);
        let f = OpenOptions::new().write(true).open(self.seg_path(id))?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn list_snapshots(&self) -> io::Result<Vec<u64>> {
        self.scan("snap-", ".bin")
    }

    fn read_snapshot(&mut self, zxid: u64) -> io::Result<Vec<u8>> {
        std::fs::read(self.snap_path(zxid))
    }

    fn write_snapshot(&mut self, zxid: u64, data: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("snap-{zxid:016x}.tmp"));
        let mut f = File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(&tmp, self.snap_path(zxid))?;
        self.sync_dir()
    }

    fn remove_snapshot(&mut self, zxid: u64) -> io::Result<()> {
        std::fs::remove_file(self.snap_path(zxid))
    }
}

// ---------------------------------------------------------------------------
// Deterministic in-memory model
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct MemSegment {
    /// All appended bytes; `durable` marks the fsync-covered prefix.
    data: Vec<u8>,
    durable: usize,
}

/// In-memory backend with explicit fsync semantics: appends land in a
/// buffered suffix that [`LogStorage::crash`] discards; `sync` extends the
/// durable prefix. Keeps the discrete-event simulator fully deterministic
/// while still exercising the recovery path for real.
#[derive(Default)]
pub struct MemStorage {
    segments: BTreeMap<u64, MemSegment>,
    snapshots: BTreeMap<u64, Vec<u8>>,
}

impl MemStorage {
    /// Fresh, empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total durable bytes across all segments (test observability).
    pub fn durable_bytes(&self) -> usize {
        self.segments.values().map(|s| s.durable).sum()
    }
}

fn no_seg(id: u64) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such segment {id}"))
}

impl LogStorage for MemStorage {
    fn list_segments(&self) -> io::Result<Vec<u64>> {
        Ok(self.segments.keys().copied().collect())
    }

    fn read_segment(&mut self, id: u64) -> io::Result<Vec<u8>> {
        self.segments.get(&id).map(|s| s.data.clone()).ok_or_else(|| no_seg(id))
    }

    fn create_segment(&mut self, id: u64) -> io::Result<()> {
        self.segments.entry(id).or_default();
        Ok(())
    }

    fn append(&mut self, id: u64, data: &[u8]) -> io::Result<()> {
        self.segments.get_mut(&id).ok_or_else(|| no_seg(id))?.data.extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, id: u64) -> io::Result<()> {
        let seg = self.segments.get_mut(&id).ok_or_else(|| no_seg(id))?;
        seg.durable = seg.data.len();
        Ok(())
    }

    fn remove_segment(&mut self, id: u64) -> io::Result<()> {
        self.segments.remove(&id).map(|_| ()).ok_or_else(|| no_seg(id))
    }

    fn truncate_segment(&mut self, id: u64, len: u64) -> io::Result<()> {
        let seg = self.segments.get_mut(&id).ok_or_else(|| no_seg(id))?;
        seg.data.truncate(len as usize);
        seg.durable = seg.durable.min(len as usize);
        Ok(())
    }

    fn list_snapshots(&self) -> io::Result<Vec<u64>> {
        Ok(self.snapshots.keys().copied().collect())
    }

    fn read_snapshot(&mut self, zxid: u64) -> io::Result<Vec<u8>> {
        self.snapshots.get(&zxid).cloned().ok_or_else(|| no_seg(zxid))
    }

    fn write_snapshot(&mut self, zxid: u64, data: &[u8]) -> io::Result<()> {
        self.snapshots.insert(zxid, data.to_vec());
        Ok(())
    }

    fn remove_snapshot(&mut self, zxid: u64) -> io::Result<()> {
        self.snapshots.remove(&zxid).map(|_| ()).ok_or_else(|| no_seg(zxid))
    }

    fn crash(&mut self) {
        for seg in self.segments.values_mut() {
            seg.data.truncate(seg.durable);
        }
        // Snapshots are written atomically (write + rename): already durable.
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Probabilities for the adversarial backend. All faults respect the core
/// invariant — bytes covered by a successful `sync` are never touched.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Chance a `sync` fails after persisting only a random prefix of the
    /// pending bytes (the caller must self-fence).
    pub p_sync_fail: f64,
    /// Chance that, at crash, a random prefix of the unsynced tail made it
    /// to disk anyway (a torn write) instead of vanishing entirely.
    pub p_torn_tail: f64,
    /// Chance a surviving torn prefix additionally has one bit flipped in
    /// its final bytes (garbage in the half-written record).
    pub p_bit_flip: f64,
    /// Chance the *first* read of the final segment returns a short
    /// (truncated) buffer; the next read sees everything. Models transient
    /// short reads the recovery path must retry.
    pub p_short_read: f64,
    /// Chance `write_snapshot` fails (atomic: nothing is written).
    pub p_snapshot_fail: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            p_sync_fail: 0.05,
            p_torn_tail: 0.5,
            p_bit_flip: 0.5,
            p_short_read: 0.2,
            p_snapshot_fail: 0.05,
        }
    }
}

/// Adversarial wrapper around another backend: buffers appends itself so it
/// can tear, truncate and bit-flip the unsynced tail at crash time, fail
/// fsyncs after partial persistence, and serve transient short reads.
/// Deterministic per seed.
pub struct FaultyStorage<S: LogStorage> {
    inner: S,
    rng: StdRng,
    cfg: FaultConfig,
    pending: HashMap<u64, Vec<u8>>,
    short_read_armed: bool,
}

impl<S: LogStorage> FaultyStorage<S> {
    /// Wrap `inner`, drawing faults from `seed`.
    pub fn new(inner: S, seed: u64, cfg: FaultConfig) -> Self {
        FaultyStorage {
            inner,
            rng: StdRng::seed_from_u64(seed),
            cfg,
            pending: HashMap::new(),
            short_read_armed: true,
        }
    }

    /// The wrapped backend (test observability).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn chance(&mut self, p: f64) -> bool {
        self.rng.random::<f64>() < p
    }

    /// Flush `buf` (possibly a prefix, possibly mangled) into the inner
    /// backend and make it durable there.
    fn flush_to_inner(&mut self, id: u64, buf: &[u8]) -> io::Result<()> {
        if !buf.is_empty() {
            self.inner.append(id, buf)?;
        }
        self.inner.sync(id)
    }
}

impl<S: LogStorage> LogStorage for FaultyStorage<S> {
    fn list_segments(&self) -> io::Result<Vec<u64>> {
        self.inner.list_segments()
    }

    fn read_segment(&mut self, id: u64) -> io::Result<Vec<u8>> {
        let mut data = self.inner.read_segment(id)?;
        if let Some(p) = self.pending.get(&id) {
            data.extend_from_slice(p);
        }
        let last = self.inner.list_segments()?.last().copied();
        if self.short_read_armed && last == Some(id) && !data.is_empty() {
            let p = self.cfg.p_short_read;
            if self.chance(p) {
                self.short_read_armed = false;
                let keep = self.rng.random_range(0..data.len() as u64) as usize;
                data.truncate(keep);
            }
        }
        Ok(data)
    }

    fn create_segment(&mut self, id: u64) -> io::Result<()> {
        self.inner.create_segment(id)
    }

    fn append(&mut self, id: u64, data: &[u8]) -> io::Result<()> {
        self.pending.entry(id).or_default().extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, id: u64) -> io::Result<()> {
        let buf = self.pending.remove(&id).unwrap_or_default();
        if self.chance(self.cfg.p_sync_fail) {
            // Partial fsync: a random prefix reached disk, then the device
            // errored. The caller sees Err and must treat itself as crashed.
            let keep = if buf.is_empty() {
                0
            } else {
                self.rng.random_range(0..buf.len() as u64) as usize
            };
            self.flush_to_inner(id, &buf[..keep])?;
            return Err(io::Error::other("injected fsync failure"));
        }
        self.flush_to_inner(id, &buf)
    }

    fn remove_segment(&mut self, id: u64) -> io::Result<()> {
        self.pending.remove(&id);
        self.inner.remove_segment(id)
    }

    fn truncate_segment(&mut self, id: u64, len: u64) -> io::Result<()> {
        // Only recovery truncates, and never with appends in flight.
        self.pending.remove(&id);
        self.inner.truncate_segment(id, len)
    }

    fn list_snapshots(&self) -> io::Result<Vec<u64>> {
        self.inner.list_snapshots()
    }

    fn read_snapshot(&mut self, zxid: u64) -> io::Result<Vec<u8>> {
        self.inner.read_snapshot(zxid)
    }

    fn write_snapshot(&mut self, zxid: u64, data: &[u8]) -> io::Result<()> {
        if self.chance(self.cfg.p_snapshot_fail) {
            return Err(io::Error::other("injected snapshot write failure"));
        }
        self.inner.write_snapshot(zxid, data)
    }

    fn remove_snapshot(&mut self, zxid: u64) -> io::Result<()> {
        self.inner.remove_snapshot(zxid)
    }

    fn crash(&mut self) {
        // Each buffered (never-synced) tail either vanishes or survives as a
        // torn prefix, possibly with a flipped bit in its final bytes. Synced
        // bytes — already inside `inner` — are never touched.
        let mut ids: Vec<u64> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let buf = self.pending.remove(&id).unwrap_or_default();
            if buf.is_empty() || !self.chance(self.cfg.p_torn_tail) {
                continue;
            }
            let keep = self.rng.random_range(0..buf.len() as u64 + 1) as usize;
            let mut torn = buf[..keep].to_vec();
            if !torn.is_empty() && self.chance(self.cfg.p_bit_flip) {
                let span = torn.len().min(8);
                let at = torn.len() - 1 - self.rng.random_range(0..span as u64) as usize;
                let bit = self.rng.random_range(0..8u32) as u8;
                torn[at] ^= 1 << bit;
            }
            let _ = self.flush_to_inner(id, &torn);
        }
        self.pending.clear();
        self.short_read_armed = true;
        self.inner.crash();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_drops_unsynced_bytes_on_crash() {
        let mut s = MemStorage::new();
        s.create_segment(1).unwrap();
        s.append(1, b"durable").unwrap();
        s.sync(1).unwrap();
        s.append(1, b" lost").unwrap();
        s.crash();
        assert_eq!(s.read_segment(1).unwrap(), b"durable");
    }

    #[test]
    fn mem_storage_reads_include_pending_before_crash() {
        let mut s = MemStorage::new();
        s.create_segment(1).unwrap();
        s.append(1, b"abc").unwrap();
        assert_eq!(s.read_segment(1).unwrap(), b"abc");
    }

    #[test]
    fn file_storage_round_trips() {
        let dir = std::env::temp_dir().join(format!("dufs-wal-st-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = FileStorage::new(&dir).unwrap();
        s.create_segment(3).unwrap();
        s.append(3, b"hello").unwrap();
        s.sync(3).unwrap();
        s.write_snapshot(9, b"snapbytes").unwrap();
        assert_eq!(s.list_segments().unwrap(), vec![3]);
        assert_eq!(s.read_segment(3).unwrap(), b"hello");
        assert_eq!(s.list_snapshots().unwrap(), vec![9]);
        assert_eq!(s.read_snapshot(9).unwrap(), b"snapbytes");
        s.remove_segment(3).unwrap();
        s.remove_snapshot(9).unwrap();
        assert!(s.list_segments().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_storage_never_touches_synced_bytes() {
        for seed in 0..50u64 {
            let mut s = FaultyStorage::new(MemStorage::new(), seed, FaultConfig::default());
            s.create_segment(1).unwrap();
            s.append(1, b"covered-by-sync").unwrap();
            if s.sync(1).is_err() {
                continue; // fenced: nothing was acknowledged
            }
            s.append(1, b"unsynced-tail-bytes").unwrap();
            s.crash();
            let data = s.read_segment(1).unwrap_or_default();
            // A short read may hide the tail, never rewrite the prefix.
            let visible = data.len().min(b"covered-by-sync".len());
            assert_eq!(&data[..visible], &b"covered-by-sync"[..visible], "seed {seed}");
        }
    }
}
