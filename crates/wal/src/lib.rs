#![warn(missing_docs)]

//! Durable write-ahead log for the replicated metadata service.
//!
//! ZooKeeper's availability story (paper §IV-I) rests on every committed
//! transaction being "logged to disk before it is applied", so the ensemble
//! "can tolerate the failure of all servers by restarting them later". This
//! crate is that missing durability layer for the DUFS reproduction:
//!
//! * a **segmented, CRC32-framed, append-only log** ([`Wal`]) whose fsync
//!   boundaries align with the ZAB group-commit batches from
//!   `ZabConfig{max_batch, flush_ms}` — one `sync` per batch, not per txn;
//! * **snapshot checkpointing**: the coordination server periodically writes
//!   a `dufs-zkstore` snapshot blob through the same storage, after which
//!   log segments fully covered by the checkpoint are deleted;
//! * **crash recovery** ([`Wal::open`]): pick the newest snapshot whose
//!   frame validates, replay the surviving log tail, and discard a torn
//!   final record (a crash mid-`write(2)`) without discarding anything that
//!   a successful fsync ever covered.
//!
//! Storage goes through the [`LogStorage`] trait so the same `Wal` logic is
//! exercised against three backends: real files ([`FileStorage`]) for the
//! threaded runtime and benchmarks, a deterministic in-memory model
//! ([`MemStorage`]) that keeps the discrete-event simulator reproducible
//! while still modelling fsync semantics (unsynced bytes vanish on crash),
//! and an adversarial wrapper ([`FaultyStorage`]) injecting torn tail
//! writes, partial fsyncs, bit flips and short reads.
//!
//! The one invariant everything above defends: **a record covered by a
//! successful `sync` is never lost and never altered**. Corruption is only
//! ever possible in the unsynced tail, and recovery only ever discards from
//! the tail of the final segment.

mod log;
mod storage;

pub use crate::log::{Recovered, Wal, WalConfig, WalRecord};
pub use crate::storage::{FaultConfig, FaultyStorage, FileStorage, LogStorage, MemStorage};

use std::fmt;

/// Errors surfaced by the WAL.
#[derive(Debug)]
pub enum WalError {
    /// The underlying storage failed (I/O error, injected fsync failure).
    /// The caller must treat itself as crashed: the on-disk suffix past the
    /// last successful sync is in an unknown state.
    Io(std::io::Error),
    /// A sealed (non-final) segment or a snapshot frame failed validation.
    /// Unlike a torn tail this is never expected from a clean crash and is
    /// not recoverable by discarding a suffix.
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal storage error: {e}"),
            WalError::Corrupt(what) => write!(f, "wal corruption: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Result alias for WAL operations.
pub type WalResult<T> = Result<T, WalError>;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`.
///
/// Table-driven, byte at a time — the same checksum ZooKeeper uses for its
/// transaction log frames. Implemented here because the environment vendors
/// no `crc32fast`.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"hello, write-ahead log".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[i] ^= 1 << bit;
                assert_ne!(crc32(&d), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
