//! Segmented, CRC32-framed append-only log with snapshot checkpoints.
//!
//! ```text
//! segment file:  magic "DUFSWAL1" | segment_id u64
//!                record*                          (all little-endian)
//! record:        len u32 | crc32 u32 | payload[len]
//! payload:       tag u8 ...
//!                  1 Txn   { zxid u64, bytes }
//!                  2 Epoch { epoch u32 }
//!                  3 Reset { snapshot_zxid u64 }
//! snapshot file: magic "DUFSSNP1" | zxid u64 | len u32 | crc32 u32 | blob
//! ```
//!
//! Recovery scans segments in id order. A record that fails validation in
//! the **final** segment is a torn tail from a crash mid-write: it and
//! everything after it are discarded (after one re-read, to heal transient
//! short reads). The same failure in a **sealed** segment — which was fully
//! fsynced before the next segment was opened — is genuine corruption and
//! recovery refuses to proceed.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::storage::LogStorage;
use crate::{crc32, WalError, WalResult};

const SEG_MAGIC: &[u8; 8] = b"DUFSWAL1";
const SNAP_MAGIC: &[u8; 8] = b"DUFSSNP1";
const SEG_HEADER: usize = 16;
/// Sanity cap on a single framed record (a torn length field must not make
/// recovery attempt a multi-gigabyte allocation).
const MAX_RECORD: usize = 64 << 20;

/// One logical log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A replicated transaction at `zxid` (payload is the coord-layer codec).
    Txn {
        /// Transaction id.
        zxid: u64,
        /// Opaque encoded transaction.
        payload: Bytes,
    },
    /// The peer accepted (promised) this leader epoch.
    Epoch(u32),
    /// The peer's history was replaced by a leader sync: everything before
    /// this record is void; state restarts from `snapshot_zxid` (0 = empty).
    Reset {
        /// Zxid of the snapshot the new history starts from.
        snapshot_zxid: u64,
    },
}

impl WalRecord {
    fn encode(&self) -> BytesMut {
        let mut p = BytesMut::with_capacity(32);
        match self {
            WalRecord::Txn { zxid, payload } => {
                p.put_u8(1);
                p.put_u64_le(*zxid);
                p.put_slice(payload);
            }
            WalRecord::Epoch(e) => {
                p.put_u8(2);
                p.put_u32_le(*e);
            }
            WalRecord::Reset { snapshot_zxid } => {
                p.put_u8(3);
                p.put_u64_le(*snapshot_zxid);
            }
        }
        p
    }

    fn decode(mut p: &[u8]) -> Option<WalRecord> {
        if p.is_empty() {
            return None;
        }
        match p.get_u8() {
            1 => {
                if p.remaining() < 8 {
                    return None;
                }
                let zxid = p.get_u64_le();
                Some(WalRecord::Txn { zxid, payload: Bytes::copy_from_slice(p) })
            }
            2 => {
                if p.remaining() != 4 {
                    return None;
                }
                Some(WalRecord::Epoch(p.get_u32_le()))
            }
            3 => {
                if p.remaining() != 8 {
                    return None;
                }
                Some(WalRecord::Reset { snapshot_zxid: p.get_u64_le() })
            }
            _ => None,
        }
    }
}

/// Tuning knobs for the log.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the open one exceeds this many bytes.
    pub segment_bytes: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { segment_bytes: 1 << 20 }
    }
}

/// Everything a cold-starting server learns from the log directory.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// Last accepted leader epoch found in the log.
    pub epoch: u32,
    /// Snapshot zxid named by the last `Reset` record (0 if none): the
    /// consumer must restore at least this snapshot before replaying.
    pub reset_snapshot_zxid: u64,
    /// Surviving transactions after the last `Reset`, ascending zxid.
    pub entries: Vec<(u64, Bytes)>,
    /// Frame-valid checkpoints, newest first (the consumer tries each until
    /// one decodes).
    pub snapshots: Vec<(u64, Bytes)>,
    /// True if a torn final record was discarded during the scan.
    pub torn_tail: bool,
}

struct SegScan {
    records: Vec<WalRecord>,
    /// Byte offset up to which the segment is well-formed.
    valid_len: usize,
    /// True if trailing bytes past `valid_len` failed validation.
    torn: bool,
}

/// Scan one segment. In the final (tail) segment a record that fails
/// validation is a torn write: the scan stops there and reports `torn`.
/// Anywhere else the same failure is genuine corruption → `Err`.
fn parse_segment(id: u64, data: &[u8], is_last: bool) -> WalResult<SegScan> {
    let corrupt = |what: &str| -> WalResult<SegScan> {
        if is_last {
            // The tail segment can legitimately die mid-header (created but
            // never synced) or mid-record; everything unparsable is torn.
            Ok(SegScan { records: Vec::new(), valid_len: 0, torn: true })
        } else {
            Err(WalError::Corrupt(format!("sealed segment {id}: {what}")))
        }
    };
    if data.len() < SEG_HEADER {
        return corrupt("short header");
    }
    if &data[..8] != SEG_MAGIC || (&data[8..16]).get_u64_le() != id {
        return corrupt("bad header");
    }
    let mut recs = Vec::new();
    let mut pos = SEG_HEADER;
    while pos < data.len() {
        let torn = |recs: Vec<WalRecord>, pos: usize, what: &str| -> WalResult<SegScan> {
            if is_last {
                Ok(SegScan { records: recs, valid_len: pos, torn: true })
            } else {
                Err(WalError::Corrupt(format!("sealed segment {id}: {what} at {pos}")))
            }
        };
        if data.len() - pos < 8 {
            return torn(recs, pos, "truncated frame");
        }
        let len = (&data[pos..]).get_u32_le() as usize;
        let crc = (&data[pos + 4..]).get_u32_le();
        if len == 0 || len > MAX_RECORD || data.len() - pos - 8 < len {
            return torn(recs, pos, "bad frame length");
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return torn(recs, pos, "crc mismatch");
        }
        match WalRecord::decode(payload) {
            Some(r) => recs.push(r),
            // CRC passed but the payload is malformed: a codec bug or
            // deliberate tampering, never a torn write — refuse everywhere.
            None => return Err(WalError::Corrupt(format!("segment {id}: bad record at {pos}"))),
        }
        pos += 8 + len;
    }
    Ok(SegScan { records: recs, valid_len: pos, torn: false })
}

/// The write-ahead log: owns a [`LogStorage`] and layers record framing,
/// rotation, checkpoint truncation and recovery on top.
pub struct Wal {
    storage: Box<dyn LogStorage>,
    cfg: WalConfig,
    /// Id of the open (tail) segment.
    open: u64,
    open_bytes: usize,
    /// Highest txn zxid appended so far (across all segments).
    last_zxid: u64,
    /// Sealed segments: `(id, highest txn zxid at seal time)`.
    sealed: Vec<(u64, u64)>,
    /// Last epoch appended (re-logged after truncation so it survives).
    epoch: u32,
    dirty: bool,
    syncs: u64,
    appends: u64,
}

impl Wal {
    /// Open a log directory: scan whatever survived, then position a fresh
    /// tail segment for new appends. Returns the recovered state.
    pub fn open(storage: Box<dyn LogStorage>, cfg: WalConfig) -> WalResult<(Wal, Recovered)> {
        let mut wal = Wal {
            storage,
            cfg,
            open: 0,
            open_bytes: 0,
            last_zxid: 0,
            sealed: Vec::new(),
            epoch: 0,
            dirty: false,
            syncs: 0,
            appends: 0,
        };
        let rec = wal.reopen()?;
        Ok((wal, rec))
    }

    /// Re-scan storage after a crash (the storage backend has already
    /// dropped unsynced bytes) and position a fresh tail segment.
    pub fn reopen(&mut self) -> WalResult<Recovered> {
        // Bytes appended but never synced are not recoverable state, yet
        // some backends' reads still show them. Crash the storage first
        // (idempotent — callers that already crashed have nothing pending)
        // so the scan below can never count in-flight bytes as durable, and
        // so none of them linger to be smeared into a sealed segment later.
        self.storage.crash();
        self.dirty = false;
        let mut rec = Recovered::default();

        // Snapshots: keep every frame-valid one, newest first.
        let mut snaps = self.storage.list_snapshots()?;
        snaps.sort_unstable_by(|a, b| b.cmp(a));
        for zxid in snaps {
            let raw = self.storage.read_snapshot(zxid)?;
            if let Some(blob) = decode_snapshot_frame(zxid, &raw) {
                rec.snapshots.push((zxid, blob));
            }
        }

        // Segments, in id order; only the final one may be torn.
        let ids = self.storage.list_segments()?;
        self.sealed.clear();
        self.last_zxid = 0;
        let mut max_id = 0u64;
        for (i, &id) in ids.iter().enumerate() {
            let is_last = i + 1 == ids.len();
            max_id = id;
            let data = self.read_segment_stable(id)?;
            let scan = parse_segment(id, &data, is_last)?;
            if scan.torn {
                rec.torn_tail = true;
                if scan.valid_len < SEG_HEADER {
                    // Not even a durable header: the segment carries nothing.
                    self.storage.remove_segment(id)?;
                    continue;
                }
                // Erase the torn bytes so this segment is well-formed once it
                // stops being the tail.
                self.storage.truncate_segment(id, scan.valid_len as u64)?;
            }
            for r in scan.records {
                match r {
                    WalRecord::Txn { zxid, payload } => {
                        // A smaller-or-equal zxid after a larger one marks a
                        // history rewrite point: drop the stale suffix.
                        while rec.entries.last().is_some_and(|&(z, _)| z >= zxid) {
                            rec.entries.pop();
                        }
                        rec.entries.push((zxid, payload));
                        self.last_zxid = zxid;
                    }
                    WalRecord::Epoch(e) => {
                        rec.epoch = rec.epoch.max(e);
                    }
                    WalRecord::Reset { snapshot_zxid } => {
                        rec.entries.clear();
                        rec.reset_snapshot_zxid = snapshot_zxid;
                        self.last_zxid = snapshot_zxid;
                    }
                }
            }
            // The old tail is never appended to again (its end may be torn);
            // it becomes sealed *logically* at its surviving prefix, which
            // recovery just validated.
            self.sealed.push((id, self.last_zxid));
        }
        self.epoch = rec.epoch;

        // Fresh tail segment strictly after everything that exists.
        self.open = max_id + 1;
        self.storage.create_segment(self.open)?;
        let mut hdr = BytesMut::with_capacity(SEG_HEADER);
        hdr.put_slice(SEG_MAGIC);
        hdr.put_u64_le(self.open);
        self.storage.append(self.open, &hdr)?;
        self.open_bytes = SEG_HEADER;
        self.dirty = true;
        Ok(rec)
    }

    /// Read a segment until two consecutive reads agree on length, keeping
    /// the longest buffer seen. A transient short read can stop at a record
    /// boundary and masquerade as a clean (shorter) segment, so parse
    /// failure alone cannot detect it — re-reading can.
    fn read_segment_stable(&mut self, id: u64) -> WalResult<Vec<u8>> {
        let mut best = self.storage.read_segment(id)?;
        for _ in 0..2 {
            let again = self.storage.read_segment(id)?;
            let stable = again.len() == best.len();
            if again.len() > best.len() {
                best = again;
            }
            if stable {
                break;
            }
        }
        Ok(best)
    }

    fn append_record(&mut self, r: &WalRecord) -> WalResult<()> {
        let payload = r.encode();
        let mut frame = BytesMut::with_capacity(8 + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(&payload));
        frame.put_slice(&payload);
        if self.open_bytes + frame.len() > self.cfg.segment_bytes && self.open_bytes > SEG_HEADER {
            self.rotate()?;
        }
        self.storage.append(self.open, &frame)?;
        self.open_bytes += frame.len();
        self.dirty = true;
        self.appends += 1;
        if let WalRecord::Txn { zxid, .. } = r {
            self.last_zxid = *zxid;
        }
        if let WalRecord::Epoch(e) = r {
            self.epoch = (*e).max(self.epoch);
        }
        Ok(())
    }

    /// Seal the open segment (fsyncing it first — sealed segments are never
    /// torn) and start a new one.
    fn rotate(&mut self) -> WalResult<()> {
        self.sync()?;
        self.sealed.push((self.open, self.last_zxid));
        self.open += 1;
        self.storage.create_segment(self.open)?;
        let mut hdr = BytesMut::with_capacity(SEG_HEADER);
        hdr.put_slice(SEG_MAGIC);
        hdr.put_u64_le(self.open);
        self.storage.append(self.open, &hdr)?;
        self.open_bytes = SEG_HEADER;
        self.dirty = true;
        Ok(())
    }

    /// Append one transaction (buffered until [`Wal::sync`]).
    pub fn append_txn(&mut self, zxid: u64, payload: &[u8]) -> WalResult<()> {
        self.append_record(&WalRecord::Txn { zxid, payload: Bytes::copy_from_slice(payload) })
    }

    /// Record an accepted leader epoch (buffered until [`Wal::sync`]).
    pub fn append_epoch(&mut self, epoch: u32) -> WalResult<()> {
        self.append_record(&WalRecord::Epoch(epoch))
    }

    /// Group-commit point: make everything appended so far durable. One call
    /// per ZAB batch, not per transaction — this is where group fsync saves
    /// its `batch-1 × fsync` cost.
    pub fn sync(&mut self) -> WalResult<()> {
        if self.dirty {
            self.storage.sync(self.open)?;
            self.dirty = false;
            self.syncs += 1;
        }
        Ok(())
    }

    /// Replace history: durable snapshot (if any) + `entries` become the
    /// entire log. Used when a leader re-syncs this peer from scratch.
    pub fn reset(
        &mut self,
        snapshot: Option<(u64, &[u8])>,
        entries: &[(u64, Bytes)],
        epoch: u32,
    ) -> WalResult<()> {
        let snap_zxid = snapshot.map_or(0, |(z, _)| z);
        if let Some((zxid, blob)) = snapshot {
            self.write_snapshot_framed(zxid, blob)?;
        }
        // Make the outgoing tail segment well-formed before it is sealed —
        // sealed segments must never be torn (its content is void after the
        // Reset anyway).
        self.sync()?;
        let old: Vec<u64> = self.sealed.iter().map(|&(id, _)| id).collect();
        let old_open = self.open;
        self.sealed.clear();
        self.open += 1;
        self.storage.create_segment(self.open)?;
        let mut hdr = BytesMut::with_capacity(SEG_HEADER);
        hdr.put_slice(SEG_MAGIC);
        hdr.put_u64_le(self.open);
        self.storage.append(self.open, &hdr)?;
        self.open_bytes = SEG_HEADER;
        self.dirty = true;
        self.last_zxid = snap_zxid;
        self.append_record(&WalRecord::Reset { snapshot_zxid: snap_zxid })?;
        if epoch > 0 {
            self.append_record(&WalRecord::Epoch(epoch))?;
        }
        for (zxid, payload) in entries {
            self.append_record(&WalRecord::Txn { zxid: *zxid, payload: payload.clone() })?;
        }
        self.sync()?;
        // New history is durable; old segments and stale snapshots can go.
        for id in old {
            self.storage.remove_segment(id)?;
        }
        self.storage.remove_segment(old_open)?;
        self.prune_snapshots(snap_zxid)?;
        Ok(())
    }

    /// Checkpoint: write the snapshot durably, then delete every sealed
    /// segment whose transactions it fully covers (log truncation).
    pub fn checkpoint(&mut self, zxid: u64, blob: &[u8]) -> WalResult<()> {
        self.write_snapshot_framed(zxid, blob)?;
        // Re-log the current epoch so it survives even if every old segment
        // is deleted below.
        if self.epoch > 0 {
            self.append_record(&WalRecord::Epoch(self.epoch))?;
            self.sync()?;
        }
        let (drop, keep): (Vec<_>, Vec<_>) =
            self.sealed.iter().copied().partition(|&(_, last)| last <= zxid);
        for (id, _) in drop {
            self.storage.remove_segment(id)?;
        }
        self.sealed = keep;
        self.prune_snapshots(zxid)?;
        Ok(())
    }

    fn write_snapshot_framed(&mut self, zxid: u64, blob: &[u8]) -> WalResult<()> {
        let mut f = BytesMut::with_capacity(24 + blob.len());
        f.put_slice(SNAP_MAGIC);
        f.put_u64_le(zxid);
        f.put_u32_le(blob.len() as u32);
        f.put_u32_le(crc32(blob));
        f.put_slice(blob);
        self.storage.write_snapshot(zxid, &f)?;
        Ok(())
    }

    /// Keep the newest snapshot at-or-below `upto` plus `upto` itself;
    /// delete anything older (belt-and-braces: one previous checkpoint is
    /// retained as a fallback).
    fn prune_snapshots(&mut self, upto: u64) -> WalResult<()> {
        let mut zxids = self.storage.list_snapshots()?;
        zxids.sort_unstable_by(|a, b| b.cmp(a));
        for &z in zxids.iter().skip(2) {
            if z < upto {
                self.storage.remove_snapshot(z)?;
            }
        }
        Ok(())
    }

    /// Simulation hook: the machine dies. Unsynced bytes are dropped (or
    /// mangled) by the storage backend; call [`Wal::reopen`] on restart.
    pub fn crash(&mut self) {
        self.storage.crash();
        self.dirty = false;
    }

    /// Number of fsyncs issued so far (drives the simulator's cost model).
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Number of records appended so far.
    pub fn append_count(&self) -> u64 {
        self.appends
    }

    /// Live segment count (sealed + open).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Highest transaction zxid written.
    pub fn last_zxid(&self) -> u64 {
        self.last_zxid
    }

    /// Consume the log and hand back its storage (test observability).
    pub fn into_storage(self) -> Box<dyn LogStorage> {
        self.storage
    }
}

fn decode_snapshot_frame(zxid: u64, raw: &[u8]) -> Option<Bytes> {
    if raw.len() < 24 || &raw[..8] != SNAP_MAGIC {
        return None;
    }
    let mut b = &raw[8..];
    if b.get_u64_le() != zxid {
        return None;
    }
    let len = b.get_u32_le() as usize;
    let crc = b.get_u32_le();
    if b.remaining() != len || crc32(b) != crc {
        return None;
    }
    Some(Bytes::copy_from_slice(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn mem_wal(segment_bytes: usize) -> Wal {
        let (wal, rec) =
            Wal::open(Box::new(MemStorage::new()), WalConfig { segment_bytes }).unwrap();
        assert!(rec.entries.is_empty());
        wal
    }

    fn reopen_in_place(wal: &mut Wal) -> Recovered {
        wal.reopen().unwrap()
    }

    #[test]
    fn synced_txns_survive_crash_and_reopen() {
        let mut wal = mem_wal(1 << 20);
        for z in 1..=10u64 {
            wal.append_txn(z, format!("txn-{z}").as_bytes()).unwrap();
        }
        wal.sync().unwrap();
        wal.append_txn(11, b"unsynced").unwrap();
        wal.crash();
        let rec = reopen_in_place(&mut wal);
        assert_eq!(rec.entries.len(), 10);
        assert_eq!(rec.entries[9].0, 10);
        assert_eq!(&rec.entries[4].1[..], b"txn-5");
        assert!(!rec.torn_tail, "unsynced bytes vanished cleanly in MemStorage");
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let mut wal = mem_wal(128);
        for z in 1..=50u64 {
            wal.append_txn(z, &[0u8; 16]).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() > 3, "expected rotation, got {}", wal.segment_count());
        let rec = reopen_in_place(&mut wal);
        assert_eq!(rec.entries.len(), 50);
        assert_eq!(rec.entries.last().unwrap().0, 50);
    }

    #[test]
    fn checkpoint_truncates_covered_segments() {
        let mut wal = mem_wal(128);
        for z in 1..=60u64 {
            wal.append_txn(z, &[7u8; 16]).unwrap();
        }
        wal.sync().unwrap();
        let before = wal.segment_count();
        wal.checkpoint(40, b"snapshot-covering-1-to-40").unwrap();
        assert!(wal.segment_count() < before, "checkpoint must drop covered segments");
        let rec = reopen_in_place(&mut wal);
        assert_eq!(rec.snapshots[0].0, 40);
        assert_eq!(&rec.snapshots[0].1[..], b"snapshot-covering-1-to-40");
        // Entries above the checkpoint survive in the remaining segments.
        assert!(rec.entries.iter().any(|&(z, _)| z == 60));
        // Replay = snapshot + entries after it.
        let past: Vec<u64> = rec.entries.iter().map(|&(z, _)| z).filter(|&z| z > 40).collect();
        assert_eq!(past, (41..=60).collect::<Vec<_>>());
    }

    #[test]
    fn epoch_survives_checkpoint_truncation() {
        let mut wal = mem_wal(64);
        wal.append_epoch(0x0300).unwrap();
        for z in 1..=30u64 {
            wal.append_txn(z, &[1u8; 24]).unwrap();
        }
        wal.sync().unwrap();
        wal.checkpoint(30, b"snap").unwrap();
        let rec = reopen_in_place(&mut wal);
        assert_eq!(rec.epoch, 0x0300);
    }

    #[test]
    fn reset_replaces_history() {
        let mut wal = mem_wal(1 << 20);
        for z in 1..=5u64 {
            wal.append_txn(z, b"old").unwrap();
        }
        wal.sync().unwrap();
        let entries: Vec<(u64, Bytes)> =
            (100..103).map(|z| (z, Bytes::from_static(b"new"))).collect();
        wal.reset(Some((99, b"snap-at-99")), &entries, 0x0201).unwrap();
        let rec = reopen_in_place(&mut wal);
        assert_eq!(rec.reset_snapshot_zxid, 99);
        assert_eq!(rec.snapshots[0].0, 99);
        assert_eq!(rec.entries.iter().map(|&(z, _)| z).collect::<Vec<_>>(), vec![100, 101, 102]);
        assert_eq!(rec.epoch, 0x0201);
    }

    #[test]
    fn conflicting_suffix_is_dropped_on_replay() {
        // A txn at zxid <= an earlier one marks a history rewrite.
        let mut wal = mem_wal(1 << 20);
        wal.append_txn(5, b"a").unwrap();
        wal.append_txn(6, b"b-stale").unwrap();
        wal.append_txn(7, b"c-stale").unwrap();
        wal.append_txn(6, b"b-final").unwrap();
        wal.append_txn(7, b"c-final").unwrap();
        wal.sync().unwrap();
        let rec = reopen_in_place(&mut wal);
        let got: Vec<(u64, &[u8])> = rec.entries.iter().map(|(z, p)| (*z, &p[..])).collect();
        assert_eq!(got, vec![(5, &b"a"[..]), (6, b"b-final"), (7, b"c-final")]);
    }

    /// Build the raw bytes of one well-formed segment holding `n` txns.
    fn raw_segment(id: u64, n: u64) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(SEG_MAGIC);
        buf.put_u64_le(id);
        for z in 1..=n {
            let payload = WalRecord::Txn {
                zxid: z,
                payload: Bytes::copy_from_slice(format!("payload-{z}").as_bytes()),
            }
            .encode();
            buf.put_u32_le(payload.len() as u32);
            buf.put_u32_le(crc32(&payload));
            buf.put_slice(&payload);
        }
        buf.to_vec()
    }

    #[test]
    fn torn_tail_in_final_segment_is_discarded() {
        let full = raw_segment(1, 3);
        // Chop at every possible point: the parse must yield a valid prefix
        // of the records, never an error and never a mangled record.
        for cut in SEG_HEADER..full.len() {
            let mut s = MemStorage::new();
            s.create_segment(1).unwrap();
            s.append(1, &full[..cut]).unwrap();
            s.sync(1).unwrap();
            let (_, rec) = Wal::open(Box::new(s), WalConfig::default()).unwrap();
            assert!(rec.entries.len() < 3, "cut {cut} cannot keep all records");
            for (i, (z, p)) in rec.entries.iter().enumerate() {
                assert_eq!(*z, i as u64 + 1);
                assert_eq!(&p[..], format!("payload-{z}").as_bytes(), "cut {cut}");
            }
        }
        // Untruncated parses completely.
        let mut s = MemStorage::new();
        s.create_segment(1).unwrap();
        s.append(1, &full).unwrap();
        s.sync(1).unwrap();
        let (_, rec) = Wal::open(Box::new(s), WalConfig::default()).unwrap();
        assert_eq!(rec.entries.len(), 3);
    }

    #[test]
    fn corruption_in_sealed_segment_is_a_hard_error() {
        let full = raw_segment(1, 3);
        let mut s = MemStorage::new();
        s.create_segment(1).unwrap();
        // Truncated mid-record…
        s.append(1, &full[..full.len() - 4]).unwrap();
        s.sync(1).unwrap();
        // …followed by another segment, making segment 1 *sealed*.
        s.create_segment(2).unwrap();
        let seg2 = raw_segment(2, 0);
        s.append(2, &seg2).unwrap();
        s.sync(2).unwrap();
        match Wal::open(Box::new(s), WalConfig::default()) {
            Err(WalError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {:?}", other.map(|(_, r)| r)),
        }
    }
}
